//! Circuit breaker for model generations.
//!
//! A quantized generation that NaN-poisons its outputs trips the serve
//! pool's quarantine/auto-rollback machinery — but without memory, the
//! brownout ladder would happily swap the same broken rung back in on
//! the next degrade and flap forever. The breaker adds that memory: a
//! generation that trips `failure_threshold` times within
//! `failure_window` enters [`BreakerState::Open`] with capped
//! exponential backoff, then a single half-open probe decides between
//! re-promotion and another (longer) backoff round.
//!
//! The state machine is **clock-parameterized** — every transition takes
//! the caller's `Instant` — so the same machine drives both real serving
//! and deterministic table-driven tests with synthesized timestamps.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Trips within [`failure_window`](Self::failure_window) before the
    /// breaker opens.
    pub failure_threshold: u32,
    /// Sliding window that trips are counted over.
    pub failure_window: Duration,
    /// First open-state backoff; doubles on every failed probe.
    pub backoff: Duration,
    /// Backoff ceiling for the exponential doubling.
    pub max_backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 2,
            failure_window: Duration::from_secs(10),
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(30),
        }
    }
}

impl BreakerConfig {
    /// Validates the knobs; returns a static reason on the first
    /// inconsistency.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.failure_threshold == 0 {
            return Err("breaker failure_threshold must be >= 1");
        }
        if self.failure_window.is_zero() {
            return Err("breaker failure_window must be > 0");
        }
        if self.backoff.is_zero() || self.max_backoff < self.backoff {
            return Err("breaker backoff must be > 0 and <= max_backoff");
        }
        Ok(())
    }
}

/// Where the breaker is in its trip/backoff/probe cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the generation may serve.
    Closed,
    /// Tripped: the generation is barred until the backoff elapses.
    Open,
    /// Backoff elapsed and a single probe is in flight; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Counters the breaker has accumulated over its lifetime, for
/// telemetry rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Total trips recorded (including those absorbed while Closed).
    pub trips: u64,
    /// Times the breaker transitioned Closed/HalfOpen → Open.
    pub opens: u64,
    /// Half-open probes started.
    pub probes: u64,
    /// Probes that succeeded and closed the breaker.
    pub probe_successes: u64,
}

/// Per-generation circuit breaker. See the module docs for the state
/// machine; all methods take the caller's clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Trip timestamps still inside the failure window.
    trips: Vec<Instant>,
    /// When the current Open backoff ends (valid while Open).
    open_until: Option<Instant>,
    /// Current backoff, doubled on each failed probe.
    cur_backoff: Duration,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A closed breaker with the given knobs.
    pub fn new(cfg: BreakerConfig) -> Self {
        let cur_backoff = cfg.backoff;
        Self {
            cfg,
            state: BreakerState::Closed,
            trips: Vec::new(),
            open_until: None,
            cur_backoff,
            stats: BreakerStats::default(),
        }
    }

    /// Current state. Pure — time-based Open→HalfOpen movement happens
    /// via [`probe_ready`](Self::probe_ready)/[`begin_probe`](Self::begin_probe).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Whether the generation may serve right now: only while Closed.
    /// (A half-open generation serves exactly one probe, routed through
    /// [`begin_probe`](Self::begin_probe), not regular traffic.)
    pub fn allows_serving(&self) -> bool {
        self.state == BreakerState::Closed
    }

    /// Records a quarantine/rollback trip at `now`. Opens the breaker
    /// once `failure_threshold` trips land inside `failure_window`; a
    /// trip while HalfOpen re-opens immediately (the probe's traffic
    /// failed before the probe verdict came back).
    pub fn record_trip(&mut self, now: Instant) {
        self.stats.trips += 1;
        match self.state {
            BreakerState::Open => {}
            BreakerState::HalfOpen => self.reopen(now),
            BreakerState::Closed => {
                self.trips
                    .retain(|t| now.duration_since(*t) < self.cfg.failure_window);
                self.trips.push(now);
                if self.trips.len() as u32 >= self.cfg.failure_threshold {
                    self.reopen(now);
                }
            }
        }
    }

    /// Whether the Open backoff has elapsed and a half-open probe may
    /// begin. `false` in every other state.
    pub fn probe_ready(&self, now: Instant) -> bool {
        self.state == BreakerState::Open
            && self.open_until.is_some_and(|until| now >= until)
    }

    /// Transitions Open → HalfOpen and claims the single probe slot.
    /// Returns `false` (no transition) unless
    /// [`probe_ready`](Self::probe_ready) — callers race-free by
    /// construction: only the claimant runs the probe.
    pub fn begin_probe(&mut self, now: Instant) -> bool {
        if !self.probe_ready(now) {
            return false;
        }
        self.state = BreakerState::HalfOpen;
        self.open_until = None;
        self.stats.probes += 1;
        true
    }

    /// A successful half-open probe: close the breaker and reset the
    /// backoff and trip window.
    pub fn record_probe_success(&mut self) {
        if self.state != BreakerState::HalfOpen {
            return;
        }
        self.state = BreakerState::Closed;
        self.trips.clear();
        self.cur_backoff = self.cfg.backoff;
        self.stats.probe_successes += 1;
    }

    /// A failed half-open probe: back to Open with the backoff doubled
    /// (capped at `max_backoff`).
    pub fn record_probe_failure(&mut self, now: Instant) {
        if self.state != BreakerState::HalfOpen {
            return;
        }
        self.cur_backoff = (self.cur_backoff * 2).min(self.cfg.max_backoff);
        self.reopen(now);
    }

    /// Remaining backoff at `now`, while Open.
    pub fn backoff_remaining(&self, now: Instant) -> Option<Duration> {
        match self.state {
            BreakerState::Open => self
                .open_until
                .map(|until| until.saturating_duration_since(now)),
            _ => None,
        }
    }

    fn reopen(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.open_until = Some(now + self.cur_backoff);
        self.trips.clear();
        self.stats.opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            failure_window: Duration::from_secs(1),
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
        }
    }

    /// Events a table-driven scenario can apply, with the expected
    /// state after each.
    #[derive(Debug, Clone, Copy)]
    enum Ev {
        /// `record_trip` at +ms.
        Trip(u64),
        /// `begin_probe` at +ms, expecting the claim to succeed or not.
        Probe(u64, bool),
        /// `record_probe_success`.
        ProbeOk,
        /// `record_probe_failure` at +ms.
        ProbeFail(u64),
    }

    fn run(events: &[(Ev, BreakerState)]) -> CircuitBreaker {
        let t0 = Instant::now();
        let at = |ms: u64| t0 + Duration::from_millis(ms);
        let mut b = CircuitBreaker::new(cfg());
        for (i, (ev, expect)) in events.iter().enumerate() {
            match *ev {
                Ev::Trip(ms) => b.record_trip(at(ms)),
                Ev::Probe(ms, claimed) => {
                    assert_eq!(b.begin_probe(at(ms)), claimed, "event {i}: {ev:?}")
                }
                Ev::ProbeOk => b.record_probe_success(),
                Ev::ProbeFail(ms) => b.record_probe_failure(at(ms)),
            }
            assert_eq!(b.state(), *expect, "state after event {i}: {ev:?}");
        }
        b
    }

    use BreakerState::{Closed, HalfOpen, Open};

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        let bad = |f: fn(&mut BreakerConfig)| {
            let mut c = cfg();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.failure_threshold = 0));
        assert!(bad(|c| c.failure_window = Duration::ZERO));
        assert!(bad(|c| c.backoff = Duration::ZERO));
        assert!(bad(|c| c.max_backoff = Duration::from_millis(1)));
    }

    #[test]
    fn full_cycle_closed_open_halfopen_closed() {
        let b = run(&[
            (Ev::Trip(0), Closed),          // 1 of 2 in window
            (Ev::Trip(10), Open),           // threshold reached
            (Ev::Probe(50, false), Open),   // backoff (100ms) not elapsed
            (Ev::Probe(110, true), HalfOpen),
            (Ev::ProbeOk, Closed),
        ]);
        let s = b.stats();
        assert_eq!((s.trips, s.opens, s.probes, s.probe_successes), (2, 1, 1, 1));
        assert!(b.allows_serving());
    }

    #[test]
    fn trips_outside_the_window_do_not_accumulate() {
        run(&[
            (Ev::Trip(0), Closed),
            (Ev::Trip(1500), Closed), // first trip aged out (1s window)
            (Ev::Trip(1600), Open),   // but these two are within it
        ]);
    }

    #[test]
    fn probe_failure_reopens_with_doubled_backoff_capped() {
        let b = run(&[
            (Ev::Trip(0), Closed),
            (Ev::Trip(1), Open),             // backoff 100ms → open until 101
            (Ev::Probe(101, true), HalfOpen),
            (Ev::ProbeFail(200), Open),      // backoff 200ms → open until 400
            (Ev::Probe(399, false), Open),
            (Ev::Probe(400, true), HalfOpen),
            (Ev::ProbeFail(500), Open),      // backoff 400ms (cap) → until 900
            (Ev::Probe(899, false), Open),
            (Ev::Probe(900, true), HalfOpen),
            (Ev::ProbeFail(1000), Open),     // still 400ms: cap holds → 1400
            (Ev::Probe(1399, false), Open),
            (Ev::Probe(1400, true), HalfOpen),
            (Ev::ProbeOk, Closed),
        ]);
        assert_eq!(b.stats().opens, 4);
        assert_eq!(b.stats().probes, 4);
        assert_eq!(b.stats().probe_successes, 1);
    }

    #[test]
    fn trip_while_halfopen_reopens_immediately() {
        run(&[
            (Ev::Trip(0), Closed),
            (Ev::Trip(1), Open),
            (Ev::Probe(101, true), HalfOpen),
            (Ev::Trip(150), Open), // live traffic failed before the probe verdict
        ]);
    }

    #[test]
    fn success_resets_backoff_and_trip_window() {
        let t0 = Instant::now();
        let at = |ms: u64| t0 + Duration::from_millis(ms);
        let mut b = run(&[
            (Ev::Trip(0), Closed),
            (Ev::Trip(1), Open),
            (Ev::Probe(101, true), HalfOpen),
            (Ev::ProbeFail(200), Open), // backoff now 200ms
            (Ev::Probe(400, true), HalfOpen),
            (Ev::ProbeOk, Closed),
        ]);
        // Reset: one fresh trip doesn't reopen, two do — and the backoff
        // is back to the base 100ms, not the doubled 200ms.
        b.record_trip(at(1000));
        assert_eq!(b.state(), Closed);
        b.record_trip(at(1001));
        assert_eq!(b.state(), Open);
        assert!(!b.probe_ready(at(1100)));
        assert!(b.probe_ready(at(1101)));
        assert_eq!(
            b.backoff_remaining(at(1001)),
            Some(Duration::from_millis(100))
        );
    }

    #[test]
    fn trips_while_open_are_absorbed() {
        let b = run(&[
            (Ev::Trip(0), Closed),
            (Ev::Trip(1), Open),
            (Ev::Trip(50), Open), // no state change, no backoff restart
        ]);
        let t0_probe_ready = b.probe_ready(Instant::now() + Duration::from_secs(10));
        assert!(t0_probe_ready, "backoff window unchanged by absorbed trip");
        assert_eq!(b.stats().trips, 3);
        assert_eq!(b.stats().opens, 1);
    }

    #[test]
    fn display_names_states() {
        assert_eq!(Closed.to_string(), "closed");
        assert_eq!(Open.to_string(), "open");
        assert_eq!(HalfOpen.to_string(), "half-open");
    }
}
