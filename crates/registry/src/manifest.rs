//! The per-model manifest: one line per published generation.
//!
//! Plain text so a stuck deployment can be debugged with `cat`:
//!
//! ```text
//! ffdl-registry v1
//! 1 arch1 54632 85944171f73967e8 -
//! 2 arch1 54632 0b2d5c7e11aa9034 -
//! 3 arch1 54632 85944171f73967e8 rollback=1
//! ```
//!
//! Columns: generation, architecture label, payload byte size, FNV-1a
//! digest of the model file, and provenance (`-` for a fresh publish,
//! `rollback=N` when the generation republishes N's bytes). The file is
//! rewritten in full on every publish and lands via tmp + rename, the
//! same atomicity discipline as the model files themselves.

use crate::error::RegistryError;

/// Header line identifying the manifest format.
pub const MANIFEST_HEADER: &str = "ffdl-registry v1";

/// One published generation of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVersion {
    /// Monotonic generation number (1-based; never reused, even after
    /// rollback — rollback publishes a *new* generation).
    pub generation: u64,
    /// Architecture label recorded at publish time (e.g. `arch1`).
    pub arch: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// FNV-1a digest of the model file, verified on every load.
    pub checksum: u64,
    /// `Some(n)` when this generation was produced by rolling back to
    /// generation `n`.
    pub rollback_of: Option<u64>,
}

impl ModelVersion {
    fn to_line(&self) -> String {
        let src = match self.rollback_of {
            Some(g) => format!("rollback={g}"),
            None => "-".to_string(),
        };
        format!(
            "{} {} {} {:016x} {}",
            self.generation, self.arch, self.bytes, self.checksum, src
        )
    }

    fn from_line(line: &str) -> Result<Self, RegistryError> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(RegistryError::Manifest(format!(
                "expected 5 fields, got {}: {line:?}",
                fields.len()
            )));
        }
        let generation: u64 = fields[0]
            .parse()
            .map_err(|_| RegistryError::Manifest(format!("bad generation in {line:?}")))?;
        let bytes: u64 = fields[2]
            .parse()
            .map_err(|_| RegistryError::Manifest(format!("bad byte size in {line:?}")))?;
        let checksum = u64::from_str_radix(fields[3], 16)
            .map_err(|_| RegistryError::Manifest(format!("bad checksum in {line:?}")))?;
        let rollback_of = match fields[4] {
            "-" => None,
            src => Some(
                src.strip_prefix("rollback=")
                    .and_then(|g| g.parse().ok())
                    .ok_or_else(|| {
                        RegistryError::Manifest(format!("bad provenance in {line:?}"))
                    })?,
            ),
        };
        Ok(Self {
            generation,
            arch: fields[1].to_string(),
            bytes,
            checksum,
            rollback_of,
        })
    }
}

/// Renders a full manifest document (header + one line per version).
pub(crate) fn render(versions: &[ModelVersion]) -> String {
    let mut out = String::with_capacity(32 + versions.len() * 64);
    out.push_str(MANIFEST_HEADER);
    out.push('\n');
    for v in versions {
        out.push_str(&v.to_line());
        out.push('\n');
    }
    out
}

/// Parses a manifest document, enforcing the header and strictly
/// increasing generation numbers.
pub(crate) fn parse(text: &str) -> Result<Vec<ModelVersion>, RegistryError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == MANIFEST_HEADER => {}
        other => {
            return Err(RegistryError::Manifest(format!(
                "bad header {other:?}, expected {MANIFEST_HEADER:?}"
            )))
        }
    }
    let mut versions = Vec::new();
    let mut last_gen = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = ModelVersion::from_line(line)?;
        if v.generation <= last_gen {
            return Err(RegistryError::Manifest(format!(
                "generation {} is not greater than its predecessor {last_gen}",
                v.generation
            )));
        }
        last_gen = v.generation;
        versions.push(v);
    }
    Ok(versions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(generation: u64, rollback_of: Option<u64>) -> ModelVersion {
        ModelVersion {
            generation,
            arch: "arch1".into(),
            bytes: 1234,
            checksum: 0xdead_beef_cafe_f00d,
            rollback_of,
        }
    }

    #[test]
    fn roundtrip() {
        let versions = vec![v(1, None), v(2, None), v(3, Some(1))];
        let text = render(&versions);
        assert!(text.starts_with(MANIFEST_HEADER));
        assert_eq!(parse(&text).unwrap(), versions);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("nonsense v9\n"),
            Err(RegistryError::Manifest(_))
        ));
        assert!(matches!(parse(""), Err(RegistryError::Manifest(_))));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "1 arch1 12",                      // too few fields
            "x arch1 12 00ff -",               // bad generation
            "1 arch1 twelve 00ff -",           // bad size
            "1 arch1 12 zz -",                 // bad checksum
            "1 arch1 12 00ff rollback=maybe",  // bad provenance
        ] {
            let text = format!("{MANIFEST_HEADER}\n{bad}\n");
            assert!(
                matches!(parse(&text), Err(RegistryError::Manifest(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn rejects_non_monotonic_generations() {
        let text = render(&[v(2, None), v(2, None)]);
        assert!(matches!(parse(&text), Err(RegistryError::Manifest(_))));
        let text = render(&[v(3, None), v(1, None)]);
        assert!(matches!(parse(&text), Err(RegistryError::Manifest(_))));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let text = format!("{MANIFEST_HEADER}\n\n1 arch1 10 00ff -\n\n");
        assert_eq!(parse(&text).unwrap().len(), 1);
    }
}
