//! # ffdl-registry — versioned model store with integrity checking
//!
//! The paper's deployment pipeline (Fig. 4) ends at "read a file that
//! contains trained weights and biases" — one static artifact. A
//! production pool serving continuous traffic needs the next step: a
//! place where trained models are **published as numbered generations**,
//! **integrity-checked on every load**, and **replaced or rolled back
//! while the serve pool keeps taking requests** (the live-swap half
//! lives in `ffdl_serve::Server::swap_model`).
//!
//! Built only on `std`, like the rest of the workspace:
//!
//! * [`ModelStore`] — a directory of models, each a manifest plus one
//!   `gen-NNNNNN.ffdm` payload per generation (the `ffdl-nn` wire
//!   format, which carries its own FNV-1a checksum trailer).
//! * **Monotonic generations** — publishes and rollbacks both allocate
//!   the next number; a rollback is a *new* generation carrying an old
//!   generation's bytes, so anything watching "did the generation
//!   change?" (a serve pool, a poller) needs no special rollback path.
//! * **Atomic publishes** — payload and manifest land via tmp + rename;
//!   a crashed publish leaves the previous generation active.
//! * **Typed corruption errors** — every load checks the manifest's
//!   byte size and FNV-1a digest (and the wire format re-checks its own
//!   trailer), so a damaged file is [`RegistryError::Corrupt`] naming
//!   both digests, never silently-garbage weights.
//!
//! # Examples
//!
//! ```
//! use ffdl_nn::{Dense, LayerRegistry, Network};
//! use ffdl_registry::ModelStore;
//! use ffdl_rng::{rngs::SmallRng, SeedableRng};
//!
//! let dir = std::env::temp_dir().join(format!("ffdl-registry-doc-{}", std::process::id()));
//! let store = ModelStore::open(&dir)?;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut net = Network::new();
//! net.push(Dense::new(4, 2, &mut rng));
//!
//! let v1 = store.publish("doc-model", &net, "toy")?;
//! assert_eq!(v1.generation, 1);
//! let v2 = store.publish("doc-model", &net, "toy")?;
//! assert_eq!(v2.generation, 2);
//!
//! let (_network, active) = store.load("doc-model", None, &LayerRegistry::with_builtin_layers())?;
//! assert_eq!(active.generation, 2);
//!
//! let rolled = store.rollback("doc-model", None)?; // back to generation 1's bytes
//! assert_eq!((rolled.generation, rolled.rollback_of), (3, Some(1)));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), ffdl_registry::RegistryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod error;
mod manifest;
mod store;

pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use error::RegistryError;
pub use manifest::{ModelVersion, MANIFEST_HEADER};
pub use store::ModelStore;
