//! The filesystem-backed model store.
//!
//! Layout (everything under one root directory):
//!
//! ```text
//! <root>/
//!   <model-name>/
//!     MANIFEST            one line per generation (see `manifest`)
//!     gen-000001.ffdm     ffdl-nn wire format v2 (self-checksummed)
//!     gen-000002.ffdm
//! ```
//!
//! Publishes are atomic: the payload is written to a dot-prefixed temp
//! file and `rename`d into place, then the manifest is rewritten the
//! same way — a reader never observes a half-written model or a
//! manifest entry whose file is missing (the file lands first). The
//! store assumes cooperating writers within one process; it is the
//! storage half of the model lifecycle, with live traffic handled by
//! `ffdl_serve::Server::swap_model`.

use crate::error::RegistryError;
use crate::manifest::{self, ModelVersion};
use ffdl_nn::wire::fnv1a;
use ffdl_nn::{load_network, save_network, LayerRegistry, Network};
use std::fs;
use std::path::{Path, PathBuf};

/// A versioned, checksummed model store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ModelStore {
    root: PathBuf,
}

/// `true` when every character is safe for directory components and the
/// whitespace-separated manifest.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name != "."
        && name != ".."
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn generation_file(generation: u64) -> String {
    format!("gen-{generation:06}.ffdm")
}

impl ModelStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Io`] when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_dir(&self, name: &str) -> Result<PathBuf, RegistryError> {
        if !valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        Ok(self.root.join(name))
    }

    fn read_manifest(&self, name: &str) -> Result<Vec<ModelVersion>, RegistryError> {
        let path = self.model_dir(name)?.join("MANIFEST");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::UnknownModel(name.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        manifest::parse(&text)
    }

    /// Writes `bytes` as the next generation of `name` — the atomic
    /// tmp + rename core shared by [`publish`](Self::publish) and
    /// [`rollback`](Self::rollback).
    fn publish_raw(
        &self,
        name: &str,
        bytes: &[u8],
        arch: &str,
        rollback_of: Option<u64>,
    ) -> Result<ModelVersion, RegistryError> {
        if !valid_name(arch) {
            return Err(RegistryError::InvalidName(arch.to_string()));
        }
        let dir = self.model_dir(name)?;
        fs::create_dir_all(&dir)?;
        let mut versions = match self.read_manifest(name) {
            Ok(v) => v,
            Err(RegistryError::UnknownModel(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let generation = versions.last().map_or(1, |v| v.generation + 1);
        let version = ModelVersion {
            generation,
            arch: arch.to_string(),
            bytes: bytes.len() as u64,
            checksum: fnv1a(bytes),
            rollback_of,
        };

        // Payload first: tmp + rename, so the manifest never references
        // a file that is not fully on disk.
        let tmp = dir.join(format!(".tmp-{}", generation_file(generation)));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, dir.join(generation_file(generation)))?;

        versions.push(version.clone());
        let tmp = dir.join(".tmp-MANIFEST");
        fs::write(&tmp, manifest::render(&versions))?;
        fs::rename(&tmp, dir.join("MANIFEST"))?;
        Ok(version)
    }

    /// Publishes `network` as the next generation of `name`, returning
    /// its manifest entry. `arch` is a free-form label (e.g. `"arch1"`)
    /// recorded for `list` output; it shares the name character set.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] for unusable names,
    /// [`RegistryError::Model`] if serialization fails, and
    /// [`RegistryError::Io`] on filesystem failure.
    pub fn publish(
        &self,
        name: &str,
        network: &Network,
        arch: &str,
    ) -> Result<ModelVersion, RegistryError> {
        let _span = ffdl_telemetry::span("ffdl.registry.publish_ns");
        let mut bytes = Vec::new();
        save_network(network, &mut bytes)?;
        self.publish_raw(name, &bytes, arch, None)
    }

    /// All published generations of `name`, oldest first. The last entry
    /// is the active one (the generation [`load`](Self::load) picks by
    /// default).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] when nothing was ever published
    /// under `name`.
    pub fn list(&self, name: &str) -> Result<Vec<ModelVersion>, RegistryError> {
        self.read_manifest(name)
    }

    /// The active (most recently published) generation of `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for unpublished names;
    /// [`RegistryError::Manifest`] if the manifest is empty.
    pub fn latest(&self, name: &str) -> Result<ModelVersion, RegistryError> {
        self.read_manifest(name)?
            .pop()
            .ok_or_else(|| RegistryError::Manifest(format!("manifest for {name:?} lists no generations")))
    }

    /// Model names with at least one published generation, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Io`] when the root cannot be read.
    pub fn models(&self) -> Result<Vec<String>, RegistryError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.path().join("MANIFEST").is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Reads the raw payload of a generation (`None` = active), verifying
    /// it against the manifest's byte size and FNV-1a digest.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] / [`RegistryError::UnknownGeneration`]
    /// for bad coordinates, and [`RegistryError::Corrupt`] — naming the
    /// expected and actual digests — when the file does not match its
    /// manifest entry.
    pub fn load_bytes(
        &self,
        name: &str,
        generation: Option<u64>,
    ) -> Result<(Vec<u8>, ModelVersion), RegistryError> {
        let versions = self.read_manifest(name)?;
        let version = match generation {
            None => versions.last().cloned().ok_or_else(|| {
                RegistryError::Manifest(format!("manifest for {name:?} lists no generations"))
            })?,
            Some(g) => versions
                .into_iter()
                .find(|v| v.generation == g)
                .ok_or_else(|| RegistryError::UnknownGeneration {
                    name: name.to_string(),
                    generation: g,
                })?,
        };
        let path = self
            .model_dir(name)?
            .join(generation_file(version.generation));
        let mut bytes = fs::read(&path)?;
        // Fault-injection point: a bit flipped here models silent media
        // corruption between publish and load — the checksum below turns
        // it into a typed `Corrupt` error. Inert unless a chaos campaign
        // is armed.
        if ffdl_fault::enabled() {
            ffdl_fault::corrupt(&mut bytes);
        }
        let actual = fnv1a(&bytes);
        if bytes.len() as u64 != version.bytes || actual != version.checksum {
            return Err(RegistryError::Corrupt {
                name: name.to_string(),
                generation: version.generation,
                expected: version.checksum,
                actual,
            });
        }
        Ok((bytes, version))
    }

    /// Loads a generation (`None` = active) as a [`Network`], resolving
    /// layer types through `layers`. Every load verifies the manifest
    /// checksum *and* the wire format's own trailer, so a damaged file is
    /// a typed error, never garbage weights.
    ///
    /// # Errors
    ///
    /// Everything [`load_bytes`](Self::load_bytes) reports, plus
    /// [`RegistryError::Model`] when deserialization fails.
    pub fn load(
        &self,
        name: &str,
        generation: Option<u64>,
        layers: &LayerRegistry,
    ) -> Result<(Network, ModelVersion), RegistryError> {
        let _span = ffdl_telemetry::span("ffdl.registry.load_ns");
        let (bytes, version) = self.load_bytes(name, generation)?;
        let network = load_network(&bytes[..], layers)?;
        Ok((network, version))
    }

    /// Republishes an earlier generation's bytes as a *new* generation
    /// (`to = None` rolls back to the generation before the active one).
    /// Generations stay monotonic, so serve pools watching the counter
    /// pick the rollback up exactly like a fresh publish.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NothingToRollBack`] when no earlier generation
    /// exists, [`RegistryError::UnknownGeneration`] for an explicit `to`
    /// that was never published, plus the usual load/publish failures.
    pub fn rollback(&self, name: &str, to: Option<u64>) -> Result<ModelVersion, RegistryError> {
        let versions = self.read_manifest(name)?;
        let target = match to {
            Some(g) => versions
                .iter()
                .find(|v| v.generation == g)
                .cloned()
                .ok_or_else(|| RegistryError::UnknownGeneration {
                    name: name.to_string(),
                    generation: g,
                })?,
            None => {
                if versions.len() < 2 {
                    return Err(RegistryError::NothingToRollBack(name.to_string()));
                }
                versions[versions.len() - 2].clone()
            }
        };
        let (bytes, _) = self.load_bytes(name, Some(target.generation))?;
        self.publish_raw(name, &bytes, &target.arch, Some(target.generation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_nn::{Dense, Relu};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;
    use ffdl_tensor::Tensor;

    fn network(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new();
        net.push(Dense::new(6, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 3, &mut rng));
        net
    }

    fn temp_store(tag: &str) -> ModelStore {
        let dir = std::env::temp_dir().join(format!(
            "ffdl-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ModelStore::open(dir).unwrap()
    }

    fn cleanup(store: &ModelStore) {
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn publish_load_roundtrip_preserves_outputs() {
        let store = temp_store("roundtrip");
        let mut original = network(1);
        let v = store.publish("demo", &original, "toy").unwrap();
        assert_eq!(v.generation, 1);
        assert!(v.bytes > 0);
        assert_eq!(v.rollback_of, None);

        let (mut loaded, lv) =
            store.load("demo", None, &LayerRegistry::with_builtin_layers()).unwrap();
        assert_eq!(lv, v);
        let x = Tensor::from_fn(&[2, 6], |i| (i as f32 * 0.3).sin());
        assert_eq!(
            original.forward(&x).unwrap().as_slice(),
            loaded.forward(&x).unwrap().as_slice()
        );
        cleanup(&store);
    }

    #[test]
    fn generations_are_monotonic_and_listable() {
        let store = temp_store("list");
        for seed in 0..3 {
            store.publish("m", &network(seed), "toy").unwrap();
        }
        let versions = store.list("m").unwrap();
        assert_eq!(
            versions.iter().map(|v| v.generation).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(store.latest("m").unwrap().generation, 3);
        assert_eq!(store.models().unwrap(), vec!["m".to_string()]);
        cleanup(&store);
    }

    #[test]
    fn load_specific_generation() {
        let store = temp_store("specific");
        let mut a = network(10);
        let mut b = network(20);
        store.publish("m", &a, "toy").unwrap();
        store.publish("m", &b, "toy").unwrap();
        let layers = LayerRegistry::with_builtin_layers();
        let x = Tensor::from_fn(&[1, 6], |i| i as f32 * 0.1);

        let (mut g1, _) = store.load("m", Some(1), &layers).unwrap();
        let (mut g2, _) = store.load("m", Some(2), &layers).unwrap();
        assert_eq!(
            g1.forward(&x).unwrap().as_slice(),
            a.forward(&x).unwrap().as_slice()
        );
        assert_eq!(
            g2.forward(&x).unwrap().as_slice(),
            b.forward(&x).unwrap().as_slice()
        );
        assert!(matches!(
            store.load("m", Some(9), &layers),
            Err(RegistryError::UnknownGeneration { generation: 9, .. })
        ));
        cleanup(&store);
    }

    #[test]
    fn rollback_republishes_old_bytes_as_new_generation() {
        let store = temp_store("rollback");
        let mut a = network(10);
        store.publish("m", &a, "toy").unwrap();
        store.publish("m", &network(20), "toy").unwrap();

        let v = store.rollback("m", None).unwrap();
        assert_eq!(v.generation, 3);
        assert_eq!(v.rollback_of, Some(1));
        // Generation 3 carries generation 1's exact bytes.
        let (b3, _) = store.load_bytes("m", Some(3)).unwrap();
        let (b1, _) = store.load_bytes("m", Some(1)).unwrap();
        assert_eq!(b3, b1);
        // And behaves like model A.
        let (mut g3, _) = store
            .load("m", None, &LayerRegistry::with_builtin_layers())
            .unwrap();
        let x = Tensor::from_fn(&[1, 6], |i| (i as f32 * 0.7).cos());
        assert_eq!(
            g3.forward(&x).unwrap().as_slice(),
            a.forward(&x).unwrap().as_slice()
        );

        // Explicit-target rollback, and the failure modes.
        let v = store.rollback("m", Some(2)).unwrap();
        assert_eq!(v.generation, 4);
        assert_eq!(v.rollback_of, Some(2));
        assert!(matches!(
            store.rollback("m", Some(99)),
            Err(RegistryError::UnknownGeneration { .. })
        ));
        cleanup(&store);

        let store = temp_store("rollback-single");
        store.publish("solo", &network(1), "toy").unwrap();
        assert!(matches!(
            store.rollback("solo", None),
            Err(RegistryError::NothingToRollBack(_))
        ));
        cleanup(&store);
    }

    #[test]
    fn corruption_is_a_typed_error_naming_digests() {
        let store = temp_store("corrupt");
        let v = store.publish("m", &network(5), "toy").unwrap();
        let path = store.root().join("m").join(format!("gen-{:06}.ffdm", v.generation));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40; // single bit flip
        fs::write(&path, &bytes).unwrap();

        let err = store
            .load("m", None, &LayerRegistry::with_builtin_layers())
            .unwrap_err();
        match err {
            RegistryError::Corrupt {
                generation,
                expected,
                actual,
                ..
            } => {
                assert_eq!(generation, 1);
                assert_eq!(expected, v.checksum);
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncation (size mismatch) is caught the same way.
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            store.load_bytes("m", None),
            Err(RegistryError::Corrupt { .. })
        ));
        cleanup(&store);
    }

    #[test]
    fn unknown_names_and_bad_names_are_rejected() {
        let store = temp_store("names");
        assert!(matches!(
            store.list("ghost"),
            Err(RegistryError::UnknownModel(_))
        ));
        for bad in ["", ".", "..", "a b", "a/b", "a\tb"] {
            assert!(
                matches!(
                    store.publish(bad, &Network::new(), "toy"),
                    Err(RegistryError::InvalidName(_))
                ),
                "{bad:?}"
            );
        }
        assert!(matches!(
            store.publish("ok", &Network::new(), "two words"),
            Err(RegistryError::InvalidName(_))
        ));
        cleanup(&store);
    }

    #[test]
    fn no_temp_files_survive_a_publish() {
        let store = temp_store("tmpfiles");
        store.publish("m", &network(1), "toy").unwrap();
        store.rollback("m", Some(1)).unwrap();
        let leftovers: Vec<_> = fs::read_dir(store.root().join("m"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        cleanup(&store);
    }
}
