//! Error type for the model registry.

use ffdl_nn::NnError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors reported by the versioned model store.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The model payload failed to serialize or deserialize (including
    /// the wire format's own checksum trailer).
    Model(NnError),
    /// A model or architecture name contains characters the store
    /// rejects (the manifest is whitespace-separated text, and names
    /// become directory components).
    InvalidName(String),
    /// No model with this name has ever been published.
    UnknownModel(String),
    /// The model exists but has no such generation.
    UnknownGeneration {
        /// Model name.
        name: String,
        /// The generation that was requested.
        generation: u64,
    },
    /// The stored model file does not match its manifest entry — the
    /// typed "you are about to load garbage weights" error.
    Corrupt {
        /// Model name.
        name: String,
        /// Generation whose file is damaged.
        generation: u64,
        /// FNV-1a digest recorded in the manifest at publish time.
        expected: u64,
        /// FNV-1a digest of the bytes actually on disk.
        actual: u64,
    },
    /// The manifest file itself is malformed.
    Manifest(String),
    /// Rollback was requested but there is no earlier generation to
    /// roll back to.
    NothingToRollBack(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o failure: {e}"),
            RegistryError::Model(e) => write!(f, "model payload error: {e}"),
            RegistryError::InvalidName(n) => write!(
                f,
                "invalid registry name {n:?} (allowed: A-Z a-z 0-9 . _ -)"
            ),
            RegistryError::UnknownModel(n) => write!(f, "no model named {n:?} in the store"),
            RegistryError::UnknownGeneration { name, generation } => {
                write!(f, "model {name:?} has no generation {generation}")
            }
            RegistryError::Corrupt {
                name,
                generation,
                expected,
                actual,
            } => write!(
                f,
                "model {name:?} generation {generation} is corrupt: manifest expects fnv1a \
                 {expected:016x}, file hashes to {actual:016x}"
            ),
            RegistryError::Manifest(msg) => write!(f, "malformed manifest: {msg}"),
            RegistryError::NothingToRollBack(name) => {
                write!(f, "model {name:?} has no earlier generation to roll back to")
            }
        }
    }
}

impl Error for RegistryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<NnError> for RegistryError {
    fn from(e: NnError) -> Self {
        RegistryError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RegistryError::InvalidName("a b".into())
            .to_string()
            .contains("a b"));
        assert!(RegistryError::UnknownModel("m".into()).to_string().contains("m"));
        let e = RegistryError::UnknownGeneration {
            name: "m".into(),
            generation: 7,
        };
        assert!(e.to_string().contains('7'));
        let e = RegistryError::Corrupt {
            name: "m".into(),
            generation: 2,
            expected: 0xabcd,
            actual: 0x1234,
        };
        let s = e.to_string();
        assert!(s.contains("000000000000abcd"), "{s}");
        assert!(s.contains("0000000000001234"), "{s}");
        assert!(RegistryError::Manifest("x".into()).to_string().contains('x'));
        assert!(RegistryError::NothingToRollBack("m".into())
            .to_string()
            .contains("roll back"));
        let e: RegistryError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        let e: RegistryError = NnError::ModelFormat("bad".into()).into();
        assert!(e.source().is_some());
        assert!(RegistryError::UnknownModel("m".into()).source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RegistryError>();
    }
}
