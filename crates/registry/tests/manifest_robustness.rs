//! Manifest robustness: a registry whose on-disk state has been damaged
//! — truncated manifest, garbage lines, duplicate generations, or a
//! manifest that disagrees with its payload — must answer every query
//! with a *typed* [`RegistryError`], never a panic and never silently
//! wrong model bytes.

use ffdl_core::full_registry;
use ffdl_deploy::parse_architecture;
use ffdl_nn::Network;
use ffdl_registry::{ModelStore, RegistryError};
use std::fs;
use std::path::PathBuf;

fn network(seed: u64) -> Network {
    parse_architecture("input 6\nfc 8\nrelu\nfc 3\nsoftmax\n", seed)
        .expect("arch parses")
        .network
}

/// A fresh store with one published generation of "prod", plus the path
/// to its manifest file.
fn damaged_fixture(tag: &str) -> (ModelStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "ffdl-registry-robustness-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let store = ModelStore::open(&dir).expect("open store");
    store
        .publish("prod", &network(7), "toy")
        .expect("publish generation 1");
    let manifest = dir.join("prod").join("MANIFEST");
    assert!(manifest.is_file(), "fixture manifest missing");
    (store, manifest)
}

fn cleanup(store: &ModelStore) {
    let _ = fs::remove_dir_all(store.root());
}

/// Every public query path must degrade to a typed error on a damaged
/// manifest — none may panic or return fabricated versions.
fn assert_all_queries_fail_typed(store: &ModelStore, context: &str) {
    let layers = full_registry();
    assert!(
        matches!(store.list("prod"), Err(RegistryError::Manifest(_))),
        "{context}: list"
    );
    assert!(
        matches!(store.latest("prod"), Err(RegistryError::Manifest(_))),
        "{context}: latest"
    );
    assert!(
        matches!(
            store.load("prod", None, &layers),
            Err(RegistryError::Manifest(_))
        ),
        "{context}: load"
    );
    assert!(
        matches!(
            store.rollback("prod", None),
            Err(RegistryError::Manifest(_))
        ),
        "{context}: rollback"
    );
}

#[test]
fn truncated_manifest_is_a_typed_error() {
    let (store, manifest) = damaged_fixture("truncated");
    // Cut the file mid-line, as a crash during a non-atomic write (or a
    // torn copy) would: the surviving prefix ends inside the record.
    let text = fs::read_to_string(&manifest).unwrap();
    let cut = text.len() - text.len() / 3;
    fs::write(&manifest, &text[..cut]).unwrap();
    assert_all_queries_fail_typed(&store, "truncated");

    // Degenerate truncation: empty file (header gone too).
    fs::write(&manifest, "").unwrap();
    assert_all_queries_fail_typed(&store, "emptied");
    cleanup(&store);
}

#[test]
fn garbage_lines_are_a_typed_error() {
    let (store, manifest) = damaged_fixture("garbage");
    let text = fs::read_to_string(&manifest).unwrap();
    for garbage in [
        "this is not a manifest record",
        "1 arch1 notanumber 00ff -",
        "two arch1 12 00ff -",
        "1 arch1 12 zzzz -",
        "1 arch1 12 00ff rollback=soon",
    ] {
        fs::write(&manifest, format!("{text}{garbage}\n")).unwrap();
        assert_all_queries_fail_typed(&store, garbage);
    }
    cleanup(&store);
}

#[test]
fn duplicate_generations_are_a_typed_error() {
    let (store, manifest) = damaged_fixture("duplicate");
    let text = fs::read_to_string(&manifest).unwrap();
    // Repeat the generation-1 record verbatim: the parser must reject
    // the non-increasing generation, not pick one of the duplicates.
    let record = text
        .lines()
        .nth(1)
        .expect("fixture has one record")
        .to_string();
    fs::write(&manifest, format!("{text}{record}\n")).unwrap();
    assert_all_queries_fail_typed(&store, "duplicate generation");
    cleanup(&store);
}

#[test]
fn manifest_payload_disagreement_is_a_typed_corrupt_error() {
    let (store, manifest) = damaged_fixture("disagreement");
    let layers = full_registry();

    // Flip one payload byte behind the manifest's back: size still
    // matches, digest does not.
    let payload = store.root().join("prod").join("gen-000001.ffdm");
    let mut bytes = fs::read(&payload).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&payload, &bytes).unwrap();
    match store.load_bytes("prod", None) {
        Err(RegistryError::Corrupt {
            name,
            generation,
            expected,
            actual,
        }) => {
            assert_eq!(name, "prod");
            assert_eq!(generation, 1);
            assert_ne!(expected, actual, "digests must disagree");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert!(matches!(
        store.load("prod", None, &layers),
        Err(RegistryError::Corrupt { .. })
    ));
    // Rollback republishes bytes through load_bytes, so it refuses to
    // propagate the corruption.
    assert!(matches!(
        store.rollback("prod", Some(1)),
        Err(RegistryError::Corrupt { .. })
    ));

    // The mirror case: payload intact, manifest lying about the size.
    fs::write(&payload, {
        bytes[mid] ^= 0x01; // restore the original payload
        &bytes
    })
    .unwrap();
    let text = fs::read_to_string(&manifest).unwrap();
    let lied = text.replacen(&format!(" {} ", bytes.len()), " 1 ", 1);
    assert_ne!(text, lied, "size field must have been rewritten");
    fs::write(&manifest, lied).unwrap();
    assert!(matches!(
        store.load_bytes("prod", None),
        Err(RegistryError::Corrupt { .. })
    ));
    cleanup(&store);
}

#[test]
fn missing_payload_file_is_a_typed_error() {
    let (store, _manifest) = damaged_fixture("missing-payload");
    fs::remove_file(store.root().join("prod").join("gen-000001.ffdm")).unwrap();
    assert!(matches!(
        store.load_bytes("prod", None),
        Err(RegistryError::Io(_))
    ));
    cleanup(&store);
}
