//! End-to-end model lifecycle: publish → serve → publish v2 → hot-swap →
//! rollback → hot-swap, with every model byte travelling through the
//! registry (and therefore through both integrity checks).

use ffdl_core::full_registry;
use ffdl_deploy::{parse_architecture, InferenceEngine};
use ffdl_registry::{ModelStore, RegistryError};
use ffdl_serve::{ServeConfig, Server};
use ffdl_tensor::Tensor;
use std::time::Duration;

const ARCH: &str = "\
input 16
circulant_fc 16 block=4
relu
fc 4
softmax
";

fn network(seed: u64) -> ffdl_nn::Network {
    parse_architecture(ARCH, seed).expect("arch parses").network
}

fn samples(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|s| Tensor::from_fn(&[16], |i| (((s * 16 + i) * 11) % 29) as f32 * 0.03))
        .collect()
}

/// Offline single-sample predictions — the bit-exact reference for
/// whatever generation served a request.
fn offline(net: ffdl_nn::Network, samples: &[Tensor]) -> Vec<ffdl_deploy::Prediction> {
    let mut engine = InferenceEngine::new(net);
    samples
        .iter()
        .map(|s| {
            engine
                .predict(&s.reshape(&[1, 16]).expect("reshape"))
                .expect("offline predict")
                .remove(0)
        })
        .collect()
}

#[test]
fn registry_feeds_live_hot_swap_and_rollback() {
    let dir = std::env::temp_dir().join(format!(
        "ffdl-registry-serve-integration-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::open(&dir).expect("open store");
    let layers = full_registry();

    // Publish v1 and serve from the *loaded* copy, so the pool's model
    // passed the manifest digest and the wire trailer on the way in.
    store.publish("prod", &network(100), "toy").expect("publish v1");
    let (model_a, v1) = store.load("prod", None, &layers).expect("load v1");
    assert_eq!(v1.generation, 1);

    let inputs = samples(48);
    let expected_a = offline(network(100), &inputs);
    let expected_b = offline(network(200), &inputs);

    let config = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_micros(100),
        queue_depth: 256,
        ..Default::default()
    };
    let server = Server::start(&model_a, &config).expect("start pool");
    for (i, s) in inputs.iter().take(16).enumerate() {
        server.try_submit(i as u64, s.clone()).expect("submit");
    }

    // Publish v2 and swap the running pool onto it.
    store.publish("prod", &network(200), "toy").expect("publish v2");
    let (model_b, v2) = store.load("prod", None, &layers).expect("load v2");
    assert_eq!(v2.generation, 2);
    assert_ne!(v1.checksum, v2.checksum, "distinct models, distinct digests");
    assert_eq!(server.swap_model(&model_b).expect("swap to v2"), 2);

    for (i, s) in inputs.iter().enumerate().skip(16).take(16) {
        server.try_submit(i as u64, s.clone()).expect("submit");
    }

    // Roll back: generation 1's bytes come back as generation 3, and the
    // pool picks the rollback up exactly like a fresh publish.
    let rolled = store.rollback("prod", None).expect("rollback");
    assert_eq!((rolled.generation, rolled.rollback_of), (3, Some(1)));
    assert_eq!(rolled.checksum, v1.checksum, "rollback carries v1's bytes");
    let (model_r, vr) = store.load("prod", None, &layers).expect("load rollback");
    assert_eq!(vr.generation, 3);
    assert_eq!(server.swap_model(&model_r).expect("swap to rollback"), 3);

    for (i, s) in inputs.iter().enumerate().skip(32) {
        server.try_submit(i as u64, s.clone()).expect("submit");
    }
    let report = server.finish().expect("finish");

    // Nothing dropped across two swaps, and every response is bit-exact
    // for the generation that served it. Generations 1 and 3 are the
    // same bytes — both predict like model A.
    assert_eq!(report.requests, inputs.len());
    assert_eq!(report.queue_full_rejections, 0);
    assert_eq!(report.worker_restarts, 0);
    assert_eq!(report.model_generation, 3);
    for resp in &report.responses {
        let i = resp.id as usize;
        match resp.generation {
            1 | 3 => assert_eq!(resp.prediction, expected_a[i], "id {i} (model A)"),
            2 => assert_eq!(resp.prediction, expected_b[i], "id {i} (model B)"),
            g => panic!("impossible generation {g}"),
        }
    }

    // A corrupted payload can never reach the pool: flip one bit in the
    // active generation's file and the load fails with a typed error.
    let path = dir.join("prod").join("gen-000003.ffdm");
    let mut bytes = std::fs::read(&path).expect("read payload");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corrupted payload");
    assert!(matches!(
        store.load("prod", None, &layers),
        Err(RegistryError::Corrupt { generation: 3, .. })
    ));

    std::fs::remove_dir_all(&dir).ok();
}
