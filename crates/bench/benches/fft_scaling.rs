//! Bench behind Fig. 1: FFT vs naive DFT across sizes, plus the
//! Bluestein path for non-power-of-two lengths. Runs on the in-house
//! harness and writes `BENCH_fft_scaling.json` at the workspace root.

use ffdl::fft::{dft, Complex64, Direction, FftPlanner};
use ffdl_bench::harness::{black_box, BenchSet};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
        .collect()
}

fn main() {
    let mut set = BenchSet::new("fft_scaling");
    let mut planner = FftPlanner::<f64>::new();

    for exp in [4u32, 6, 8, 10] {
        let n = 1usize << exp;
        let x = signal(n);
        let plan = planner.plan_forward(n);
        let mut buf = x.clone();
        set.bench_with_size(&format!("fft/{n}"), n as u64, || {
            buf.copy_from_slice(&x);
            plan.process(black_box(&mut buf)).expect("length matches");
        });
        if n <= 256 {
            set.bench_with_size(&format!("dft/{n}"), n as u64, || {
                black_box(dft(black_box(&x), Direction::Forward));
            });
        }
    }

    for n in [121usize, 127, 500] {
        let x = signal(n);
        let plan = planner.plan_forward(n);
        let mut buf = x.clone();
        set.bench_with_size(&format!("bluestein/{n}"), n as u64, || {
            buf.copy_from_slice(&x);
            plan.process(black_box(&mut buf)).expect("length matches");
        });
    }

    set.finish().expect("write BENCH_fft_scaling.json");
}
