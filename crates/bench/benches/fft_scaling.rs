//! Criterion bench behind Fig. 1: FFT vs naive DFT across sizes, plus the
//! Bluestein path for non-power-of-two lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffdl::fft::{dft, Complex64, Direction, FftPlanner};
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft_vs_dft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_fft_vs_dft");
    group.sample_size(12);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut planner = FftPlanner::<f64>::new();
    for exp in [4u32, 6, 8, 10] {
        let n = 1usize << exp;
        let x = signal(n);
        let plan = planner.plan_forward(n);
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| {
            let mut buf = x.clone();
            b.iter(|| {
                buf.copy_from_slice(&x);
                plan.process(black_box(&mut buf)).expect("length matches");
            });
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("dft", n), &n, |b, _| {
                b.iter(|| black_box(dft(black_box(&x), Direction::Forward)));
            });
        }
    }
    group.finish();
}

fn bench_bluestein(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_bluestein_odd_sizes");
    group.sample_size(12);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut planner = FftPlanner::<f64>::new();
    for n in [121usize, 127, 500] {
        let x = signal(n);
        let plan = planner.plan_forward(n);
        group.bench_with_input(BenchmarkId::new("bluestein", n), &n, |b, _| {
            let mut buf = x.clone();
            b.iter(|| {
                buf.copy_from_slice(&x);
                plan.process(black_box(&mut buf)).expect("length matches");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_vs_dft, bench_bluestein);
criterion_main!(benches);
