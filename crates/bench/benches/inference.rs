//! Bench behind Tables II/III: per-image inference of the paper's
//! architectures — training form, frozen spectral form, and the dense
//! baselines. Runs on the in-house harness and writes
//! `BENCH_inference.json` at the workspace root.

use ffdl::paper;
use ffdl::tensor::Tensor;
use ffdl_bench::harness::{black_box, BenchSet};

fn main() {
    let mut set = BenchSet::new("inference");

    // Table II — MNIST architectures.
    let x1 = Tensor::from_fn(&[1, 256], |i| ((i * 7) % 23) as f32 * 0.04);
    let x2 = Tensor::from_fn(&[1, 121], |i| ((i * 7) % 23) as f32 * 0.04);

    let mut a1 = paper::arch1(3);
    let mut a1_frozen = paper::freeze_spectral(&a1).expect("valid network");
    let mut a1_dense = paper::arch1_dense(3);
    set.bench_with_size("arch1_circulant", 256, || {
        black_box(a1.forward(black_box(&x1)).expect("valid"));
    });
    set.bench_with_size("arch1_spectral_frozen", 256, || {
        black_box(a1_frozen.forward(black_box(&x1)).expect("valid"));
    });
    set.bench_with_size("arch1_dense_baseline", 256, || {
        black_box(a1_dense.forward(black_box(&x1)).expect("valid"));
    });

    let mut a2 = paper::arch2(3);
    let mut a2_frozen = paper::freeze_spectral(&a2).expect("valid network");
    set.bench_with_size("arch2_circulant", 121, || {
        black_box(a2.forward(black_box(&x2)).expect("valid"));
    });
    set.bench_with_size("arch2_spectral_frozen", 121, || {
        black_box(a2_frozen.forward(black_box(&x2)).expect("valid"));
    });

    // Table III — CIFAR-10 architecture.
    let x = Tensor::from_fn(&[1, 3, 32, 32], |i| ((i * 13) % 97) as f32 / 97.0);
    let mut a3 = paper::arch3(7);
    set.bench_with_size("arch3_full", 32, || {
        black_box(a3.forward(black_box(&x)).expect("valid"));
    });
    let xr = Tensor::from_fn(&[1, 3, 16, 16], |i| ((i * 13) % 97) as f32 / 97.0);
    let mut a3r = paper::arch3_reduced(7);
    set.bench_with_size("arch3_reduced", 16, || {
        black_box(a3r.forward(black_box(&xr)).expect("valid"));
    });

    set.finish().expect("write BENCH_inference.json");
}
