//! Criterion bench behind Tables II/III: per-image inference of the
//! paper's architectures — training form, frozen spectral form, and the
//! dense baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use ffdl::paper;
use ffdl::tensor::Tensor;
use std::hint::black_box;

fn bench_mnist_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_mnist_inference");
    group.sample_size(12);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let x1 = Tensor::from_fn(&[1, 256], |i| ((i * 7) % 23) as f32 * 0.04);
    let x2 = Tensor::from_fn(&[1, 121], |i| ((i * 7) % 23) as f32 * 0.04);

    let mut a1 = paper::arch1(3);
    let mut a1_frozen = paper::freeze_spectral(&a1).expect("valid network");
    let mut a1_dense = paper::arch1_dense(3);
    group.bench_function("arch1_circulant", |b| {
        b.iter(|| black_box(a1.forward(black_box(&x1)).expect("valid")));
    });
    group.bench_function("arch1_spectral_frozen", |b| {
        b.iter(|| black_box(a1_frozen.forward(black_box(&x1)).expect("valid")));
    });
    group.bench_function("arch1_dense_baseline", |b| {
        b.iter(|| black_box(a1_dense.forward(black_box(&x1)).expect("valid")));
    });

    let mut a2 = paper::arch2(3);
    let mut a2_frozen = paper::freeze_spectral(&a2).expect("valid network");
    group.bench_function("arch2_circulant", |b| {
        b.iter(|| black_box(a2.forward(black_box(&x2)).expect("valid")));
    });
    group.bench_function("arch2_spectral_frozen", |b| {
        b.iter(|| black_box(a2_frozen.forward(black_box(&x2)).expect("valid")));
    });
    group.finish();
}

fn bench_cifar_architecture(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_cifar_inference");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let x = Tensor::from_fn(&[1, 3, 32, 32], |i| ((i * 13) % 97) as f32 / 97.0);
    let mut a3 = paper::arch3(7);
    group.bench_function("arch3_full", |b| {
        b.iter(|| black_box(a3.forward(black_box(&x)).expect("valid")));
    });
    let xr = Tensor::from_fn(&[1, 3, 16, 16], |i| ((i * 13) % 97) as f32 / 97.0);
    let mut a3r = paper::arch3_reduced(7);
    group.bench_function("arch3_reduced", |b| {
        b.iter(|| black_box(a3r.forward(black_box(&xr)).expect("valid")));
    });
    group.finish();
}

criterion_group!(benches, bench_mnist_architectures, bench_cifar_architecture);
criterion_main!(benches);
