//! Criterion bench behind Fig. 2: the "FFT → ∘ → IFFT" circulant
//! mat-vec against the dense `O(n²)` product, across sizes and block
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffdl::core::BlockCirculantMatrix;
use ffdl::tensor::Tensor;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_single_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_circulant_vs_dense");
    group.sample_size(12);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
    for exp in [7u32, 9, 11] {
        let n = 1usize << exp;
        let m = BlockCirculantMatrix::random(n, n, n, &mut rng).expect("valid dims");
        let dense_t = m.to_dense().transpose().expect("rank 2");
        let x: Vec<f32> = (0..n).map(|k| (k as f32 * 0.13).sin()).collect();
        let xt = Tensor::from_slice(&x);

        group.bench_with_input(BenchmarkId::new("fft_kernel", n), &n, |b, _| {
            b.iter(|| black_box(m.matvec(black_box(&x)).expect("length matches")));
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| black_box(dense_t.matvec(black_box(&xt)).expect("shapes match")));
        });
    }
    group.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    // Fixed 1024×1024 logical matrix, varying block size: the A1 dial.
    let mut group = c.benchmark_group("fig2_block_size_dial");
    group.sample_size(12);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(23);
    let n = 1024usize;
    let x: Vec<f32> = (0..n).map(|k| (k as f32 * 0.29).cos()).collect();
    for block in [16usize, 64, 256, 1024] {
        let m = BlockCirculantMatrix::random(n, n, block, &mut rng).expect("valid dims");
        group.bench_with_input(BenchmarkId::new("matvec", block), &block, |b, _| {
            b.iter(|| black_box(m.matvec(black_box(&x)).expect("length matches")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_block, bench_block_sizes);
criterion_main!(benches);
