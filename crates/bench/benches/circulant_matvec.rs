//! Bench behind Fig. 2: the "FFT → ∘ → IFFT" circulant mat-vec against
//! the dense `O(n²)` product, across sizes and block sizes. Runs on the
//! in-house harness and writes `BENCH_circulant_matvec.json`.

use ffdl::core::BlockCirculantMatrix;
use ffdl::tensor::Tensor;
use ffdl_bench::harness::{black_box, BenchSet};
use ffdl_rng::SeedableRng;

fn main() {
    let mut set = BenchSet::new("circulant_matvec");

    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(17);
    for exp in [7u32, 9, 11] {
        let n = 1usize << exp;
        let m = BlockCirculantMatrix::random(n, n, n, &mut rng).expect("valid dims");
        let dense_t = m.to_dense().transpose().expect("rank 2");
        let x: Vec<f32> = (0..n).map(|k| (k as f32 * 0.13).sin()).collect();
        let xt = Tensor::from_slice(&x);

        set.bench_with_size(&format!("fft_kernel/{n}"), n as u64, || {
            black_box(m.matvec(black_box(&x)).expect("length matches"));
        });
        set.bench_with_size(&format!("dense/{n}"), n as u64, || {
            black_box(dense_t.matvec(black_box(&xt)).expect("shapes match"));
        });
    }

    // Fixed 1024×1024 logical matrix, varying block size: the A1 dial.
    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(23);
    let n = 1024usize;
    let x: Vec<f32> = (0..n).map(|k| (k as f32 * 0.29).cos()).collect();
    for block in [16usize, 64, 256, 1024] {
        let m = BlockCirculantMatrix::random(n, n, block, &mut rng).expect("valid dims");
        set.bench_with_size(&format!("block_dial/{block}"), block as u64, || {
            black_box(m.matvec(black_box(&x)).expect("length matches"));
        });
    }

    set.finish().expect("write BENCH_circulant_matvec.json");
}
