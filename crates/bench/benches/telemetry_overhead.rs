//! Overhead of the `ffdl-telemetry` subsystem, disabled and enabled.
//!
//! The contract that lets telemetry hooks live inside the FFT plan
//! cache, the per-layer forward pass and the serving hot loop is that a
//! *disabled* hook costs one relaxed atomic bool load plus a predictable
//! branch — indistinguishable from a no-op. This bench pins that down:
//! the `disabled/*` rows must sit within a few nanoseconds of
//! `baseline/nop`, while the `enabled/*` rows show what a recording hook
//! actually costs. Writes `BENCH_telemetry.json` at the workspace root.

use ffdl::telemetry;
use ffdl_bench::harness::{black_box, BenchSet};

fn main() {
    let mut set = BenchSet::new("telemetry");
    let registry = telemetry::global();
    let counter = registry.counter("ffdl.bench.counter");
    let histogram = registry.histogram("ffdl.bench.histogram_ns");

    // Pure-arithmetic floor: what a loop iteration costs with no
    // telemetry call at all.
    let mut acc = 0u64;
    set.bench("baseline/nop", || {
        acc = acc.wrapping_add(black_box(1));
    });

    // ---- Disabled: the cost every production call site pays ----------
    telemetry::set_enabled(false);

    set.bench("disabled/count_helper", || {
        telemetry::count(black_box("ffdl.bench.counter"), 1);
    });
    set.bench("disabled/span_helper", || {
        let span = telemetry::span(black_box("ffdl.bench.span_ns"));
        black_box(span.is_recording());
    });
    set.bench("disabled/guarded_counter_inc", || {
        if telemetry::enabled() {
            counter.inc();
        }
    });
    set.bench("disabled/guarded_histogram_record", || {
        if telemetry::enabled() {
            histogram.record(black_box(42));
        }
    });
    // The ffdl-stream worker's per-step hook pattern: one guarded
    // counter bump plus one guarded latency record. This is what every
    // streaming step pays with metrics off (guarded < 5 ns/op in
    // verify.sh).
    set.bench("disabled/stream_step_hooks", || {
        if telemetry::enabled() {
            counter.inc();
            histogram.record(black_box(42));
        }
    });

    // ---- Enabled: what recording actually costs ----------------------
    telemetry::set_enabled(true);

    set.bench("enabled/counter_inc", || {
        counter.inc();
    });
    set.bench("enabled/histogram_record", || {
        histogram.record(black_box(42));
    });
    // Two Instant::now() calls dominate the span path.
    let span_hist = registry.histogram("ffdl.bench.span_ns");
    set.bench("enabled/span_record", || {
        let span = telemetry::SpanTimer::start(std::sync::Arc::clone(&span_hist));
        black_box(span.is_recording());
    });
    // The global helper also pays the registry name lookup.
    set.bench("enabled/count_helper", || {
        telemetry::count(black_box("ffdl.bench.counter"), 1);
    });

    telemetry::set_enabled(false);

    // The headline claim: a disabled hook is within noise of the no-op
    // floor (< 5 ns/op absolute; the rows above make the margin visible).
    for m in set.measurements() {
        if m.label.starts_with("disabled/") {
            assert!(
                m.median_ns < 5.0,
                "{} median {:.2} ns exceeds the 5 ns disabled-path budget",
                m.label,
                m.median_ns
            );
        }
    }

    set.finish().expect("write BENCH_telemetry.json");
}
