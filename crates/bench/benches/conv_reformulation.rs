//! Bench behind Fig. 3 / §IV-B: direct convolution vs the im2col
//! lowering vs the block-circulant CONV layer. Runs on the in-house
//! harness and writes `BENCH_conv_reformulation.json`.

use ffdl::core::{CirculantConv2d, FftConv2d};
use ffdl::nn::{Conv2d, Layer};
use ffdl::tensor::{conv2d_direct, filters_to_matrix, im2col, ConvGeometry, Tensor};
use ffdl_bench::harness::{black_box, BenchSet};
use ffdl_rng::SeedableRng;

fn main() {
    let mut set = BenchSet::new("conv_reformulation");

    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(31);
    let geom = ConvGeometry::valid(3);
    let (ch, h, w, p) = (16usize, 16usize, 16usize, 32usize);
    let image = Tensor::from_fn(&[ch, h, w], |i| ((i * 7 + 1) % 13) as f32 * 0.1);
    let batch = Tensor::from_fn(&[1, ch, h, w], |i| ((i * 7 + 1) % 13) as f32 * 0.1);
    let filters = Tensor::from_fn(&[p, ch, 3, 3], |i| ((i * 5) % 9) as f32 * 0.05 - 0.2);
    let fmat = filters_to_matrix(&filters).expect("rank 4 filters");

    set.bench("direct_definition", || {
        black_box(conv2d_direct(black_box(&image), &filters, geom).expect("valid"));
    });
    set.bench("im2col_matmul", || {
        let cols = im2col(black_box(&image), geom).expect("valid");
        black_box(cols.matmul(&fmat).expect("shapes match"));
    });

    let mut dense_layer = Conv2d::new(ch, p, h, w, geom, &mut rng).expect("valid dims");
    set.bench("dense_conv_layer", || {
        black_box(dense_layer.forward(black_box(&batch)).expect("valid"));
    });

    for block in [16usize, 48] {
        let mut circ =
            CirculantConv2d::new(ch, p, h, w, geom, block, &mut rng).expect("valid dims");
        set.bench_with_size(&format!("circulant_conv_layer_b{block}"), block as u64, || {
            black_box(circ.forward(black_box(&batch)).expect("valid"));
        });
    }

    // The §I baseline: LeCun-style 2-D FFT convolution (accelerates only).
    let mut fft_layer = FftConv2d::new(ch, p, h, w, 3, &mut rng).expect("valid dims");
    set.bench("fft_conv_baseline", || {
        black_box(fft_layer.forward(black_box(&batch)).expect("valid"));
    });

    set.finish().expect("write BENCH_conv_reformulation.json");
}
