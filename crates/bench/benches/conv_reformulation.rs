//! Criterion bench behind Fig. 3 / §IV-B: direct convolution vs the
//! im2col lowering vs the block-circulant CONV layer.

use criterion::{criterion_group, criterion_main, Criterion};
use ffdl::core::{CirculantConv2d, FftConv2d};
use ffdl::nn::{Conv2d, Layer};
use ffdl::tensor::{conv2d_direct, filters_to_matrix, im2col, ConvGeometry, Tensor};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_conv_reformulation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
    let geom = ConvGeometry::valid(3);
    let (ch, h, w, p) = (16usize, 16usize, 16usize, 32usize);
    let image = Tensor::from_fn(&[ch, h, w], |i| ((i * 7 + 1) % 13) as f32 * 0.1);
    let batch = Tensor::from_fn(&[1, ch, h, w], |i| ((i * 7 + 1) % 13) as f32 * 0.1);
    let filters = Tensor::from_fn(&[p, ch, 3, 3], |i| ((i * 5) % 9) as f32 * 0.05 - 0.2);
    let fmat = filters_to_matrix(&filters).expect("rank 4 filters");

    group.bench_function("direct_definition", |b| {
        b.iter(|| black_box(conv2d_direct(black_box(&image), &filters, geom).expect("valid")));
    });
    group.bench_function("im2col_matmul", |b| {
        b.iter(|| {
            let cols = im2col(black_box(&image), geom).expect("valid");
            black_box(cols.matmul(&fmat).expect("shapes match"))
        });
    });

    let mut dense_layer = Conv2d::new(ch, p, h, w, geom, &mut rng).expect("valid dims");
    group.bench_function("dense_conv_layer", |b| {
        b.iter(|| black_box(dense_layer.forward(black_box(&batch)).expect("valid")));
    });

    for block in [16usize, 48] {
        let mut circ =
            CirculantConv2d::new(ch, p, h, w, geom, block, &mut rng).expect("valid dims");
        group.bench_function(format!("circulant_conv_layer_b{block}"), |b| {
            b.iter(|| black_box(circ.forward(black_box(&batch)).expect("valid")));
        });
    }

    // The §I baseline: LeCun-style 2-D FFT convolution (accelerates only).
    let mut fft_layer = FftConv2d::new(ch, p, h, w, 3, &mut rng).expect("valid dims");
    group.bench_function("fft_conv_baseline", |b| {
        b.iter(|| black_box(fft_layer.forward(black_box(&batch)).expect("valid")));
    });
    group.finish();
}

criterion_group!(benches, bench_conv_paths);
criterion_main!(benches);
