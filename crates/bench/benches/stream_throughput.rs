//! Streaming serving bench: sticky-session throughput of `ffdl-stream`
//! under a saturating multi-session workload. Writes
//! `BENCH_stream.json` at the workspace root (unit: steps/sec; each
//! request is one recurrent step, so `throughput_rps` *is* the step
//! rate, and the serve percentiles are per-step latencies — the
//! committed numbers the verify guard checks).
//!
//! Service time is pinned with `ffdl-sched`'s `delay` layer (400 µs per
//! step) in front of a real block-circulant GRU, for the same reason
//! the sched bench pins it: on a small (possibly single-core) host a
//! CPU-bound forward gains nothing from extra workers, which would
//! make the scaling rows an artifact of the machine. With a pinned
//! step, the rows measure what sticky routing actually provides —
//! *cross-session* parallelism: one session's steps are inherently
//! serial (state-carrying), so extra workers help exactly when
//! independent sessions hash to different workers.
//!
//! Rows (fixed seed, committed): `stream_w{1,2,4}` — the same
//! 16-session × 200-step workload against pinned worker counts.
//! `stream_w2` throughput must be monotone over `stream_w1` (guarded
//! in `scripts/verify.sh`).

use ffdl::core::CirculantGru;
use ffdl::nn::{Dense, Network, Softmax};
use ffdl::tensor::Tensor;
use ffdl_rng::{SeedableRng, SmallRng};
use ffdl_sched::{delay_registry, DelayLayer};
use ffdl_stream::{StreamConfig, StreamError, StreamReport, StreamServer};
use std::path::{Path, PathBuf};

const FEATURES: usize = 32;
const HIDDEN: usize = 32;
const CLASSES: usize = 8;
/// Pinned per-step service time: one worker answers ~2500 steps/s.
const DELAY_US: u64 = 400;
const SEED: u64 = 0x5EED_0009;
const SESSIONS: u64 = 16;
const STEPS: usize = 200;

fn out_dir() -> PathBuf {
    match std::env::var("FFDL_BENCH_OUT_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

/// delay → block-circulant GRU → dense → softmax: a stateful model with
/// a pinned service time.
fn model() -> Network {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut network = Network::new();
    network.push(DelayLayer::new(DELAY_US));
    network.push(CirculantGru::new(FEATURES, HIDDEN, 8, &mut rng).expect("gru dims"));
    network.push(Dense::new(HIDDEN, CLASSES, &mut rng));
    network.push(Softmax::new());
    network
}

fn token(session: u64, step: usize) -> Tensor {
    Tensor::from_fn(&[FEATURES], |i| {
        ((session as usize * 131 + step * 17 + i) as f32 * 0.083).sin()
    })
}

/// Runs the fixed workload against a pinned worker count: open all
/// sessions, submit steps interleaved (spinning out per-session and
/// queue backpressure), close, finish.
fn run(workers: usize) -> StreamReport {
    let config = StreamConfig {
        workers,
        queue_depth: 1024,
        ..Default::default()
    };
    let server =
        StreamServer::start_with_registry(&model(), &config, delay_registry()).expect("start");
    for session in 0..SESSIONS {
        server.open_session(session).expect("open");
    }
    for step in 0..STEPS {
        for session in 0..SESSIONS {
            let id = session * STEPS as u64 + step as u64;
            loop {
                match server.step(session, id, token(session, step)) {
                    Ok(()) => break,
                    Err(StreamError::QueueFull(_) | StreamError::SessionBusy { .. }) => {
                        std::thread::yield_now()
                    }
                    Err(e) => panic!("submit: {e}"),
                }
            }
        }
    }
    for session in 0..SESSIONS {
        server.close_session(session).expect("close");
    }
    let report = server.finish().expect("finish");
    assert_eq!(
        report.steps,
        SESSIONS * STEPS as u64,
        "workload lost steps at {workers} workers"
    );
    assert!(report.serve.failures.is_empty(), "unexpected failures");
    eprintln!(
        "stream/w{workers}  {:>9.0} steps/s   p50 {:>9.1} µs   p99 {:>9.1} µs",
        report.serve.throughput_rps, report.serve.p50_us, report.serve.p99_us,
    );
    report
}

fn main() {
    let mut rows: Vec<(String, StreamReport)> = Vec::new();
    for &workers in &[1usize, 2, 4] {
        rows.push((format!("stream_w{workers}"), run(workers)));
    }
    let borrowed: Vec<(String, &StreamReport)> =
        rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    let out = ffdl_stream::stream_bench_json(&borrowed);
    let path = out_dir().join("BENCH_stream.json");
    std::fs::write(&path, out).expect("write BENCH_stream.json");
    eprintln!("wrote {}", path.display());
}
