//! Multi-tenant scheduling bench: **open-loop** Poisson load against the
//! `ffdl-sched` runtime, reporting per-tenant SLO attainment. Writes
//! `BENCH_sched.json` at the workspace root (unit: requests/sec, with
//! per-tenant `slo_attainment` rows — the guarded numbers).
//!
//! Service time is pinned with the `delay` layer (4 ms per batch, so one
//! worker serves ~1000 req/s at batch 4) instead of a real forward pass.
//! Two reasons: the scenarios are about *scheduling* — weighted capacity
//! division, priority preemption, autoscaling — and a pinned service
//! time makes the measured ratios host-independent; and on a small box a
//! CPU-bound model gains nothing from extra workers, which would make
//! the worker-scaling rows meaningless.
//!
//! Scenarios (fixed seed, committed as rows):
//!
//! * `single_tenant` — one tenant at 60% of capacity: the SLO baseline.
//! * `skewed_8to1`   — two tenants, weights 8:1, each offering 1.5× the
//!   pool's total capacity: WDRR divides completions ~8:1 and the SLO
//!   attainment gap shows who the overload is taken out of.
//! * `overload`      — a small `high`-class tenant sharing the pool with
//!   a saturating bulk tenant while the autoscaler grows the pool 1→4:
//!   the priority tenant's attainment must stay ≥ 0.95 (guarded), and
//!   the row must show scale-ups (guarded).
//! * `scale_w{1,2,4}` — the same saturating load against pinned pools of
//!   1/2/4 workers: throughput must grow monotonically (guarded), i.e.
//!   added workers genuinely add concurrency.
//! * `skewed_8to1_brownout` — the same 8:1 skew, but the heavy tenant
//!   carries a three-rung precision ladder (4/2/1 ms per batch — the
//!   f32 → int16 → int8 speedups) and the brownout controller walks it
//!   under pressure: the light tenant must stay ≥ 0.9 attainment and
//!   the heavy tenant ≥ 0.5 (guarded), with a dedicated brownout row
//!   recording the peak level and the recovery to full precision.

use ffdl::tensor::Tensor;
use ffdl_registry::ModelStore;
use ffdl_sched::{
    delay_model, delay_registry, run_open_loop, BrownoutConfig, Ladder, LadderRung, OpenLoopPlan,
    PriorityClass, SchedConfig, SchedReport, Scheduler, TenantSpec,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const FEATURES: usize = 16;
const CLASSES: usize = 4;
/// Pinned per-batch service time; with `max_batch` 4 one worker serves
/// ~1000 req/s.
const DELAY_US: u64 = 4000;
const MAX_BATCH: usize = 4;
const SEED: u64 = 0x5EED_0007;

fn samples(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|s| Tensor::from_fn(&[FEATURES], |i| (((s * FEATURES + i) * 7) % 23) as f32 * 0.1))
        .collect()
}

fn out_dir() -> PathBuf {
    match std::env::var("FFDL_BENCH_OUT_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

/// Runs one open-loop scenario to completion (generate, then drain) and
/// returns the report plus total generated/rejected counts.
fn run(
    store: &ModelStore,
    label: &str,
    specs: &[TenantSpec],
    config: &SchedConfig,
    rates: &[f64],
    duration: Duration,
) -> (SchedReport, u64, u64) {
    assert_eq!(specs.len(), rates.len());
    let sched = Scheduler::start_with_registry(store, specs, config, delay_registry())
        .unwrap_or_else(|e| panic!("start {label}: {e}"));
    let plans: Vec<OpenLoopPlan> = rates
        .iter()
        .map(|&rate_rps| OpenLoopPlan { rate_rps, samples: samples(64) })
        .collect();
    let summary = run_open_loop(&sched, &plans, duration, SEED)
        .unwrap_or_else(|e| panic!("open loop {label}: {e}"));
    if config.brownout.is_some() {
        // Brownout scenarios commit the whole round trip — degrade under
        // the overload, recover to full precision once it drains — so
        // hold the report until every ladder-bearing tenant is back at
        // level 0 with an empty queue (bounded: the guard catches a
        // missing recovery either way).
        let deadline = Instant::now() + Duration::from_secs(10);
        while (0..specs.len())
            .any(|t| sched.tenant_queue_len(t) > 0 || sched.tenant_level(t) > 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let report = sched.finish().unwrap_or_else(|e| panic!("finish {label}: {e}"));
    let generated: u64 = summary.generated.iter().sum();
    let rejected: u64 = summary.rejected.iter().sum();
    eprintln!(
        "sched/{label:<14} {:>8.0} req/s   gen {generated:>5}   workers {}->{} ({} ups)   p99 {:>9.1} µs",
        report.serve.throughput_rps,
        report.min_workers,
        report.peak_workers,
        report.scale_ups,
        report.serve.p99_us,
    );
    for t in &report.serve.tenants {
        eprintln!(
            "      tenant {:<6} requests {:>5}   shed {:>4}   expired {:>4}   slo-attainment {:.4}",
            t.tenant, t.requests, t.shed, t.expired, t.slo_attainment,
        );
    }
    (report, generated, rejected)
}

/// One-line summary row; per-tenant rows ride along via
/// [`ffdl_serve::TenantStat::json_row`] so every guarded number lives on
/// its own line.
fn summary_row(label: &str, report: &SchedReport, generated: u64, rejected: u64) -> String {
    format!(
        "{{\"label\": \"{}\", \"tenants\": {}, \"workers_min\": {}, \
         \"workers_peak\": {}, \"scale_ups\": {}, \"scale_downs\": {}, \
         \"generated\": {}, \"rejected\": {}, \"requests\": {}, \
         \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"shed\": {}, \"expired\": {}}}",
        label,
        report.tenants.len(),
        report.min_workers,
        report.peak_workers,
        report.scale_ups,
        report.scale_downs,
        generated,
        rejected,
        report.serve.requests,
        report.serve.throughput_rps,
        report.serve.p50_us,
        report.serve.p99_us,
        report.serve.shed,
        report.serve.expired,
    )
}

fn spec(name: &str, weight: u64, class: PriorityClass, depth: usize) -> TenantSpec {
    let mut s = TenantSpec::new(name, "delay-bench");
    s.weight = weight;
    s.class = class;
    s.queue_depth = depth;
    s
}

fn pinned(workers: usize, deadline: Option<Duration>) -> SchedConfig {
    SchedConfig {
        min_workers: workers,
        max_workers: workers,
        max_batch: MAX_BATCH,
        quantum: 4,
        deadline,
        ..SchedConfig::default()
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ffdl-sched-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::open(&dir).expect("open bench store");
    store
        .publish("delay-bench", &delay_model(FEATURES, CLASSES, DELAY_US, 42), "bench")
        .expect("publish delay model");

    let mut rows: Vec<String> = Vec::new();
    let mut push = |label: &str, r: &SchedReport, generated: u64, rejected: u64| {
        rows.push(summary_row(label, r, generated, rejected));
        for t in &r.serve.tenants {
            rows.push(t.json_row(label));
        }
    };

    // Baseline: one tenant at ~60% capacity, comfortably inside a 25 ms
    // deadline (p99 ≈ batch wait + 4 ms service).
    let (r, g, j) = run(
        &store,
        "single_tenant",
        &[spec("solo", 1, PriorityClass::Normal, 2048)],
        &pinned(4, Some(Duration::from_millis(25))),
        &[2400.0],
        Duration::from_millis(1000),
    );
    push("single_tenant", &r, g, j);

    // Skewed weights under overload: both tenants offer 1.5× the pool's
    // total capacity. Shallow queues (depth 16) turn the excess into
    // queue-full sheds instead of an ever-aging backlog, so completions
    // track the WDRR service share (~8:1 plus the depth padding) and
    // waiting time stays inside the deadline for both tenants — the
    // attainment gap *is* the weight ratio, not an expiry collapse.
    let (r, g, j) = run(
        &store,
        "skewed_8to1",
        &[
            spec("heavy", 8, PriorityClass::Normal, 16),
            spec("light", 1, PriorityClass::Normal, 16),
        ],
        &pinned(1, Some(Duration::from_millis(200))),
        &[1500.0, 1500.0],
        Duration::from_millis(1000),
    );
    push("skewed_8to1", &r, g, j);

    // Overload with a protected priority tenant: bulk saturates a pool
    // that autoscales 1→4 while `prio` (high class) preempts dispatch.
    // Guards: prio slo_attainment >= 0.95 and scale_ups >= 1.
    let overload_config = SchedConfig {
        min_workers: 1,
        max_workers: 4,
        max_batch: MAX_BATCH,
        quantum: 4,
        deadline: Some(Duration::from_millis(50)),
        ..SchedConfig::default()
    };
    let (r, g, j) = run(
        &store,
        "overload",
        &[
            spec("prio", 1, PriorityClass::High, 1024),
            spec("bulk", 1, PriorityClass::Normal, 4096),
        ],
        &overload_config,
        &[400.0, 2500.0],
        Duration::from_millis(1500),
    );
    assert!(r.scale_ups >= 1, "overload scenario never scaled up");
    push("overload", &r, g, j);

    // Worker scaling under a fixed saturating load, no deadline: the
    // whole backlog drains, so throughput = generated / wall and must
    // grow with the pinned worker count.
    for &workers in &[1usize, 2, 4] {
        let label = format!("scale_w{workers}");
        let (r, g, j) = run(
            &store,
            &label,
            &[spec("load", 1, PriorityClass::Normal, 8192)],
            &pinned(workers, None),
            &[3000.0],
            Duration::from_millis(1500),
        );
        push(&label, &r, g, j);
    }

    // The 8:1 skew again, with graceful degradation instead of shed
    // collapse: `heavy` offers 1.5× the pool's f32 capacity but carries
    // a pre-published three-rung ladder; the brownout controller trades
    // its precision for queue delay and walks back up once the run's
    // arrivals stop. `light` rides along high-class at full precision.
    // Guards: light slo_attainment >= 0.9, heavy >= 0.5, and the
    // brownout row must show peak_level >= 1 with final_level 0.
    for (micros, seed, arch) in [(4000, 11, "bench-f32"), (2000, 22, "bench-int16"), (1000, 33, "bench-int8")] {
        store
            .publish("brownout-bench", &delay_model(FEATURES, CLASSES, micros, seed), arch)
            .expect("publish ladder rung");
    }
    let mut heavy = TenantSpec::new("heavy", "brownout-bench");
    heavy.weight = 8;
    heavy.queue_depth = 8192;
    heavy.ladder = Some(
        Ladder::new(vec![
            LadderRung { label: "f32".into(), registry_generation: 1 },
            LadderRung { label: "int16".into(), registry_generation: 2 },
            LadderRung { label: "int8".into(), registry_generation: 3 },
        ])
        .expect("three rungs make a ladder"),
    );
    let brownout_config = SchedConfig {
        brownout: Some(BrownoutConfig {
            target_delay: Duration::from_millis(20),
            sample_every: Duration::from_millis(2),
            window: 4,
            degrade_ticks: 3,
            shed_ticks: 40,
            hold: 4,
            max_hold: 64,
            seed: SEED,
        }),
        ..pinned(1, Some(Duration::from_millis(100)))
    };
    let (r, g, j) = run(
        &store,
        "skewed_8to1_brownout",
        &[heavy, spec("light", 1, PriorityClass::High, 256)],
        &brownout_config,
        &[1500.0, 150.0],
        Duration::from_millis(1500),
    );
    for b in &r.brownout {
        eprintln!(
            "      brownout {:<4} peak level {}   final level {}   {} transitions",
            b.tenant,
            b.peak_level,
            b.final_level,
            b.events.len(),
        );
    }
    push("skewed_8to1_brownout", &r, g, j);
    for b in &r.brownout {
        rows.push(format!(
            "{{\"label\": \"skewed_8to1_brownout\", \"tenant\": \"{}\", \
             \"peak_level\": {}, \"final_level\": {}, \"transitions\": {}}}",
            b.tenant,
            b.peak_level,
            b.final_level,
            b.events.len(),
        ));
    }

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"sched\",\n  \"unit\": \"requests_per_sec\",\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(row);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    let path = out_dir().join("BENCH_sched.json");
    std::fs::write(&path, out).expect("write BENCH_sched.json");
    eprintln!("wrote {}", path.display());

    let _ = std::fs::remove_dir_all(&dir);
}
