//! Model-lifecycle latency bench: what the registry and the live
//! hot-swap path cost. Writes `BENCH_registry.json` (unit: ns per call).
//!
//! Rows:
//!
//! * `publish` — serialize + checksum + atomic tmp/rename publish of the
//!   paper's Arch. 2 network into a [`ModelStore`].
//! * `load_verified` — read the active generation back with both
//!   integrity checks (manifest size/digest + wire-format trailer).
//! * `swap_model` — [`Server::swap_model`] against a running pool: one
//!   validation round-trip, slot store, generation bump. This is the
//!   admission-side cost of a swap; workers re-clone asynchronously.
//! * `serve_64req_no_swap` / `serve_64req_swap_every_16` — a full
//!   closed-loop run of 64 requests, without and with hot-swaps
//!   between two pre-loaded generations every 16 requests. The gap
//!   between the two rows is the end-to-end overhead hot-swapping
//!   imposes on a busy pool: the O(1) slot exchange plus every
//!   worker's structural re-clone on its next batch. The registry
//!   *load* a production swap would also pay is deliberately not on
//!   this path — it is measured by its own `load_verified` row, and
//!   `verify.sh` guards the swap rows' gap at < 15%.
//! * `serve_64req_deadline` — the no-swap run with a (generous)
//!   per-request deadline configured, so every admission stamps
//!   `Instant::now() + deadline` and every dequeue checks it. The gap
//!   to `serve_64req_no_swap` is the pure deadline-bookkeeping cost;
//!   `verify.sh` guards it at < 5%.

use ffdl::paper;
use ffdl::tensor::Tensor;
use ffdl_bench::harness::{black_box, BenchSet};
use ffdl_registry::ModelStore;
use ffdl_serve::{ServeConfig, ServeError, Server};
use std::time::Duration;

const REQUESTS: usize = 64;
const SWAP_EVERY: usize = 16;

fn samples() -> Vec<Tensor> {
    (0..REQUESTS)
        .map(|s| Tensor::from_fn(&[121], |i| (((s * 121 + i) * 7) % 23) as f32 * 0.04))
        .collect()
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        queue_depth: 256,
        ..Default::default()
    }
}

/// `config()` plus a deadline no request will ever miss: the row
/// measures the stamping/checking overhead, not actual shedding.
fn deadline_config() -> ServeConfig {
    ServeConfig {
        deadline: Some(Duration::from_secs(30)),
        ..config()
    }
}

/// One closed-loop run; `swap_every = 0` disables swapping. The two
/// generations are pre-loaded: the measured cost is the swap itself
/// (slot exchange + worker re-clones), not the registry read.
fn closed_loop(
    generations: (&ffdl::nn::Network, &ffdl::nn::Network),
    samples: &[Tensor],
    swap_every: usize,
    config: &ServeConfig,
) -> Result<(), ServeError> {
    let server = Server::start(generations.0, config)?;
    let mut swaps = 0u64;
    for (i, sample) in samples.iter().enumerate() {
        if swap_every > 0 && i > 0 && i.is_multiple_of(swap_every) {
            // Alternate between the two generations so the pool keeps
            // adopting fresh weights while the bench loops.
            let next = if swaps.is_multiple_of(2) {
                generations.1
            } else {
                generations.0
            };
            server.swap_model(next)?;
            swaps += 1;
        }
        loop {
            match server.try_submit(i as u64, sample.clone()) {
                Ok(()) => break,
                Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => return Err(e),
            }
        }
    }
    let report = server.finish()?;
    assert_eq!(report.requests, samples.len(), "requests dropped");
    black_box(report.model_generation);
    Ok(())
}

fn main() {
    let root = std::env::temp_dir().join(format!("ffdl-bench-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ModelStore::open(&root).expect("open store");
    let layers = ffdl::core::full_registry();
    let net_a = paper::arch2(1);
    let net_b = paper::arch2(2);
    // Fixed generations for the load and closed-loop rows.
    store.publish("ab", &net_a, "arch2").expect("publish a");
    store.publish("ab", &net_b, "arch2").expect("publish b");

    let mut set = BenchSet::new("registry");

    // The manifest is re-rendered per publish, so an unbounded history
    // would skew later samples; reset the model every 64 generations.
    let mut published = 0u64;
    set.bench("publish", || {
        if published.is_multiple_of(64) {
            let _ = std::fs::remove_dir_all(root.join("pub"));
        }
        store.publish("pub", &net_a, "arch2").expect("publish");
        published += 1;
    });

    set.bench("load_verified", || {
        let (net, version) = store.load("ab", None, &layers).expect("load");
        black_box((net.len(), version.generation));
    });

    let server = Server::start(&net_a, &config()).expect("start pool");
    let mut flip = false;
    set.bench("swap_model", || {
        flip = !flip;
        let next = if flip { &net_b } else { &net_a };
        black_box(server.swap_model(next).expect("swap"));
    });
    drop(server.finish().expect("idle pool finishes"));

    let samples = samples();
    let plain = config();
    let with_deadline = deadline_config();
    set.bench("serve_64req_no_swap", || {
        closed_loop((&net_a, &net_b), &samples, 0, &plain).expect("serve run");
    });
    set.bench("serve_64req_swap_every_16", || {
        closed_loop((&net_a, &net_b), &samples, SWAP_EVERY, &plain).expect("serve run");
    });
    set.bench("serve_64req_deadline", || {
        closed_loop((&net_a, &net_b), &samples, 0, &with_deadline).expect("serve run");
    });

    set.finish().expect("write BENCH_registry.json");
    let _ = std::fs::remove_dir_all(&root);
}
