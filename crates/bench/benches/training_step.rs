//! Criterion bench behind ablation A2: Algorithm 2's `O(n log n)` training
//! step against the dense `O(n²)` backpropagation, per layer size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffdl::core::CirculantDense;
use ffdl::nn::{Dense, Layer};
use ffdl::tensor::Tensor;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_training_step");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut rng = rand::rngs::SmallRng::seed_from_u64(41);
    for exp in [8u32, 10] {
        let n = 1usize << exp;
        let block = (n / 4).max(64);
        let x = Tensor::from_fn(&[8, n], |i| ((i * 3 + 1) % 11) as f32 * 0.05);

        let mut circ = CirculantDense::new(n, n, block, &mut rng).expect("valid dims");
        group.bench_with_input(BenchmarkId::new("circulant_fwd_bwd", n), &n, |b, _| {
            b.iter(|| {
                let y = circ.forward(black_box(&x)).expect("valid");
                black_box(circ.backward(&y).expect("cached"))
            });
        });

        // The dense baseline at 4096² (16.7M weights) is painful but
        // bounded; it is the entire point of the comparison.
        let mut dense = Dense::new(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("dense_fwd_bwd", n), &n, |b, _| {
            b.iter(|| {
                let y = dense.forward(black_box(&x)).expect("valid");
                black_box(dense.backward(&y).expect("cached"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
