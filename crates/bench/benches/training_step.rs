//! Bench behind ablation A2: Algorithm 2's `O(n log n)` training step
//! against the dense `O(n²)` backpropagation, per layer size. Runs on
//! the in-house harness and writes `BENCH_training_step.json`.

use ffdl::core::CirculantDense;
use ffdl::nn::{Dense, Layer};
use ffdl::tensor::Tensor;
use ffdl_bench::harness::{black_box, BenchSet};
use ffdl_rng::SeedableRng;

fn main() {
    let mut set = BenchSet::new("training_step");

    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(41);
    for exp in [8u32, 10] {
        let n = 1usize << exp;
        let block = (n / 4).max(64);
        let x = Tensor::from_fn(&[8, n], |i| ((i * 3 + 1) % 11) as f32 * 0.05);

        let mut circ = CirculantDense::new(n, n, block, &mut rng).expect("valid dims");
        set.bench_with_size(&format!("circulant_fwd_bwd/{n}"), n as u64, || {
            let y = circ.forward(black_box(&x)).expect("valid");
            black_box(circ.backward(&y).expect("cached"));
        });

        // The dense baseline is painful but bounded; it is the entire
        // point of the comparison.
        let mut dense = Dense::new(n, n, &mut rng);
        set.bench_with_size(&format!("dense_fwd_bwd/{n}"), n as u64, || {
            let y = dense.forward(black_box(&x)).expect("valid");
            black_box(dense.backward(&y).expect("cached"));
        });
    }

    set.finish().expect("write BENCH_training_step.json");
}
