//! Brownout recovery bench: what the precision ladder buys under a
//! saturating spike, and how fast the controller gives it back. Writes
//! `BENCH_brownout.json` at the workspace root.
//!
//! One tenant is offered 2.5× the pool's f32 capacity for one second,
//! then the arrivals stop and the run waits for the controller to walk
//! back to full precision. Two scenarios on identical load and seed:
//!
//! * `spike_no_ladder` — the baseline collapse: no ladder, so the
//!   backlog ages past the deadline and most of the spike expires.
//! * `spike_ladder`    — the same tenant with a three-rung delay-model
//!   ladder (4/2/1 ms per batch, the f32 → int16 → int8 speedups): the
//!   controller degrades into the cushion, serves the spike, and
//!   recovers.
//!
//! The ladder row carries the columns the guard reads, all computed
//! from the recorded [`BrownoutStat`] level events:
//!
//! * `residency_l{0,1,2}_ms` — wall time spent at each ladder level
//!   over the whole run (spike + drain + recovery);
//! * `recovery_ms` — time from the end of the offered load to the swap
//!   that put the tenant back at level 0;
//! * `peak_level` / `final_level` / `transitions`.
//!
//! Guards (scripts/verify.sh): the ladder run must beat the baseline's
//! SLO attainment by a clear margin, reach peak_level >= 1, and finish
//! recovered at final_level 0.

use ffdl::tensor::Tensor;
use ffdl_registry::ModelStore;
use ffdl_sched::{
    delay_model, delay_registry, run_open_loop, BrownoutConfig, BrownoutStat, Ladder, LadderRung,
    OpenLoopPlan, SchedConfig, SchedReport, Scheduler, TenantSpec,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const FEATURES: usize = 16;
const CLASSES: usize = 4;
const MAX_BATCH: usize = 4;
const SEED: u64 = 0x5EED_0B10;

/// Offered spike: 2.5× the 1000 req/s f32 capacity for one second.
const SPIKE_RPS: f64 = 2500.0;
const SPIKE: Duration = Duration::from_millis(1000);

fn samples(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|s| Tensor::from_fn(&[FEATURES], |i| (((s * FEATURES + i) * 7) % 23) as f32 * 0.1))
        .collect()
}

fn out_dir() -> PathBuf {
    match std::env::var("FFDL_BENCH_OUT_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

/// Per-level wall-time residency over `[0, total]`, from the level
/// events (the tenant starts at level 0).
fn residency(stat: &BrownoutStat, levels: usize, total: Duration) -> Vec<Duration> {
    let mut out = vec![Duration::ZERO; levels];
    let (mut level, mut since) = (0usize, Duration::ZERO);
    for event in &stat.events {
        out[level] += event.at.saturating_sub(since);
        level = event.level;
        since = event.at;
    }
    out[level] += total.saturating_sub(since);
    out
}

/// Time from the end of the offered load to the swap that put the
/// tenant back at level 0 (`None` when it never recovered).
fn recovery_after(stat: &BrownoutStat, spike: Duration) -> Option<Duration> {
    stat.events
        .iter()
        .rev()
        .find(|e| e.level == 0)
        .map(|e| e.at.saturating_sub(spike))
}

/// Runs one spike scenario: offer the load, wait (bounded) for the
/// queue to drain and the ladder to recover, then cut the report.
fn run(store: &ModelStore, label: &str, spec: TenantSpec, config: &SchedConfig) -> (SchedReport, u64, Duration) {
    let sched = Scheduler::start_with_registry(store, &[spec], config, delay_registry())
        .unwrap_or_else(|e| panic!("start {label}: {e}"));
    let started = Instant::now();
    let plans = [OpenLoopPlan { rate_rps: SPIKE_RPS, samples: samples(64) }];
    let summary = run_open_loop(&sched, &plans, SPIKE, SEED)
        .unwrap_or_else(|e| panic!("open loop {label}: {e}"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while (sched.tenant_queue_len(0) > 0 || sched.tenant_level(0) > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    let total = started.elapsed();
    let report = sched.finish().unwrap_or_else(|e| panic!("finish {label}: {e}"));
    (report, summary.generated[0], total)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ffdl-brownout-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::open(&dir).expect("open bench store");
    // The ladder: generations 1/2/3 at 4/2/1 ms per batched forward —
    // 1000 / 2000 / 4000 req/s of capacity at batch 4.
    for (micros, seed, arch) in [(4000, 11, "bench-f32"), (2000, 22, "bench-int16"), (1000, 33, "bench-int8")] {
        store
            .publish("spike-model", &delay_model(FEATURES, CLASSES, micros, seed), arch)
            .expect("publish ladder rung");
    }
    // The baseline gets its own single-generation model: a ladder-less
    // tenant serves the *active* (latest) generation, which for
    // `spike-model` would be the fastest rung, not the f32 one.
    store
        .publish("spike-base", &delay_model(FEATURES, CLASSES, 4000, 11), "bench-f32")
        .expect("publish baseline model");

    let base_spec = |model: &str| {
        let mut s = TenantSpec::new("heavy", model);
        s.queue_depth = 8192;
        s
    };
    let base_config = SchedConfig {
        min_workers: 1,
        max_workers: 1,
        max_batch: MAX_BATCH,
        quantum: 4,
        deadline: Some(Duration::from_millis(100)),
        ..SchedConfig::default()
    };

    let mut rows: Vec<String> = Vec::new();

    // Baseline: same spike, no ladder — the backlog ages out and the
    // attainment records the collapse the ladder is bought to prevent.
    let (report, generated, total) =
        run(&store, "spike_no_ladder", base_spec("spike-base"), &base_config);
    let stat = &report.serve.tenants[0];
    let baseline_attainment = stat.slo_attainment;
    eprintln!(
        "brownout/spike_no_ladder  gen {generated:>5}   served {:>5}   expired {:>5}   slo-attainment {:.4}   wall {:.0} ms",
        stat.requests,
        stat.expired,
        stat.slo_attainment,
        total.as_secs_f64() * 1e3,
    );
    rows.push(format!(
        "{{\"label\": \"spike_no_ladder\", \"tenant\": \"heavy\", \"generated\": {}, \
         \"requests\": {}, \"shed\": {}, \"expired\": {}, \"failed\": {}, \
         \"slo_attainment\": {:.4}, \"peak_level\": 0, \"final_level\": 0}}",
        generated, stat.requests, stat.shed, stat.expired, stat.failed, stat.slo_attainment,
    ));

    // The same spike into the ladder: degrade, serve, recover.
    let mut spec = base_spec("spike-model");
    spec.ladder = Some(
        Ladder::new(vec![
            LadderRung { label: "f32".into(), registry_generation: 1 },
            LadderRung { label: "int16".into(), registry_generation: 2 },
            LadderRung { label: "int8".into(), registry_generation: 3 },
        ])
        .expect("three rungs make a ladder"),
    );
    let config = SchedConfig {
        brownout: Some(BrownoutConfig {
            target_delay: Duration::from_millis(20),
            sample_every: Duration::from_millis(2),
            window: 4,
            degrade_ticks: 3,
            shed_ticks: 40,
            hold: 4,
            max_hold: 64,
            seed: SEED,
        }),
        ..base_config
    };
    let (report, generated, total) = run(&store, "spike_ladder", spec, &config);
    let stat = &report.serve.tenants[0];
    let brownout = &report.brownout[0];
    let res = residency(brownout, 3, total);
    let recovery = recovery_after(brownout, SPIKE);
    eprintln!(
        "brownout/spike_ladder     gen {generated:>5}   served {:>5}   expired {:>5}   slo-attainment {:.4}   wall {:.0} ms",
        stat.requests,
        stat.expired,
        stat.slo_attainment,
        total.as_secs_f64() * 1e3,
    );
    eprintln!(
        "      ladder: peak level {}   final level {}   {} transitions   residency {:.0}/{:.0}/{:.0} ms   recovery {:.0} ms   (baseline attainment {:.4})",
        brownout.peak_level,
        brownout.final_level,
        brownout.events.len(),
        res[0].as_secs_f64() * 1e3,
        res[1].as_secs_f64() * 1e3,
        res[2].as_secs_f64() * 1e3,
        recovery.unwrap_or_default().as_secs_f64() * 1e3,
        baseline_attainment,
    );
    rows.push(format!(
        "{{\"label\": \"spike_ladder\", \"tenant\": \"heavy\", \"generated\": {}, \
         \"requests\": {}, \"shed\": {}, \"expired\": {}, \"failed\": {}, \
         \"slo_attainment\": {:.4}, \"peak_level\": {}, \"final_level\": {}, \
         \"transitions\": {}, \"residency_l0_ms\": {:.1}, \"residency_l1_ms\": {:.1}, \
         \"residency_l2_ms\": {:.1}, \"recovery_ms\": {:.1}}}",
        generated,
        stat.requests,
        stat.shed,
        stat.expired,
        stat.failed,
        stat.slo_attainment,
        brownout.peak_level,
        brownout.final_level,
        brownout.events.len(),
        res[0].as_secs_f64() * 1e3,
        res[1].as_secs_f64() * 1e3,
        res[2].as_secs_f64() * 1e3,
        recovery.map(|d| d.as_secs_f64() * 1e3).unwrap_or(-1.0),
    ));

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"brownout\",\n  \"unit\": \"slo_attainment\",\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(row);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    let path = out_dir().join("BENCH_brownout.json");
    std::fs::write(&path, out).expect("write BENCH_brownout.json");
    eprintln!("wrote {}", path.display());

    let _ = std::fs::remove_dir_all(&dir);
}
