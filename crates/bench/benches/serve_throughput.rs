//! Serving-throughput bench: closed-loop load against the `ffdl-serve`
//! runtime on the paper's Arch. 1 circulant network, sweeping worker
//! count and batch ceiling. Writes `BENCH_serve.json` at the workspace
//! root (unit: requests/sec — *not* the ns-per-call unit of the other
//! bench files).
//!
//! The interesting comparison is `w1_b1` (no batching: every request is
//! its own forward pass) against the batched configurations: Arch. 1's
//! circulant layers recompute their weight spectra every forward call,
//! so a coalesced batch pays that FFT cost once per batch instead of
//! once per request.

use ffdl::paper;
use ffdl::tensor::Tensor;
use ffdl_serve::{run_closed_loop, ServeConfig, ServeReport};
use std::path::{Path, PathBuf};
use std::time::Duration;

const REQUESTS: usize = 1024;

fn samples() -> Vec<Tensor> {
    (0..REQUESTS)
        .map(|s| Tensor::from_fn(&[256], |i| (((s * 256 + i) * 7) % 23) as f32 * 0.04))
        .collect()
}

fn out_dir() -> PathBuf {
    match std::env::var("FFDL_BENCH_OUT_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

fn run(label: &str, workers: usize, max_batch: usize, samples: &[Tensor]) -> ServeReport {
    let config = ServeConfig {
        workers,
        max_batch,
        max_wait: Duration::from_micros(500),
        queue_depth: 256,
        ..Default::default()
    };
    let network = paper::arch1(3);
    let report = run_closed_loop(&network, &config, samples).expect("serve run");
    assert_eq!(report.requests, samples.len(), "requests dropped in {label}");
    eprintln!(
        "serve/{label:<8} {:>10.0} req/s   p50 {:>8.1} µs   p99 {:>8.1} µs   mean batch {:>5.2}",
        report.throughput_rps, report.p50_us, report.p99_us, report.mean_batch,
    );
    report
}

fn main() {
    let samples = samples();
    // Warm-up pass so the first measured config doesn't also pay
    // first-touch costs (page faults, lazy init).
    let _ = run("warmup", 1, 16, &samples[..128.min(samples.len())]);

    let configs: &[(&str, usize, usize)] = &[
        ("w1_b1", 1, 1),
        ("w1_b16", 1, 16),
        ("w2_b16", 2, 16),
        ("w4_b16", 4, 16),
    ];
    let reports: Vec<(String, ServeReport)> = configs
        .iter()
        .map(|&(label, workers, batch)| (label.to_string(), run(label, workers, batch, &samples)))
        .collect();

    let baseline = reports[0].1.throughput_rps;
    let best_batched = reports[1..]
        .iter()
        .map(|(_, r)| r.throughput_rps)
        .fold(0.0f64, f64::max);
    eprintln!(
        "serve/speedup  batched-vs-unbatched {:.2}x (baseline {baseline:.0} req/s)",
        best_batched / baseline.max(1.0),
    );

    let rows: Vec<(String, &ServeReport)> = reports
        .iter()
        .map(|(label, r)| (label.clone(), r))
        .collect();
    let path = out_dir().join("BENCH_serve.json");
    std::fs::write(&path, ffdl_serve::bench_json(&rows)).expect("write BENCH_serve.json");
    eprintln!("wrote {}", path.display());
}
