//! Fixed-point spectral inference bench: what quantization costs and
//! what it buys. Writes `BENCH_quant.json` (unit: ns per call).
//!
//! The workload is an embedded deployment model that is block-circulant
//! end to end (512-512-512-10, block 64) — the configuration the paper
//! targets, where the spectral weight payload dominates model bytes.
//! The `size` field of each `forward/*` row carries the model's exact
//! wire-format size in bytes, so the perf history tracks bytes and
//! latency side by side and `verify.sh` can guard both:
//!
//! * `quantize/int16` — full-network quantization cost (freeze + scale
//!   search + rounding), i.e. the publish-side price of a quantized
//!   generation.
//! * `forward/f32_spectral` — the f32 frozen hot path
//!   ([`SpectralDense`](ffdl::core::SpectralDense), batch 32): the
//!   latency baseline, `size` = bytes of the storable f32 parent.
//! * `forward/int16` / `forward/int12` / `forward/int8` — the same
//!   batch through the dequantization-free quantized kernel; `size` =
//!   bytes of the version-3 quantized model file.
//!
//! Guarded in `verify.sh`: `forward/int16` median ≤ 1.15× the f32
//! median, and its `size` ≤ 55% of the f32 row's.

use ffdl::core::QuantBits;
use ffdl::nn::Network;
use ffdl::paper;
use ffdl::tensor::Tensor;
use ffdl_bench::harness::{black_box, BenchSet};
use ffdl_quant::{model_bytes, quantize_network, top1_agreement};
use ffdl_rng::rngs::SmallRng;
use ffdl_rng::SeedableRng;

const BATCH: usize = 32;
const DIM: usize = 512;

/// Fully block-circulant classifier (512-512-512-10, block 64): every
/// weight matrix lives in the spectral payload quantization shrinks.
fn deployment_model(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.push(ffdl::core::CirculantDense::new(DIM, DIM, 64, &mut rng).expect("layer"));
    net.push(ffdl::nn::Relu::new());
    net.push(ffdl::core::CirculantDense::new(DIM, DIM, 64, &mut rng).expect("layer"));
    net.push(ffdl::nn::Relu::new());
    net.push(ffdl::core::CirculantDense::new(DIM, 10, 64, &mut rng).expect("layer"));
    net.push(ffdl::nn::Softmax::new());
    net
}

fn main() {
    let net = deployment_model(9);
    // The f32 payload: the storable time-domain parent (SpectralDense
    // holds the same weights but only the circulant form serializes).
    let f32_bytes = model_bytes(&net).expect("serialize f32 model") as u64;
    let mut frozen = paper::freeze_spectral(&net).expect("freeze");

    let x = Tensor::from_fn(&[BATCH, DIM], |i| (((i * 13 + 5) % 61) as f32) * 0.03 - 0.9);

    let mut set = BenchSet::new("quant");
    set.bench("quantize/int16", || {
        black_box(quantize_network(&net, QuantBits::Sixteen).expect("quantize"));
    });

    set.bench_with_size("forward/f32_spectral", f32_bytes, || {
        black_box(frozen.forward(&x).expect("forward"));
    });

    for bits in [QuantBits::Sixteen, QuantBits::Twelve, QuantBits::Eight] {
        let mut q = quantize_network(&net, bits).expect("quantize");
        let q_bytes = model_bytes(&q).expect("serialize quantized model") as u64;
        // Sanity: the precision drop must not change decisions on this
        // batch (verify.sh checks agreement on a real eval set via the
        // CLI; this is the bench-local guard that the rows are honest).
        let agreement =
            top1_agreement(&mut frozen, &mut q, &x).expect("agreement");
        assert!(
            agreement >= 0.95,
            "{bits} top-1 agreement collapsed: {agreement}"
        );
        set.bench_with_size(&format!("forward/{bits}"), q_bytes, || {
            black_box(q.forward(&x).expect("forward"));
        });
    }

    set.finish().expect("write BENCH_quant.json");
}
