//! Regenerates **Table III** — "Core runtime of each round of inference
//! process for CIFAR-10 images": Arch. 3, Java vs C++, Odroid XU3 and
//! Honor 6X, plus accuracy.
//!
//! Two legs, as documented in DESIGN.md:
//! - **Runtime leg** — the *full* Arch. 3
//!   (3×32×32 − 64Conv3 − 64Conv3 − 128Conv3 − 128Conv3 − 512F − 1024F −
//!   1024F − 10F, first two CONV layers dense) is built, a forward pass
//!   populates exact per-layer op counts, and the platform model projects
//!   µs/image. Runtime does not depend on trained weight values.
//! - **Accuracy leg** — a proportionally reduced Arch. 3 is trained on the
//!   synthetic CIFAR-10 workload to produce the measured accuracy
//!   (training the full 73k-feature FC stack is out of host budget; the
//!   paper's 80.2 % is quoted alongside).
//!
//! `cargo run -p ffdl-bench --release --bin table3`

use ffdl::data::{resize_images, standardize};
use ffdl::paper;
use ffdl::platform::{
    measure_inference_us, Implementation, PowerState, RuntimeModel, HONOR_6X, ODROID_XU3,
};
use ffdl::tensor::Tensor;
use ffdl_bench::{cifar_dataset, reported, vs};
use ffdl_rng::SeedableRng;

fn main() {
    println!("TABLE III. CORE RUNTIME OF EACH ROUND OF INFERENCE FOR CIFAR-10 IMAGES.\n");

    // ---- Runtime leg: full Arch. 3, frozen to the deployment form. -----
    let trained_form = paper::arch3(7);
    println!(
        "Arch. 3: {} stored params, {} logical ({}x compression)",
        trained_form.param_count(),
        trained_form.logical_param_count(),
        (trained_form.logical_param_count() as f64 / trained_form.param_count() as f64).round()
    );
    let mut net = paper::freeze_spectral(&trained_form).expect("freeze valid network");
    let x = Tensor::from_fn(&[1, 3, 32, 32], |i| ((i * 13 + 5) % 97) as f32 / 97.0);
    let host = measure_inference_us(&mut net, &x, 1, 3).expect("arch3 forward is valid");
    println!("host core runtime: {:.0} µs/image (single thread, this machine)\n", host.mean_us);

    let platforms = [ODROID_XU3, HONOR_6X];
    for (row, implementation) in [Implementation::Java, Implementation::Cpp]
        .into_iter()
        .enumerate()
    {
        let paper_row = reported::TABLE3_RUNTIME[row].1;
        print!("  {:<5}", implementation.to_string());
        for (i, platform) in platforms.iter().enumerate() {
            let model = RuntimeModel::new(*platform, implementation, PowerState::PluggedIn);
            let us = model.estimate_network_us(&net);
            print!("  {}", vs(paper_row[i], us));
        }
        println!();
    }
    println!("  columns: Odroid XU3 | Huawei Honor 6X");

    // ---- Accuracy leg: reduced Arch. 3 trained on synthetic CIFAR. -----
    println!("\naccuracy leg (reduced Arch. 3 on synthetic CIFAR-10; paper reports 80.2%):");
    let ds = cifar_dataset(800, 5);
    let ds = resize_images(&ds, 16).expect("32x32 images resize cleanly");
    let ds = standardize(&ds).expect("dataset is well-formed");
    let (train, test) = ds.split_at(640);
    let mut small = paper::arch3_reduced(7);
    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(1);
    // The paper's learning rate (0.001, momentum 0.9, SS V-C).
    let report = paper::train_classifier(&mut small, &train, &test, 8, 32, Some(0.001), &mut rng)
        .expect("reduced arch3 trains");
    println!(
        "  measured accuracy {:.1}% (paper {:.1}%)  final loss {:.3}",
        report.test_accuracy * 100.0,
        reported::TABLE3_ACCURACY,
        report.final_loss
    );
}
