//! The §I positioning claim, quantified: "our proposed framework is
//! distinct from the prior work of using FFT for convolutional layer
//! acceleration by LeCun et al. \[11\], because this prior work can only
//! achieve convolutional layer acceleration instead of simultaneous
//! compression."
//!
//! Compares, per CONV-layer configuration:
//!
//! - the direct dense CONV layer (im2col GEMM),
//! - the FFT-convolution baseline (`FftConv2d`, same parameter count),
//! - the block-circulant CONV layer (`CirculantConv2d`, FFT kernel AND
//!   compressed parameters),
//!
//! reporting host runtime, stored parameters and projected Honor 6X C++
//! runtime.
//!
//! `cargo run -p ffdl-bench --release --bin baseline_fft_conv`

use ffdl::core::{CirculantConv2d, FftConv2d};
use ffdl::nn::{Conv2d, Layer};
use ffdl::platform::{time_reps, Implementation, PowerState, RuntimeModel, HONOR_6X};
use ffdl::tensor::{ConvGeometry, Tensor};
use ffdl_rng::SeedableRng;

fn main() {
    println!("BASELINE COMPARISON (SS I): dense CONV vs FFT CONV [11] vs block-circulant CONV\n");
    let honor = RuntimeModel::new(HONOR_6X, Implementation::Cpp, PowerState::PluggedIn);
    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(71);

    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>12}",
        "layer (C→P, HxW, k)", "params", "host µs", "Honor µs", "compression"
    );
    for (c, p, h, k, block) in [
        (16usize, 32usize, 16usize, 3usize, 16usize),
        (32, 64, 16, 3, 32),
        (64, 128, 28, 3, 64), // the Arch. 3 circulant CONV setting
        (16, 16, 52, 13, 16), // large kernel, exact pow2 transform: [11]'s regime
    ] {
        let geom = ConvGeometry::valid(k);
        let x = Tensor::from_fn(&[1, c, h, h], |i| ((i * 7 + 1) % 13) as f32 * 0.1);

        let mut dense = Conv2d::new(c, p, h, h, geom, &mut rng).expect("valid dims");
        let mut fft = FftConv2d::new(c, p, h, h, k, &mut rng).expect("valid dims");
        let mut circ =
            CirculantConv2d::new(c, p, h, h, geom, block, &mut rng).expect("valid dims");

        let circ_label = format!("circulant b={block}");
        let configs: [(&str, &mut dyn Layer); 3] = [
            ("dense (im2col GEMM)", &mut dense),
            ("fft conv [11]", &mut fft),
            (circ_label.as_str(), &mut circ),
        ];
        println!("-- {c}→{p}, {h}x{h}, k={k}");
        for (name, layer) in configs {
            let _ = layer.forward(&x).expect("valid input");
            let t = time_reps(1, 5, || {
                let _ = layer.forward(&x).expect("valid input");
            });
            let logical = layer.logical_param_count().max(1);
            println!(
                "{:<28} {:>9} {:>12.1} {:>12.1} {:>11.1}x",
                name,
                layer.param_count(),
                t.mean_us,
                honor.estimate_layer_us(layer),
                logical as f64 / layer.param_count() as f64,
            );
        }
    }
    println!(
        "\nreading: FFT convolution [11] only pays off for large kernels (k=13 row);\n\
         at CNN-typical 3x3 kernels it loses to GEMM, and it never compresses\n\
         (1.0x). The block-circulant layer applies its FFT along the channel/\n\
         filter dimensions instead, so its advantage is storage (~bx) plus\n\
         kernel-size-independent acceleration — the paper's distinction from [11]."
    );
}
