//! Regenerates **Table I** — "Platforms under test and their
//! specifications".
//!
//! `cargo run -p ffdl-bench --release --bin table1`

use ffdl::platform::all_platforms;

fn main() {
    println!("TABLE I. PLATFORMS UNDER TEST AND THEIR SPECIFICATIONS.");
    println!(
        "{:<18} {:<16} {:<24} {:<24} {:<10} {:<12} {:>4}",
        "Platform", "Android", "Primary CPU", "Companion CPU", "Arch", "GPU", "RAM"
    );
    for p in all_platforms() {
        println!(
            "{:<18} {:<16} {:<24} {:<24} {:<10} {:<12} {:>3}G",
            p.name,
            p.android,
            p.primary.to_string(),
            p.companion.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            p.arch.to_string(),
            p.gpu,
            p.ram_gb
        );
    }
}
