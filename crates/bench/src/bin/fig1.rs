//! Regenerates the claim behind **Fig. 1** — the Cooley–Tukey FFT reduces
//! the DFT from `O(n²)` to `O(n log n)` (§III-B: "both the computation
//! time and round-off error are essentially reduced by a factor of
//! n/log₂n").
//!
//! Prints, per size: measured FFT time, measured direct-DFT time, their
//! ratio, and the theoretical `n / log₂ n` factor.
//!
//! `cargo run -p ffdl-bench --release --bin fig1`

use ffdl::fft::{dft, Complex64, Direction, FftPlanner};
use ffdl::platform::time_reps;

fn main() {
    println!("FIG. 1 SCALING: Cooley-Tukey FFT vs direct DFT");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "n", "fft (µs)", "dft (µs)", "speedup", "n/log2(n)"
    );
    let mut planner = FftPlanner::<f64>::new();
    for exp in 3..=12 {
        let n = 1usize << exp;
        let signal: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect();

        let plan = planner.plan_forward(n);
        let mut buf = signal.clone();
        let reps = (200_000 / n).max(3);
        let t_fft = time_reps(2, reps, || {
            buf.copy_from_slice(&signal);
            plan.process(&mut buf).expect("length matches plan");
        });

        // Direct DFT gets expensive fast; cap its repetitions.
        let dft_reps = (40_000_000 / (n * n)).clamp(1, 50);
        let t_dft = time_reps(1, dft_reps, || {
            let _ = dft(&signal, Direction::Forward);
        });

        println!(
            "{:>6} {:>12.2} {:>12.2} {:>9.1}x {:>12.1}",
            n,
            t_fft.mean_us,
            t_dft.mean_us,
            t_dft.mean_us / t_fft.mean_us,
            n as f64 / (n as f64).log2(),
        );
    }
    println!("\nshape check: the measured speedup must grow with n, tracking n/log2(n).");
}
