//! Regenerates **Table II** — "Core runtime of each round of inference
//! for resized MNIST images": Arch. 1 / Arch. 2, Java vs C++, three
//! platforms, plus accuracy.
//!
//! Pipeline: synthetic MNIST → bilinear resize (16×16 / 11×11) → train the
//! block-circulant network (SGD momentum 0.9) → freeze to spectral form →
//! host wall-clock timing + platform cost-model projection.
//!
//! `cargo run -p ffdl-bench --release --bin table2`

use ffdl::platform::{
    all_platforms, measure_inference_us, Implementation, PowerState, RuntimeModel,
};
use ffdl_bench::{mnist_workload, reported, vs};

fn main() {
    println!("TABLE II. CORE RUNTIME OF EACH ROUND OF INFERENCE FOR RESIZED MNIST IMAGES.");
    println!("(measured = platform cost model over exact op counts; host = real Rust kernels)\n");

    for (idx, arch) in [1usize, 2].iter().enumerate() {
        let mut w = mnist_workload(*arch, 1200, 3 + *arch as u64);
        let host = measure_inference_us(&mut w.frozen, &w.test_inputs, 2, 5)
            .expect("workload forward pass is valid");
        let accuracy = format!("{:.2}%", w.report.test_accuracy * 100.0);
        println!(
            "{}  accuracy {accuracy} (paper {:.2}%)   host {:.1} µs/image   stored params {}",
            w.name,
            reported::TABLE2_ACCURACY[idx],
            host.mean_us,
            w.frozen.param_count(),
        );
        for implementation in [Implementation::Java, Implementation::Cpp] {
            let paper_row = reported::TABLE2_RUNTIME
                .iter()
                .find(|(a, i, _)| *a == w.name && *i == implementation.to_string())
                .map(|(_, _, r)| *r)
                .expect("row exists for both impls");
            print!("  {:<5}", implementation.to_string());
            for (p_idx, platform) in all_platforms().iter().enumerate() {
                let model =
                    RuntimeModel::new(*platform, implementation, PowerState::PluggedIn);
                let us = model.estimate_network_us(&w.frozen);
                print!("  {}", vs(paper_row[p_idx], us));
            }
            println!();
        }
        // §V-B battery study: Java +14 %, C++ unchanged.
        let nexus = all_platforms()[0];
        let jb = RuntimeModel::new(nexus, Implementation::Java, PowerState::OnBattery)
            .estimate_network_us(&w.frozen);
        let jp = RuntimeModel::new(nexus, Implementation::Java, PowerState::PluggedIn)
            .estimate_network_us(&w.frozen);
        let cb = RuntimeModel::new(nexus, Implementation::Cpp, PowerState::OnBattery)
            .estimate_network_us(&w.frozen);
        let cp = RuntimeModel::new(nexus, Implementation::Cpp, PowerState::PluggedIn)
            .estimate_network_us(&w.frozen);
        println!(
            "  on battery (Nexus 5): Java {:+.0}% (paper ≈ +14%), C++ {:+.0}% (paper: unchanged)\n",
            (jb / jp - 1.0) * 100.0,
            (cb / cp - 1.0) * 100.0
        );
    }
    println!("columns: LG Nexus 5 | Odroid XU3 | Huawei Honor 6X");
}
