//! Ablation **A1** — the compression/accuracy trade-off over the block
//! size `b`, quantifying claim (1) of §II: block-circulant matrices (vs
//! the fully-circulant matrices of Cheng et al. \[19\]) "achieve a
//! trade-off between compression ratio and accuracy loss".
//!
//! Sweeps `b` on MNIST Arch. 1 and reports storage, accuracy, kernel op
//! count and the Honor 6X C++ runtime projection per point.
//!
//! `cargo run -p ffdl-bench --release --bin ablation_block_size`

use ffdl::data::{mnist_preprocess, synthetic_mnist, MnistConfig};
use ffdl::paper;
use ffdl::platform::{Implementation, PowerState, RuntimeModel, HONOR_6X};
use ffdl_rng::SeedableRng;

fn main() {
    println!("ABLATION A1: block-size sweep on MNIST Arch. 1 (1200 synthetic samples)\n");
    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(11);
    let raw = synthetic_mnist(1200, &MnistConfig::default(), &mut rng)
        .expect("generator is infallible");
    let ds = mnist_preprocess(&raw, 16).expect("28x28 resizes cleanly");
    let (train, test) = ds.split_at(1000);
    let honor = RuntimeModel::new(HONOR_6X, Implementation::Cpp, PowerState::PluggedIn);

    println!(
        "{:>6} {:>9} {:>12} {:>10} {:>12} {:>12}",
        "block", "params", "compression", "accuracy", "kernel ops", "Honor µs"
    );
    for block in [1usize, 4, 8, 16, 32, 64, 128] {
        let mut net = paper::arch1_with_block(11, block);
        // Defining-vector gradients accumulate b-fold; scale the rate.
        let lr = (0.16 / (block as f32).max(4.0)).min(0.02);
        let mut train_rng = ffdl_rng::rngs::SmallRng::seed_from_u64(5);
        let report =
            paper::train_classifier(&mut net, &train, &test, 40, 32, Some(lr), &mut train_rng)
                .expect("arch1 trains");
        let frozen = paper::freeze_spectral(&net).expect("freeze valid network");
        let mut frozen = frozen;
        let (x, _) = test.batch(&[0]);
        let _ = frozen.forward(&x).expect("forward");
        println!(
            "{:>6} {:>9} {:>11.1}x {:>9.2}% {:>12} {:>12.1}",
            block,
            net.param_count(),
            net.compression_ratio(),
            report.test_accuracy * 100.0,
            frozen.op_cost().flops(),
            honor.estimate_network_us(&frozen),
        );
    }
    println!(
        "\nreading: storage falls ≈ b×; accuracy holds within a few points up to the\n\
         knee (b = 64 in the paper's Arch. 1), then degrades — the block-circulant\n\
         generalization is exactly what buys this dial (claim (1), §II)."
    );
}
