//! Regenerates the claim behind **Fig. 2** — the
//! "FFT → component-wise multiplication → IFFT" procedure computes a
//! circulant matrix–vector product in `O(n log n)` versus the direct
//! `O(n²)` (§IV-A, Eqn. 3), including the storage side: `O(n)` defining
//! vector vs `O(n²)` dense matrix.
//!
//! `cargo run -p ffdl-bench --release --bin fig2`

use ffdl::core::BlockCirculantMatrix;
use ffdl::platform::time_reps;
use ffdl::tensor::Tensor;
use ffdl_rng::SeedableRng;

fn main() {
    println!("FIG. 2 KERNEL: circulant mat-vec via FFT vs dense O(n^2) mat-vec");
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "n", "fft (µs)", "dense (µs)", "speedup", "params fft", "params dense"
    );
    let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(17);
    let mut crossover: Option<usize> = None;
    for exp in 5..=12 {
        let n = 1usize << exp;
        // Single circulant block of size n: the Eqn. 3 setting.
        let m = BlockCirculantMatrix::random(n, n, n, &mut rng).expect("valid dims");
        let dense = m.to_dense();
        let dense_t = dense.transpose().expect("rank 2");
        let x: Vec<f32> = (0..n).map(|k| (k as f32 * 0.13).sin()).collect();
        let xt = Tensor::from_slice(&x);

        let reps = (400_000 / n).max(3);
        let t_fft = time_reps(2, reps, || {
            let _ = m.matvec(&x).expect("length matches");
        });
        let dense_reps = (80_000_000 / (n * n)).clamp(1, reps);
        let t_dense = time_reps(1, dense_reps, || {
            let _ = dense_t.matvec(&xt).expect("shapes match");
        });

        let speedup = t_dense.mean_us / t_fft.mean_us;
        if speedup >= 1.0 && crossover.is_none() {
            crossover = Some(n);
        }
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>8.1}x {:>12} {:>12}",
            n,
            t_fft.mean_us,
            t_dense.mean_us,
            speedup,
            m.param_count(),
            n * n,
        );
    }
    match crossover {
        Some(n) => println!(
            "\nFFT kernel overtakes the dense product at n = {n} and the gap widens as\n\
             O(n²)/O(n log n); storage is n vs n² at every size."
        ),
        None => println!("\nno crossover in the measured range — unexpected; see EXPERIMENTS.md"),
    }
}
