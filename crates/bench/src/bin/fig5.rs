//! Regenerates **Fig. 5** — "Performance vs. accuracy results comparison
//! on the MNIST and CIFAR-10 benchmarks": our method's points against the
//! IBM TrueNorth reference points the paper quotes (\[31\], \[32\]).
//!
//! Prints the scatter series and an ASCII rendition, then checks the two
//! shape claims of §V-D: ~10× *faster* than TrueNorth on MNIST, ~10×
//! *slower* on CIFAR-10.
//!
//! `cargo run -p ffdl-bench --release --bin fig5`

use ffdl::paper;
use ffdl::platform::{Implementation, PowerState, RuntimeModel, HONOR_6X};
use ffdl::tensor::Tensor;
use ffdl_bench::{mnist_workload, truenorth};

struct Point {
    label: &'static str,
    us_per_image: f64,
    accuracy_pct: f64,
}

fn main() {
    println!("FIG. 5 DATA: performance (µs/image, log scale) vs accuracy (%)\n");

    // Our MNIST point: best device (Honor 6X) C++, Arch. 1 — the paper's
    // "best device result".
    let w = mnist_workload(1, 1200, 4);
    let honor_cpp = RuntimeModel::new(HONOR_6X, Implementation::Cpp, PowerState::PluggedIn);
    let mnist_us = honor_cpp.estimate_network_us(&w.frozen);
    let mnist_acc = w.report.test_accuracy as f64 * 100.0;

    // Our CIFAR point: full Arch. 3 runtime on Honor 6X C++; accuracy from
    // the paper-scale claim (measured stand-in documented in Table III).
    let mut arch3 = paper::arch3(7);
    let x = Tensor::from_fn(&[1, 3, 32, 32], |i| (i % 7) as f32 * 0.1);
    let _ = arch3.forward(&x).expect("arch3 forward");
    let cifar_us = honor_cpp.estimate_network_us(&arch3);

    let points = [
        Point {
            label: "IBM-TN (MNIST)",
            us_per_image: truenorth::MNIST_US_PER_IMAGE,
            accuracy_pct: truenorth::MNIST_ACCURACY,
        },
        Point {
            label: "IBM-TN (CIFAR-10)",
            us_per_image: truenorth::CIFAR_US_PER_IMAGE,
            accuracy_pct: truenorth::CIFAR_ACCURACY,
        },
        Point {
            label: "Ours (MNIST)",
            us_per_image: mnist_us,
            accuracy_pct: mnist_acc,
        },
        Point {
            label: "Ours (CIFAR-10)",
            us_per_image: cifar_us,
            accuracy_pct: 80.2, // paper-reported; see table3 for measured stand-in
        },
    ];

    println!("{:<20} {:>14} {:>10}", "series", "µs/image", "accuracy");
    for p in &points {
        println!("{:<20} {:>14.1} {:>9.1}%", p.label, p.us_per_image, p.accuracy_pct);
    }

    // ASCII scatter: x = log10(µs/image) over [1, 5], y = accuracy 50–100.
    println!("\n accuracy");
    let (rows, cols) = (12usize, 56usize);
    let mut grid = vec![vec![' '; cols]; rows];
    let marks = ['A', 'B', 'C', 'D'];
    for (p, &mark) in points.iter().zip(&marks) {
        let gx = ((p.us_per_image.log10() - 1.0) / 4.0 * (cols - 1) as f64)
            .clamp(0.0, (cols - 1) as f64) as usize;
        let gy = ((100.0 - p.accuracy_pct) / 50.0 * (rows - 1) as f64)
            .clamp(0.0, (rows - 1) as f64) as usize;
        grid[gy][gx] = mark;
    }
    for (i, row) in grid.iter().enumerate() {
        let acc = 100.0 - 50.0 * i as f64 / (rows - 1) as f64;
        println!("{:>5.0}% |{}", acc, row.iter().collect::<String>());
    }
    println!("       +{}", "-".repeat(cols));
    println!("        10^1        10^2        10^3        10^4        10^5  µs/image");
    for (p, mark) in points.iter().zip(&marks) {
        println!("        {mark} = {}", p.label);
    }

    // §V-D shape claims.
    let mnist_speedup = truenorth::MNIST_US_PER_IMAGE / mnist_us;
    let cifar_slowdown = cifar_us / truenorth::CIFAR_US_PER_IMAGE;
    println!(
        "\nshape checks (paper §V-D):\n\
         - MNIST: ours is {mnist_speedup:.1}x faster than TrueNorth (paper: ~10x)\n\
         - CIFAR: ours is {cifar_slowdown:.1}x slower than TrueNorth (paper: ~10x, with 500-1000x fewer cores)"
    );
}
