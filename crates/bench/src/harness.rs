//! In-house benchmark harness — the hermetic replacement for Criterion.
//!
//! Design: each benchmark row (a labelled closure, optionally with a
//! problem-size annotation) is calibrated so one *sample* runs long
//! enough to be timeable (~≥ [`TARGET_SAMPLE_NS`]), warmed up, then
//! measured for a fixed number of samples. We report the **median** and
//! **p95** per-call time in nanoseconds — the median is robust to
//! scheduler noise and is the number the perf trajectory tracks across
//! PRs; p95 captures tail behaviour (allocation spikes, cache misses).
//!
//! Results are printed as a table and written to `BENCH_<name>.json`
//! at the workspace root, so successive PRs accumulate a comparable
//! perf history (`BENCH_inference.json`, `BENCH_fft_scaling.json`, …).
//!
//! Environment knobs:
//!
//! - `FFDL_BENCH_SAMPLES`: samples per row (default 30).
//! - `FFDL_BENCH_TARGET_MS`: target wall time per sample in ms
//!   (default 5; calibration picks the inner iteration count from it).
//! - `FFDL_BENCH_OUT_DIR`: where to write `BENCH_<name>.json`
//!   (default: the workspace root).

use std::path::{Path, PathBuf};
use std::time::Instant;

pub use std::hint::black_box;

/// Target wall time per sample, in nanoseconds (see module docs).
pub const TARGET_SAMPLE_NS: u64 = 5_000_000;

/// Default number of timed samples per row.
pub const DEFAULT_SAMPLES: usize = 30;

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Row label, e.g. `"fft/1024"`.
    pub label: String,
    /// Optional problem size (FFT length, matrix dim, block size, …).
    pub size: Option<u64>,
    /// Inner iterations per sample chosen by calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median per-call time in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-call time in nanoseconds.
    pub p95_ns: f64,
    /// Mean per-call time in nanoseconds.
    pub mean_ns: f64,
    /// Minimum per-call time in nanoseconds.
    pub min_ns: f64,
}

/// A named set of benchmark rows, written out as `BENCH_<name>.json`.
pub struct BenchSet {
    name: String,
    samples_per_row: usize,
    target_sample_ns: u64,
    rows: Vec<Measurement>,
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|s| s.parse().ok())
}

impl BenchSet {
    /// Creates a bench set; `name` becomes the `BENCH_<name>.json` stem.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            samples_per_row: env_u64("FFDL_BENCH_SAMPLES")
                .map(|v| (v as usize).max(5))
                .unwrap_or(DEFAULT_SAMPLES),
            target_sample_ns: env_u64("FFDL_BENCH_TARGET_MS")
                .map(|ms| ms.saturating_mul(1_000_000).max(100_000))
                .unwrap_or(TARGET_SAMPLE_NS),
            rows: Vec::new(),
        }
    }

    /// Times `f` under `label` with no size annotation.
    pub fn bench<F: FnMut()>(&mut self, label: &str, f: F) {
        self.bench_sized(label, None, f)
    }

    /// Times `f` under `label`, annotated with a problem size (plotted
    /// on the x-axis by scaling figures).
    pub fn bench_with_size<F: FnMut()>(&mut self, label: &str, size: u64, f: F) {
        self.bench_sized(label, Some(size), f)
    }

    fn bench_sized<F: FnMut()>(&mut self, label: &str, size: Option<u64>, mut f: F) {
        // Calibration: time single calls until we know roughly how long
        // one takes, then choose the inner count to hit the sample target.
        let mut est_ns: u64 = 0;
        let mut calib_calls: u64 = 0;
        let calib_start = Instant::now();
        while est_ns < self.target_sample_ns / 5 && calib_calls < 1_000 {
            f();
            calib_calls += 1;
            est_ns = calib_start.elapsed().as_nanos() as u64;
        }
        let per_call = (est_ns / calib_calls.max(1)).max(1);
        let iters = (self.target_sample_ns / per_call).clamp(1, 10_000_000);

        // Warmup: one full sample's worth (calibration already ran f).
        for _ in 0..iters {
            f();
        }

        let mut per_call_ns: Vec<f64> = Vec::with_capacity(self.samples_per_row);
        for _ in 0..self.samples_per_row {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            per_call_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_call_ns.sort_by(|a, b| a.total_cmp(b));

        let m = Measurement {
            label: label.to_string(),
            size,
            iters_per_sample: iters,
            samples: per_call_ns.len(),
            median_ns: percentile(&per_call_ns, 50.0),
            p95_ns: percentile(&per_call_ns, 95.0),
            mean_ns: per_call_ns.iter().sum::<f64>() / per_call_ns.len() as f64,
            min_ns: per_call_ns[0],
        };
        eprintln!(
            "{:<40} median {:>12}  p95 {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.name, m.label),
            fmt_ns(m.median_ns),
            fmt_ns(m.p95_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.rows.push(m);
    }

    /// The measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.rows
    }

    /// Writes `BENCH_<name>.json` and prints the summary table.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the JSON file.
    pub fn finish(&self) -> std::io::Result<PathBuf> {
        let dir = match std::env::var("FFDL_BENCH_OUT_DIR") {
            Ok(d) => PathBuf::from(d),
            Err(_) => workspace_root(),
        };
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        eprintln!("wrote {}", path.display());
        Ok(path)
    }

    /// Renders the result set as a stable, diff-friendly JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"unit\": \"ns_per_call\",\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.rows.iter().enumerate() {
            let size = match m.size {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"size\": {}, \"median_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                escape(&m.label),
                size,
                m.median_ns,
                m.p95_ns,
                m.mean_ns,
                m.min_ns,
                m.samples,
                m.iters_per_sample,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Linear-interpolated percentile over an ascending-sorted slice.
///
/// Shared by the bench rows above (median/p95) and by the serving
/// runtime's latency statistics (p50/p95/p99 in `ffdl-serve`).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
        assert_eq!(percentile(&v, 95.0), 4.8);
    }

    #[test]
    fn bench_produces_sane_measurements() {
        let mut set = BenchSet::new("harness_selftest");
        set.samples_per_row = 5;
        set.target_sample_ns = 50_000; // keep the self-test fast
        let mut acc = 0u64;
        set.bench_with_size("spin", 64, || {
            for i in 0..64u64 {
                acc = acc.wrapping_add(black_box(i * i));
            }
        });
        let m = &set.measurements()[0];
        assert_eq!(m.label, "spin");
        assert_eq!(m.size, Some(64));
        assert!(m.median_ns > 0.0);
        assert!(m.p95_ns >= m.median_ns);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iters_per_sample >= 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut set = BenchSet::new("json_test");
        set.samples_per_row = 5;
        set.target_sample_ns = 20_000;
        set.bench("row_a", || {
            black_box(1 + 1);
        });
        set.bench_with_size("row_b", 128, || {
            black_box(2 + 2);
        });
        let j = set.to_json();
        assert!(j.contains("\"bench\": \"json_test\""));
        assert!(j.contains("\"label\": \"row_a\""));
        assert!(j.contains("\"size\": 128"));
        assert!(j.contains("\"size\": null"));
        assert!(j.ends_with("]\n}\n"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn workspace_root_contains_workspace_manifest() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "{root:?}");
    }
}
