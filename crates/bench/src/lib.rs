//! # ffdl-bench — experiment harness
//!
//! Shared plumbing for the binaries and benches that regenerate every
//! table and figure of *"FFT-Based Deep Learning Deployment in
//! Embedded Systems"* (Lin et al., DATE 2018). See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
//!
//! Benches run on the in-house [`harness`] (no Criterion): each
//! `cargo bench -p ffdl-bench --bench <name>` run prints a median/p95
//! table and writes `BENCH_<name>.json` at the workspace root, seeding
//! the cross-PR perf trajectory.
//!
//! Regenerators (run with `cargo run -p ffdl-bench --release --bin <name>`):
//!
//! | bin | reproduces |
//! |---|---|
//! | `table1` | Table I — platform specifications |
//! | `table2` | Table II — MNIST core runtime per inference round |
//! | `table3` | Table III — CIFAR-10 core runtime |
//! | `fig1`   | Fig. 1 — FFT `O(n log n)` vs DFT `O(n²)` scaling |
//! | `fig2`   | Fig. 2 — FFT kernel vs direct circulant mat-vec |
//! | `fig5`   | Fig. 5 — accuracy vs performance scatter vs IBM TrueNorth |
//! | `ablation_block_size` | A1 — compression/accuracy trade-off over b |

pub mod harness;

use ffdl::data::{
    mnist_preprocess, synthetic_cifar, synthetic_mnist, CifarConfig, Dataset, MnistConfig,
};
use ffdl::nn::Network;
use ffdl::paper::{self, TrainReport};
use ffdl_rng::rngs::SmallRng;
use ffdl_rng::SeedableRng;

/// IBM TrueNorth reference points quoted by the paper (§V-D): MNIST from
/// \[32\], CIFAR-10 from \[31\].
pub mod truenorth {
    /// MNIST accuracy (%), per \[32\].
    pub const MNIST_ACCURACY: f64 = 95.0;
    /// MNIST runtime (µs/image), per \[32\].
    pub const MNIST_US_PER_IMAGE: f64 = 1000.0;
    /// CIFAR-10 accuracy (%), per \[31\].
    pub const CIFAR_ACCURACY: f64 = 83.41;
    /// CIFAR-10 runtime (µs/image), per \[31\].
    pub const CIFAR_US_PER_IMAGE: f64 = 800.0;
}

/// Values the paper reports, used by the regenerators to print
/// paper-vs-measured columns.
pub mod reported {
    /// Table II rows: (arch, impl, [Nexus 5, XU3, Honor 6X] µs/image).
    pub const TABLE2_RUNTIME: [(&str, &str, [f64; 3]); 4] = [
        ("Arch. 1", "Java", [359.6, 294.1, 256.7]),
        ("Arch. 1", "C++", [140.0, 122.0, 101.0]),
        ("Arch. 2", "Java", [350.9, 278.2, 221.7]),
        ("Arch. 2", "C++", [128.5, 119.1, 98.5]),
    ];
    /// Table II accuracies (%): Arch. 1, Arch. 2.
    pub const TABLE2_ACCURACY: [f64; 2] = [95.47, 93.59];
    /// Table III rows: (impl, [XU3, Honor 6X] µs/image).
    pub const TABLE3_RUNTIME: [(&str, [f64; 2]); 2] =
        [("Java", [21032.0, 19785.0]), ("C++", [8912.0, 8244.0])];
    /// Table III accuracy (%).
    pub const TABLE3_ACCURACY: f64 = 80.2;
}

/// A trained-and-frozen MNIST workload ready for timing.
pub struct MnistWorkload {
    /// Human-readable name ("Arch. 1").
    pub name: &'static str,
    /// Frozen (spectral) inference network.
    pub frozen: Network,
    /// Training report (accuracy measured on held-out synthetic data).
    pub report: TrainReport,
    /// Test inputs for host timing.
    pub test_inputs: ffdl::tensor::Tensor,
}

/// Trains Arch. 1 or Arch. 2 on synthetic MNIST and freezes it for
/// deployment. `samples` controls workload size (1200 reproduces the
/// EXPERIMENTS.md numbers; smaller is faster).
///
/// # Panics
///
/// Panics when the static architectures fail to train — indicates a bug,
/// not an input condition.
pub fn mnist_workload(arch: usize, samples: usize, seed: u64) -> MnistWorkload {
    assert!(arch == 1 || arch == 2, "MNIST architectures are 1 and 2");
    let mut rng = SmallRng::seed_from_u64(seed);
    let raw = synthetic_mnist(samples, &MnistConfig::default(), &mut rng)
        .expect("generator is infallible for valid configs");
    let side = if arch == 1 { 16 } else { 11 };
    let ds = mnist_preprocess(&raw, side).expect("28x28 images resize cleanly");
    let split = samples * 5 / 6;
    let (train, test) = ds.split_at(split);

    let (name, mut net): (&'static str, Network) = if arch == 1 {
        ("Arch. 1", paper::arch1(seed))
    } else {
        ("Arch. 2", paper::arch2(seed))
    };
    let report = paper::train_classifier(&mut net, &train, &test, 40, 32, Some(0.005), &mut rng)
        .expect("training the paper architectures cannot shape-fail");
    let frozen = paper::freeze_spectral(&net).expect("freeze of a valid network");
    let (test_inputs, _) = test.batch(&(0..test.len()).collect::<Vec<_>>());
    MnistWorkload {
        name,
        frozen,
        report,
        test_inputs,
    }
}

/// The CIFAR-10 dataset for Table III runs.
///
/// # Panics
///
/// Never in practice (generator is infallible for valid configs).
pub fn cifar_dataset(samples: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    synthetic_cifar(samples, &CifarConfig::default(), &mut rng)
        .expect("generator is infallible for valid configs")
}

/// Formats a paper-vs-measured line with the relative deviation.
pub fn vs(paper_value: f64, measured: f64) -> String {
    let dev = (measured / paper_value - 1.0) * 100.0;
    format!("{measured:>9.1} (paper {paper_value:>8.1}, {dev:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_formats_deviation() {
        let s = vs(100.0, 110.0);
        assert!(s.contains("+10.0%"), "{s}");
        let s = vs(200.0, 100.0);
        assert!(s.contains("-50.0%"), "{s}");
    }

    #[test]
    fn mnist_workload_small_smoke() {
        let w = mnist_workload(2, 60, 3);
        assert_eq!(w.name, "Arch. 2");
        assert_eq!(w.test_inputs.shape()[1], 121);
        assert!(w.report.test_accuracy >= 0.0);
        assert!(!w.frozen.is_empty());
    }

    #[test]
    #[should_panic(expected = "architectures")]
    fn mnist_workload_rejects_arch3() {
        let _ = mnist_workload(3, 10, 0);
    }

    #[test]
    fn cifar_dataset_shape() {
        let ds = cifar_dataset(12, 0);
        assert_eq!(ds.sample_shape(), &[3, 32, 32]);
    }

    #[test]
    fn reported_constants_sanity() {
        // Java rows must be slower than C++ rows — the paper's headline.
        assert!(reported::TABLE2_RUNTIME[0].2[0] > reported::TABLE2_RUNTIME[1].2[0]);
        assert!(reported::TABLE3_RUNTIME[0].1[0] > reported::TABLE3_RUNTIME[1].1[0]);
        const { assert!(truenorth::MNIST_US_PER_IMAGE > 0.0) };
    }
}
