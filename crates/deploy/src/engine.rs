//! The inference engine — Fig. 4's fourth module ("performs inference for
//! predicting labels"): runs predictions, reports per-image core runtime
//! (the quantity of Tables II/III) and projects it onto the modelled
//! embedded platforms.

use crate::error::{DeployError, NonFiniteStage};
use ffdl_nn::{softmax_rows, Network, Scratch};
use ffdl_platform::{measure_inference_us, RuntimeModel, Timing};
use ffdl_tensor::Tensor;

/// A single prediction: the argmax class and the class probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class index.
    pub label: usize,
    /// Softmax probabilities per class.
    pub probabilities: Vec<f32>,
}

/// Result of a timed evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// Number of samples evaluated.
    pub samples: usize,
    /// Classification accuracy in `[0, 1]`, when labels were provided.
    pub accuracy: Option<f32>,
    /// Host wall-clock core runtime per image.
    pub host_timing: Timing,
    /// Model-projected per-image runtimes, one per supplied
    /// [`RuntimeModel`], in the same order.
    pub projected_us: Vec<f64>,
}

/// Inference engine wrapping a loaded network.
///
/// Owns a per-engine [`Scratch`] buffer pool: batched prediction runs
/// through the allocation-reusing inference path, so steady-state
/// serving does not heap-allocate per request once the pool is warm.
pub struct InferenceEngine {
    network: Network,
    check_logits: bool,
    scratch: Scratch,
}

impl InferenceEngine {
    /// Wraps a (typically parameter-loaded) network.
    pub fn new(network: Network) -> Self {
        Self {
            network,
            check_logits: false,
            scratch: Scratch::new(),
        }
    }

    /// Enables or disables the opt-in logits finiteness check: when on,
    /// `predict*` scans the network's raw output and returns
    /// [`DeployError::NonFinite`] with [`NonFiniteStage::Logits`] if any
    /// NaN/Inf is found — the signal the serving layer uses to declare a
    /// model generation unhealthy. Inputs are always checked regardless
    /// of this flag (a bad request must not masquerade as a bad model).
    pub fn set_finite_check(&mut self, enabled: bool) {
        self.check_logits = enabled;
    }

    /// Whether the opt-in logits finiteness check is enabled.
    pub fn finite_check(&self) -> bool {
        self.check_logits
    }

    /// Borrow the underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access (e.g. for continued training).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Consumes the engine, returning the network.
    pub fn into_network(self) -> Network {
        self.network
    }

    fn bad_input(message: String) -> DeployError {
        DeployError::Nn(ffdl_nn::NnError::BadInput {
            layer: "inference_engine".into(),
            message,
        })
    }

    /// Rejects non-finite values before they enter the FFT kernels
    /// (where a single NaN contaminates every output of the block) —
    /// `offset` shifts reported indices for batched multi-sample scans.
    fn check_finite(
        values: &[f32],
        stage: NonFiniteStage,
        offset: usize,
    ) -> Result<(), DeployError> {
        match values.iter().position(|v| !v.is_finite()) {
            Some(index) => Err(DeployError::NonFinite {
                stage,
                index: offset + index,
            }),
            None => Ok(()),
        }
    }

    /// Post-forward hook: deterministic NaN injection (when a fault
    /// campaign is armed) followed by the opt-in logits health scan.
    fn screen_logits(&self, out: &mut Tensor) -> Result<(), DeployError> {
        if ffdl_fault::enabled() {
            ffdl_fault::poison(out.as_mut_slice());
        }
        if self.check_logits {
            Self::check_finite(out.as_slice(), NonFiniteStage::Logits, 0)?;
        }
        Ok(())
    }

    /// Converts `[batch, classes]` network output into per-sample
    /// predictions, applying softmax when the network does not end in a
    /// softmax layer.
    fn predictions_from_output(&self, out: &Tensor) -> Result<Vec<Prediction>, DeployError> {
        if out.ndim() != 2 {
            return Err(Self::bad_input(format!(
                "expected [batch, classes] output, got {:?}",
                out.shape()
            )));
        }
        let ends_with_softmax = self
            .network
            .layers()
            .last()
            .map(|l| l.type_tag() == "softmax")
            .unwrap_or(false);
        let owned;
        let probs = if ends_with_softmax {
            out
        } else {
            owned = softmax_rows(out)?;
            &owned
        };
        Ok((0..probs.rows())
            .map(|r| {
                let row = probs.row(r);
                let label = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Prediction {
                    label,
                    probabilities: row.to_vec(),
                }
            })
            .collect())
    }

    /// Predicts classes and probabilities for a `[batch, …]` input.
    ///
    /// If the network does not end in a softmax layer, probabilities are
    /// derived by applying softmax to the final logits.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DeployError`] for an empty batch, rejects
    /// non-finite inputs with [`DeployError::NonFinite`] before they
    /// reach the FFT kernels, and propagates forward-pass errors (e.g.
    /// mismatched input width).
    pub fn predict(&mut self, inputs: &Tensor) -> Result<Vec<Prediction>, DeployError> {
        if inputs.ndim() == 0 || inputs.shape()[0] == 0 {
            return Err(Self::bad_input(format!(
                "empty input batch (shape {:?})",
                inputs.shape()
            )));
        }
        Self::check_finite(inputs.as_slice(), NonFiniteStage::Input, 0)?;
        let span = ffdl_telemetry::span("ffdl.deploy.predict_ns");
        let mut out = self.network.forward(inputs)?;
        self.screen_logits(&mut out)?;
        let preds = self.predictions_from_output(&out)?;
        drop(span);
        ffdl_telemetry::count("ffdl.deploy.predictions", preds.len() as u64);
        Ok(preds)
    }

    /// Predicts classes for a coalesced batch of per-sample tensors: the
    /// samples are stacked and run through **one** forward pass
    /// ([`Network::forward_batch_with`]), so the per-call costs of the FFT
    /// layers are amortized across the whole batch. Entry `r` of the
    /// result corresponds to `samples[r]` and is bit-identical to
    /// [`InferenceEngine::predict`] on that sample alone.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DeployError`] for an empty sample list,
    /// non-finite sample values (index is flat across the concatenated
    /// samples), or mismatched sample shapes; propagates forward-pass
    /// errors.
    pub fn predict_batch(&mut self, samples: &[&Tensor]) -> Result<Vec<Prediction>, DeployError> {
        if samples.is_empty() {
            return Err(Self::bad_input("empty input batch (no samples)".into()));
        }
        let mut offset = 0;
        for sample in samples {
            Self::check_finite(sample.as_slice(), NonFiniteStage::Input, offset)?;
            offset += sample.len();
        }
        let span = ffdl_telemetry::span("ffdl.deploy.predict_ns");
        let mut out = self.network.forward_batch_with(samples, &mut self.scratch)?;
        let screened = self.screen_logits(&mut out);
        let preds = screened.and_then(|()| self.predictions_from_output(&out));
        self.scratch.recycle(out);
        let preds = preds?;
        drop(span);
        ffdl_telemetry::count("ffdl.deploy.predictions", preds.len() as u64);
        Ok(preds)
    }

    /// Runs a full timed evaluation: accuracy (when labels are given),
    /// host per-image core runtime, and per-platform projections.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors and label-count mismatches.
    pub fn evaluate(
        &mut self,
        inputs: &Tensor,
        labels: Option<&[usize]>,
        models: &[RuntimeModel],
        warmup: usize,
        reps: usize,
    ) -> Result<EvaluationReport, DeployError> {
        let preds = self.predict(inputs)?;
        let accuracy = match labels {
            Some(l) => {
                if l.len() != preds.len() {
                    return Err(DeployError::ParamsMismatch(format!(
                        "{} labels for {} predictions",
                        l.len(),
                        preds.len()
                    )));
                }
                let correct = preds.iter().zip(l).filter(|(p, &y)| p.label == y).count();
                Some(correct as f32 / preds.len().max(1) as f32)
            }
            None => None,
        };
        let host_timing = measure_inference_us(&mut self.network, inputs, warmup, reps)?;
        // Op costs reflect the forward pass run just above.
        let projected_us = models
            .iter()
            .map(|m| m.estimate_network_us(&self.network))
            .collect();
        Ok(EvaluationReport {
            samples: preds.len(),
            accuracy,
            host_timing,
            projected_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::parse_architecture;
    use ffdl_platform::{Implementation, PowerState, HONOR_6X, NEXUS_5};

    const ARCH: &str = "\
input 8
circulant_fc 8 block=4
relu
fc 3
softmax
";

    fn engine() -> InferenceEngine {
        InferenceEngine::new(parse_architecture(ARCH, 5).unwrap().network)
    }

    #[test]
    fn predictions_are_probabilities() {
        let mut e = engine();
        let x = Tensor::from_fn(&[4, 8], |i| (i as f32 * 0.3).sin());
        let preds = e.predict(&x).unwrap();
        assert_eq!(preds.len(), 4);
        for p in &preds {
            assert!(p.label < 3);
            let s: f32 = p.probabilities.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert_eq!(
                p.label,
                p.probabilities
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            );
        }
    }

    #[test]
    fn softmax_applied_when_absent() {
        let arch = "input 8\nfc 3\n";
        let mut e = InferenceEngine::new(parse_architecture(arch, 1).unwrap().network);
        let x = Tensor::from_fn(&[2, 8], |i| i as f32 * 0.1);
        let preds = e.predict(&x).unwrap();
        for p in preds {
            let s: f32 = p.probabilities.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn evaluation_reports_accuracy_and_timings() {
        let mut e = engine();
        let x = Tensor::from_fn(&[6, 8], |i| ((i * 7) % 13) as f32 * 0.2);
        let preds = e.predict(&x).unwrap();
        let labels: Vec<usize> = preds.iter().map(|p| p.label).collect();
        let models = [
            RuntimeModel::new(NEXUS_5, Implementation::Cpp, PowerState::PluggedIn),
            RuntimeModel::new(HONOR_6X, Implementation::Java, PowerState::PluggedIn),
        ];
        let report = e.evaluate(&x, Some(&labels), &models, 1, 3).unwrap();
        assert_eq!(report.samples, 6);
        assert_eq!(report.accuracy, Some(1.0)); // self-consistent labels
        assert!(report.host_timing.mean_us > 0.0);
        assert_eq!(report.projected_us.len(), 2);
        assert!(report.projected_us.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn evaluation_without_labels() {
        let mut e = engine();
        let x = Tensor::zeros(&[2, 8]);
        let report = e.evaluate(&x, None, &[], 0, 1).unwrap();
        assert_eq!(report.accuracy, None);
        assert!(report.projected_us.is_empty());
    }

    #[test]
    fn label_count_mismatch_rejected() {
        let mut e = engine();
        let x = Tensor::zeros(&[2, 8]);
        assert!(e.evaluate(&x, Some(&[0]), &[], 0, 1).is_err());
    }

    #[test]
    fn predict_batch_matches_predict_rows() {
        let mut e = engine();
        let samples: Vec<Tensor> = (0..5)
            .map(|s| Tensor::from_fn(&[8], |i| ((s * 8 + i) as f32 * 0.17).sin()))
            .collect();
        let refs: Vec<&Tensor> = samples.iter().collect();
        let batched = e.predict_batch(&refs).unwrap();
        for (s, expect) in samples.iter().zip(&batched) {
            let single = e.predict(&s.reshape(&[1, 8]).unwrap()).unwrap();
            assert_eq!(&single[0], expect);
        }
    }

    #[test]
    fn empty_batch_is_typed_error() {
        let mut e = engine();
        assert!(matches!(
            e.predict(&Tensor::zeros(&[0, 8])),
            Err(DeployError::Nn(_))
        ));
        assert!(matches!(e.predict_batch(&[]), Err(DeployError::Nn(_))));
    }

    #[test]
    fn predict_emits_telemetry_when_enabled() {
        let mut e = engine();
        let predictions = || {
            ffdl_telemetry::global()
                .snapshot()
                .counter("ffdl.deploy.predictions")
                .unwrap_or(0)
        };
        let spans = || {
            ffdl_telemetry::global()
                .snapshot()
                .histogram("ffdl.deploy.predict_ns")
                .map(|h| h.count())
                .unwrap_or(0)
        };
        let (p0, s0) = (predictions(), spans());
        ffdl_telemetry::set_enabled(true);
        let x = Tensor::from_fn(&[4, 8], |i| (i as f32 * 0.3).sin());
        let _ = e.predict(&x).unwrap();
        ffdl_telemetry::set_enabled(false);
        // Monotone global counters: concurrent tests can only add.
        assert!(predictions() >= p0 + 4);
        assert!(spans() > s0);
    }

    #[test]
    fn non_finite_inputs_rejected_before_forward() {
        let mut e = engine();
        let mut x = Tensor::zeros(&[2, 8]);
        x.as_mut_slice()[11] = f32::NAN;
        match e.predict(&x) {
            Err(DeployError::NonFinite { stage, index }) => {
                assert_eq!(stage, crate::NonFiniteStage::Input);
                assert_eq!(index, 11);
            }
            other => panic!("expected NonFinite input error, got {other:?}"),
        }
        let mut inf = Tensor::zeros(&[1, 8]);
        inf.as_mut_slice()[3] = f32::INFINITY;
        assert!(matches!(
            e.predict(&inf),
            Err(DeployError::NonFinite {
                stage: crate::NonFiniteStage::Input,
                index: 3
            })
        ));
    }

    #[test]
    fn non_finite_batch_sample_reports_flat_index() {
        let mut e = engine();
        let good = Tensor::zeros(&[8]);
        let mut bad = Tensor::zeros(&[8]);
        bad.as_mut_slice()[2] = f32::NAN;
        // Second sample poisoned: flat index is 8 (first sample) + 2.
        match e.predict_batch(&[&good, &bad]) {
            Err(DeployError::NonFinite { stage, index }) => {
                assert_eq!(stage, crate::NonFiniteStage::Input);
                assert_eq!(index, 10);
            }
            other => panic!("expected NonFinite input error, got {other:?}"),
        }
    }

    /// A network whose parameters are all NaN: every forward pass
    /// produces non-finite logits.
    fn unhealthy_engine() -> InferenceEngine {
        let mut net = parse_architecture("input 8\nfc 3\n", 7).unwrap().network;
        for layer in net.layers_mut() {
            let nan_params: Vec<Tensor> = layer
                .param_tensors()
                .iter()
                .map(|t| Tensor::from_fn(t.shape(), |_| f32::NAN))
                .collect();
            layer.load_params(&nan_params).unwrap();
        }
        InferenceEngine::new(net)
    }

    #[test]
    fn logits_check_is_opt_in() {
        let x = Tensor::zeros(&[2, 8]);
        // Off by default: NaN logits flow through (legacy behaviour).
        let mut e = unhealthy_engine();
        assert!(!e.finite_check());
        assert!(e.predict(&x).is_ok());
        // Opted in: typed Logits error.
        e.set_finite_check(true);
        assert!(e.finite_check());
        assert!(matches!(
            e.predict(&x),
            Err(DeployError::NonFinite {
                stage: crate::NonFiniteStage::Logits,
                ..
            })
        ));
        let s = Tensor::zeros(&[8]);
        assert!(matches!(
            e.predict_batch(&[&s]),
            Err(DeployError::NonFinite {
                stage: crate::NonFiniteStage::Logits,
                ..
            })
        ));
        // A healthy model passes the same check.
        let mut healthy = engine();
        healthy.set_finite_check(true);
        assert!(healthy.predict(&x).is_ok());
    }

    #[test]
    fn accessors() {
        let mut e = engine();
        assert_eq!(e.network().len(), 4);
        let _ = e.network_mut();
        let net = e.into_network();
        assert_eq!(net.len(), 4);
    }
}
