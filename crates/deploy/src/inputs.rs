//! The inputs parser — Fig. 4's third module ("loads test data that
//! consists of input features and predefined classification labels").
//!
//! Text format: one sample per line, `label , f1 , f2 , …` (the label is
//! optional when the file starts with the `#unlabelled` pragma). `#`
//! starts a comment.

use crate::error::DeployError;
use ffdl_tensor::Tensor;
use std::io::{BufRead, BufReader, Read};

/// Parsed input samples: features `[N, D]` and optional labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedInputs {
    /// Feature matrix `[N, D]`.
    pub features: Tensor,
    /// One label per sample, or `None` for unlabelled files.
    pub labels: Option<Vec<usize>>,
}

impl ParsedInputs {
    /// Number of samples.
    pub fn len(&self) -> usize {
        if self.features.ndim() == 0 {
            0
        } else {
            self.features.shape()[0]
        }
    }

    /// `true` when no samples were parsed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature width per sample.
    pub fn dim(&self) -> usize {
        if self.features.ndim() < 2 {
            0
        } else {
            self.features.shape()[1]
        }
    }
}

fn syntax(line: usize, message: impl Into<String>) -> DeployError {
    DeployError::InputSyntax {
        line,
        message: message.into(),
    }
}

/// Parses a labelled/unlabelled CSV inputs file.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`DeployError::InputSyntax`] with a line number on malformed
/// content and [`DeployError::Io`] on read failure.
pub fn parse_inputs<R: Read>(reader: R) -> Result<ParsedInputs, DeployError> {
    let reader = BufReader::new(reader);
    let mut labelled: Option<bool> = None;
    let mut labels = Vec::new();
    let mut data = Vec::new();
    let mut dim: Option<usize> = None;
    let mut rows = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let raw = line?;
        let content = raw.trim();
        if content == "#unlabelled" {
            if rows > 0 {
                return Err(syntax(line_no, "#unlabelled pragma must precede data"));
            }
            labelled = Some(false);
            continue;
        }
        let content = content.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let labelled = *labelled.get_or_insert(true);

        let mut fields = content.split(',').map(str::trim);
        if labelled {
            let label_tok = fields
                .next()
                .ok_or_else(|| syntax(line_no, "empty sample"))?;
            let label: usize = label_tok
                .parse()
                .map_err(|_| syntax(line_no, format!("label must be an integer, got {label_tok:?}")))?;
            labels.push(label);
        }
        let mut row = Vec::new();
        for tok in fields {
            if tok.is_empty() {
                return Err(syntax(line_no, "empty feature field"));
            }
            let v: f32 = tok
                .parse()
                .map_err(|_| syntax(line_no, format!("feature must be a number, got {tok:?}")))?;
            row.push(v);
        }
        if row.is_empty() {
            return Err(syntax(line_no, "sample has no features"));
        }
        match dim {
            None => dim = Some(row.len()),
            Some(d) if d == row.len() => {}
            Some(d) => {
                return Err(syntax(
                    line_no,
                    format!("sample has {} features, expected {d}", row.len()),
                ))
            }
        }
        data.extend(row);
        rows += 1;
    }

    let dim = dim.unwrap_or(0);
    let features = Tensor::from_vec(data, &[rows, dim])
        .map_err(|e| DeployError::ParamsMismatch(e.to_string()))?;
    Ok(ParsedInputs {
        features,
        labels: match labelled {
            Some(false) => None,
            _ => Some(labels),
        },
    })
}

/// Serializes samples back to the text format (inverse of
/// [`parse_inputs`]).
///
/// # Panics
///
/// Panics if `labels` is `Some` with a length different from the number
/// of rows, or `features` is not rank 2.
pub fn format_inputs(features: &Tensor, labels: Option<&[usize]>) -> String {
    assert_eq!(features.ndim(), 2, "features must be [N, D]");
    if let Some(l) = labels {
        assert_eq!(l.len(), features.rows(), "one label per row required");
    }
    let mut out = String::new();
    if labels.is_none() {
        out.push_str("#unlabelled\n");
    }
    for r in 0..features.rows() {
        let mut fields: Vec<String> = Vec::with_capacity(features.cols() + 1);
        if let Some(l) = labels {
            fields.push(l[r].to_string());
        }
        fields.extend(features.row(r).iter().map(|v| format!("{v}")));
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_labelled_csv() {
        let text = "0, 1.0, 2.0\n1, -0.5, 0.25\n";
        let p = parse_inputs(Cursor::new(text)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.labels.as_deref(), Some(&[0, 1][..]));
        assert_eq!(p.features.as_slice(), &[1.0, 2.0, -0.5, 0.25]);
    }

    #[test]
    fn parses_unlabelled() {
        let text = "#unlabelled\n1.0,2.0,3.0\n4.0,5.0,6.0\n";
        let p = parse_inputs(Cursor::new(text)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.dim(), 3);
        assert!(p.labels.is_none());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0,1.5 # trailing comment\n";
        let p = parse_inputs(Cursor::new(text)).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.features.as_slice(), &[1.5]);
    }

    #[test]
    fn error_positions_reported() {
        let text = "0,1.0\nbad,2.0\n";
        match parse_inputs(Cursor::new(text)).unwrap_err() {
            DeployError::InputSyntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        let text = "0,1.0\n1,2.0,3.0\n";
        assert!(parse_inputs(Cursor::new(text)).is_err());
        assert!(parse_inputs(Cursor::new("0,oops\n")).is_err());
        assert!(parse_inputs(Cursor::new("0\n")).is_err());
        assert!(parse_inputs(Cursor::new("0,1.0,\n")).is_err());
        assert!(parse_inputs(Cursor::new("0,1\n#unlabelled\n")).is_err());
    }

    #[test]
    fn empty_file_is_empty_inputs() {
        let p = parse_inputs(Cursor::new("")).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.dim(), 0);
    }

    #[test]
    fn format_roundtrip_labelled() {
        let features =
            Tensor::from_vec(vec![1.0, -2.5, 0.125, 3.0], &[2, 2]).unwrap();
        let labels = vec![3usize, 7];
        let text = format_inputs(&features, Some(&labels));
        let p = parse_inputs(Cursor::new(text)).unwrap();
        assert_eq!(p.features, features);
        assert_eq!(p.labels.as_deref(), Some(&labels[..]));
    }

    #[test]
    fn format_roundtrip_unlabelled() {
        let features = Tensor::from_vec(vec![0.5, 1.5], &[2, 1]).unwrap();
        let text = format_inputs(&features, None);
        assert!(text.starts_with("#unlabelled"));
        let p = parse_inputs(Cursor::new(text)).unwrap();
        assert_eq!(p.features, features);
        assert!(p.labels.is_none());
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn format_checks_label_count() {
        let features = Tensor::zeros(&[2, 1]);
        let _ = format_inputs(&features, Some(&[1]));
    }
}
