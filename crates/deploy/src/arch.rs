//! The architecture parser — the first module of the paper's Fig. 4
//! pipeline ("responsible for constructing the network architecture").
//!
//! Grammar (one directive per line; `#` starts a comment):
//!
//! ```text
//! input 256                 # flat input,  or:  input 3x32x32
//! circulant_fc 128 block=64
//! circulant_gru 128 block=64      # recurrent cell (sequence semantics)
//! relu
//! fc 10
//! softmax
//! conv 64 kernel=3 [stride=1] [pad=0]
//! circulant_conv 128 kernel=3 block=27 [stride=1] [pad=0]
//! fft_conv 64 kernel=3            # LeCun-style FFT conv (valid, stride 1)
//! maxpool 2 [stride=k]
//! avgpool 2 [stride=k]
//! flatten
//! relu | sigmoid | tanh | softmax
//! ```
//!
//! The parser tracks the activation shape line by line, so CONV layers
//! know their spatial extents and `fc` after an image shape auto-inserts
//! a `flatten`.

use crate::error::DeployError;
use ffdl_core::{CirculantConv2d, CirculantDense, CirculantGru, FftConv2d};
use ffdl_nn::{AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, Network, Relu, Sigmoid, Softmax, Tanh};
use ffdl_tensor::ConvGeometry;
use ffdl_rng::rngs::SmallRng;
use ffdl_rng::SeedableRng;
use std::collections::HashMap;

/// Activation shape flowing through the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Flat feature vector of the given width.
    Flat(usize),
    /// Image of `(channels, height, width)`.
    Image(usize, usize, usize),
}

impl Shape {
    /// Flattened element count.
    pub fn elements(&self) -> usize {
        match *self {
            Shape::Flat(n) => n,
            Shape::Image(c, h, w) => c * h * w,
        }
    }
}

/// A parsed network plus its interface shapes.
#[derive(Debug)]
pub struct ParsedNetwork {
    /// The constructed (randomly initialized) network.
    pub network: Network,
    /// Input shape declared by the `input` directive.
    pub input_shape: Shape,
    /// Output shape after the last layer.
    pub output_shape: Shape,
}

fn syntax(line: usize, message: impl Into<String>) -> DeployError {
    DeployError::ArchSyntax {
        line,
        message: message.into(),
    }
}

fn parse_usize(line: usize, tok: &str, what: &str) -> Result<usize, DeployError> {
    tok.parse::<usize>()
        .map_err(|_| syntax(line, format!("{what} must be an integer, got {tok:?}")))
}

/// Parses `key=value` options after positional tokens.
fn parse_options(
    line: usize,
    toks: &[&str],
    allowed: &[&str],
) -> Result<HashMap<String, usize>, DeployError> {
    let mut out = HashMap::new();
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| syntax(line, format!("expected key=value, got {tok:?}")))?;
        if !allowed.contains(&key) {
            return Err(syntax(
                line,
                format!("unknown option {key:?} (allowed: {allowed:?})"),
            ));
        }
        let v = parse_usize(line, value, key)?;
        if out.insert(key.to_string(), v).is_some() {
            return Err(syntax(line, format!("duplicate option {key:?}")));
        }
    }
    Ok(out)
}

fn parse_input_shape(line: usize, tok: &str) -> Result<Shape, DeployError> {
    let parts: Vec<&str> = tok.split('x').collect();
    match parts.len() {
        1 => Ok(Shape::Flat(parse_usize(line, parts[0], "input width")?)),
        3 => Ok(Shape::Image(
            parse_usize(line, parts[0], "channels")?,
            parse_usize(line, parts[1], "height")?,
            parse_usize(line, parts[2], "width")?,
        )),
        _ => Err(syntax(
            line,
            format!("input shape must be N or CxHxW, got {tok:?}"),
        )),
    }
}

/// Parses an architecture description into a randomly-initialized
/// [`Network`] (weights are then typically replaced by the parameters
/// parser).
///
/// # Errors
///
/// Returns [`DeployError::ArchSyntax`] with a line number for any
/// grammar or shape-flow violation.
pub fn parse_architecture(text: &str, seed: u64) -> Result<ParsedNetwork, DeployError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut network = Network::new();
    let mut shape: Option<Shape> = None;
    let mut input_shape: Option<Shape> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        let keyword = toks[0];

        if keyword == "input" {
            if input_shape.is_some() {
                return Err(syntax(line, "duplicate input directive"));
            }
            if toks.len() != 2 {
                return Err(syntax(line, "usage: input <N> or input <C>x<H>x<W>"));
            }
            let s = parse_input_shape(line, toks[1])?;
            if s.elements() == 0 {
                return Err(syntax(line, "input shape must be non-empty"));
            }
            input_shape = Some(s);
            shape = Some(s);
            continue;
        }

        let current = shape.ok_or_else(|| syntax(line, "first directive must be `input`"))?;

        // Auto-flatten before FC layers when the activation is an image.
        let flat_for_fc = |network: &mut Network, current: Shape| -> usize {
            match current {
                Shape::Flat(n) => n,
                Shape::Image(..) => {
                    network.push(Flatten::new());
                    current.elements()
                }
            }
        };

        match keyword {
            "fc" => {
                if toks.len() != 2 {
                    return Err(syntax(line, "usage: fc <out>"));
                }
                let out = parse_usize(line, toks[1], "output width")?;
                let in_dim = flat_for_fc(&mut network, current);
                network.push(Dense::new(in_dim, out, &mut rng));
                shape = Some(Shape::Flat(out));
            }
            "circulant_fc" => {
                if toks.len() < 3 {
                    return Err(syntax(line, "usage: circulant_fc <out> block=<b>"));
                }
                let out = parse_usize(line, toks[1], "output width")?;
                let opts = parse_options(line, &toks[2..], &["block"])?;
                let block = *opts
                    .get("block")
                    .ok_or_else(|| syntax(line, "circulant_fc requires block=<b>"))?;
                let in_dim = flat_for_fc(&mut network, current);
                let layer = CirculantDense::new(in_dim, out, block, &mut rng)
                    .map_err(|e| syntax(line, e.to_string()))?;
                network.push(layer);
                shape = Some(Shape::Flat(out));
            }
            "circulant_gru" => {
                // Recurrent cell: dimension 0 of its input is *time*,
                // not batch (one session = one sequence). Served by
                // ffdl-stream; see `ffdl_core::CirculantGru`.
                if toks.len() < 3 {
                    return Err(syntax(line, "usage: circulant_gru <hidden> block=<b>"));
                }
                let hidden = parse_usize(line, toks[1], "hidden width")?;
                let opts = parse_options(line, &toks[2..], &["block"])?;
                let block = *opts
                    .get("block")
                    .ok_or_else(|| syntax(line, "circulant_gru requires block=<b>"))?;
                let in_dim = flat_for_fc(&mut network, current);
                let layer = CirculantGru::new(in_dim, hidden, block, &mut rng)
                    .map_err(|e| syntax(line, e.to_string()))?;
                network.push(layer);
                shape = Some(Shape::Flat(hidden));
            }
            "conv" | "circulant_conv" => {
                let (c, h, w) = match current {
                    Shape::Image(c, h, w) => (c, h, w),
                    Shape::Flat(_) => {
                        return Err(syntax(line, format!("{keyword} requires an image shape")))
                    }
                };
                if toks.len() < 3 {
                    return Err(syntax(
                        line,
                        format!("usage: {keyword} <out_channels> kernel=<k> [stride=] [pad=] …"),
                    ));
                }
                let p = parse_usize(line, toks[1], "output channels")?;
                let allowed: &[&str] = if keyword == "conv" {
                    &["kernel", "stride", "pad"]
                } else {
                    &["kernel", "stride", "pad", "block"]
                };
                let opts = parse_options(line, &toks[2..], allowed)?;
                let kernel = *opts
                    .get("kernel")
                    .ok_or_else(|| syntax(line, format!("{keyword} requires kernel=<k>")))?;
                let geom = ConvGeometry {
                    kernel,
                    stride: *opts.get("stride").unwrap_or(&1),
                    pad: *opts.get("pad").unwrap_or(&0),
                };
                let oh = geom
                    .output_extent(h)
                    .map_err(|e| syntax(line, e.to_string()))?;
                let ow = geom
                    .output_extent(w)
                    .map_err(|e| syntax(line, e.to_string()))?;
                if keyword == "conv" {
                    let layer = Conv2d::new(c, p, h, w, geom, &mut rng)
                        .map_err(|e| syntax(line, e.to_string()))?;
                    network.push(layer);
                } else {
                    let block = *opts
                        .get("block")
                        .ok_or_else(|| syntax(line, "circulant_conv requires block=<b>"))?;
                    let layer = CirculantConv2d::new(c, p, h, w, geom, block, &mut rng)
                        .map_err(|e| syntax(line, e.to_string()))?;
                    network.push(layer);
                }
                shape = Some(Shape::Image(p, oh, ow));
            }
            "maxpool" | "avgpool" => {
                let (c, h, w) = match current {
                    Shape::Image(c, h, w) => (c, h, w),
                    Shape::Flat(_) => {
                        return Err(syntax(line, format!("{keyword} requires an image shape")))
                    }
                };
                if toks.len() < 2 {
                    return Err(syntax(line, format!("usage: {keyword} <k> [stride=<s>]")));
                }
                let k = parse_usize(line, toks[1], "pool size")?;
                let opts = parse_options(line, &toks[2..], &["stride"])?;
                let stride = *opts.get("stride").unwrap_or(&k);
                if k == 0 || stride == 0 || k > h || k > w {
                    return Err(syntax(line, format!("pool {k}/{stride} does not fit {h}×{w}")));
                }
                if keyword == "maxpool" {
                    network.push(MaxPool2d::with_stride(k, stride));
                } else {
                    network.push(AvgPool2d::with_stride(k, stride));
                }
                shape = Some(Shape::Image(
                    c,
                    (h - k) / stride + 1,
                    (w - k) / stride + 1,
                ));
            }
            "fft_conv" => {
                let (c, h, w) = match current {
                    Shape::Image(c, h, w) => (c, h, w),
                    Shape::Flat(_) => {
                        return Err(syntax(line, "fft_conv requires an image shape"))
                    }
                };
                if toks.len() < 3 {
                    return Err(syntax(line, "usage: fft_conv <out_channels> kernel=<k>"));
                }
                let p = parse_usize(line, toks[1], "output channels")?;
                let opts = parse_options(line, &toks[2..], &["kernel"])?;
                let kernel = *opts
                    .get("kernel")
                    .ok_or_else(|| syntax(line, "fft_conv requires kernel=<k>"))?;
                if kernel == 0 || kernel > h || kernel > w {
                    return Err(syntax(line, format!("kernel {kernel} does not fit {h}×{w}")));
                }
                let layer = FftConv2d::new(c, p, h, w, kernel, &mut rng)
                    .map_err(|e| syntax(line, e.to_string()))?;
                network.push(layer);
                shape = Some(Shape::Image(p, h - kernel + 1, w - kernel + 1));
            }
            "flatten" => {
                network.push(Flatten::new());
                shape = Some(Shape::Flat(current.elements()));
            }
            "relu" => network.push(Relu::new()),
            "sigmoid" => network.push(Sigmoid::new()),
            "tanh" => network.push(Tanh::new()),
            "softmax" => match current {
                Shape::Flat(_) => network.push(Softmax::new()),
                Shape::Image(..) => {
                    return Err(syntax(line, "softmax requires a flat shape"))
                }
            },
            other => {
                return Err(syntax(line, format!("unknown directive {other:?}")));
            }
        }
    }

    let input_shape = input_shape
        .ok_or_else(|| syntax(text.lines().count().max(1), "missing input directive"))?;
    let output_shape = shape.expect("set together with input_shape");
    Ok(ParsedNetwork {
        network,
        input_shape,
        output_shape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_tensor::Tensor;

    #[test]
    fn parses_paper_arch1() {
        let text = "\
# MNIST Arch. 1 (§V-B): 256-128-128-10, block-circulant FC layers
input 256
circulant_fc 128 block=64
relu
circulant_fc 128 block=64
relu
fc 10
softmax
";
        let mut parsed = parse_architecture(text, 1).unwrap();
        assert_eq!(parsed.input_shape, Shape::Flat(256));
        assert_eq!(parsed.output_shape, Shape::Flat(10));
        assert_eq!(parsed.network.len(), 6);
        let y = parsed.network.forward(&Tensor::zeros(&[2, 256])).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        // Softmax output: rows sum to 1.
        let s: f32 = y.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn parses_conv_pipeline() {
        let text = "\
input 3x16x16
conv 8 kernel=3 pad=1
relu
maxpool 2
circulant_conv 16 kernel=3 block=8
relu
flatten
circulant_fc 32 block=16
relu
fc 10
softmax
";
        let mut parsed = parse_architecture(text, 7).unwrap();
        assert_eq!(parsed.input_shape, Shape::Image(3, 16, 16));
        assert_eq!(parsed.output_shape, Shape::Flat(10));
        let y = parsed
            .network
            .forward(&Tensor::zeros(&[1, 3, 16, 16]))
            .unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn auto_flatten_before_fc() {
        let text = "input 2x4x4\nfc 5\n";
        let mut parsed = parse_architecture(text, 0).unwrap();
        let y = parsed
            .network
            .forward(&Tensor::zeros(&[1, 2, 4, 4]))
            .unwrap();
        assert_eq!(y.shape(), &[1, 5]);
        assert_eq!(parsed.network.len(), 2); // flatten + dense
    }

    #[test]
    fn deterministic_under_seed() {
        let text = "input 8\ncirculant_fc 8 block=4\n";
        let mut a = parse_architecture(text, 9).unwrap().network;
        let mut b = parse_architecture(text, 9).unwrap().network;
        let x = Tensor::from_fn(&[1, 8], |i| i as f32);
        assert_eq!(
            a.forward(&x).unwrap().as_slice(),
            b.forward(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn error_line_numbers() {
        let err = parse_architecture("input 8\nwat 5\n", 0).unwrap_err();
        match err {
            DeployError::ArchSyntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("wat"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_input() {
        assert!(parse_architecture("fc 10\n", 0).is_err());
        assert!(parse_architecture("", 0).is_err());
    }

    #[test]
    fn rejects_duplicate_input_and_zero_shape() {
        assert!(parse_architecture("input 8\ninput 8\n", 0).is_err());
        assert!(parse_architecture("input 0\n", 0).is_err());
        assert!(parse_architecture("input 2x0x4\n", 0).is_err());
        assert!(parse_architecture("input 2x4\n", 0).is_err());
    }

    #[test]
    fn rejects_bad_options() {
        assert!(parse_architecture("input 8\ncirculant_fc 4\n", 0).is_err()); // no block
        assert!(parse_architecture("input 8\ncirculant_fc 4 block=0\n", 0).is_err());
        assert!(parse_architecture("input 8\nfc 4 extra=1\n", 0).is_err());
        assert!(parse_architecture("input 8\ncirculant_fc 4 block=2 block=2\n", 0).is_err());
        assert!(parse_architecture("input 8\ncirculant_fc 4 bogus=2\n", 0).is_err());
    }

    #[test]
    fn rejects_shape_misuse() {
        assert!(parse_architecture("input 8\nconv 4 kernel=3\n", 0).is_err());
        assert!(parse_architecture("input 8\nmaxpool 2\n", 0).is_err());
        assert!(parse_architecture("input 2x4x4\nsoftmax\n", 0).is_err());
        assert!(parse_architecture("input 2x4x4\nconv 4 kernel=9\n", 0).is_err());
        assert!(parse_architecture("input 2x4x4\nmaxpool 9\n", 0).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# heading\ninput 4   # trailing\n\nrelu\n";
        let parsed = parse_architecture(text, 0).unwrap();
        assert_eq!(parsed.network.len(), 1);
    }

    #[test]
    fn avgpool_and_fft_conv_directives() {
        let text = "\ninput 2x8x8\nfft_conv 4 kernel=3\nrelu\navgpool 2\nflatten\nfc 5\n";
        let mut parsed = parse_architecture(text, 3).unwrap();
        assert_eq!(parsed.output_shape, Shape::Flat(5));
        let y = parsed
            .network
            .forward(&Tensor::zeros(&[1, 2, 8, 8]))
            .unwrap();
        assert_eq!(y.shape(), &[1, 5]);
        assert!(parse_architecture("input 4x4x4\nfft_conv 2\n", 0).is_err());
        assert!(parse_architecture("input 8\nfft_conv 2 kernel=3\n", 0).is_err());
        assert!(parse_architecture("input 1x4x4\nfft_conv 2 kernel=9\n", 0).is_err());
        assert!(parse_architecture("input 1x4x4\navgpool 9\n", 0).is_err());
    }

    #[test]
    fn circulant_gru_directive() {
        let text = "input 16\ncirculant_gru 32 block=8\nfc 4\nsoftmax\n";
        let mut parsed = parse_architecture(text, 11).unwrap();
        assert_eq!(parsed.output_shape, Shape::Flat(4));
        // Sequence semantics: [seq, in] -> [seq, classes].
        let y = parsed.network.forward(&Tensor::zeros(&[5, 16])).unwrap();
        assert_eq!(y.shape(), &[5, 4]);
        assert!(parse_architecture("input 16\ncirculant_gru 32\n", 0).is_err());
        assert!(parse_architecture("input 16\ncirculant_gru 32 block=0\n", 0).is_err());
        assert!(parse_architecture("input 16\ncirculant_gru 0 block=4\n", 0).is_err());
    }

    #[test]
    fn shape_elements() {
        assert_eq!(Shape::Flat(12).elements(), 12);
        assert_eq!(Shape::Image(3, 4, 5).elements(), 60);
    }
}
