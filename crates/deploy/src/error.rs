//! Error type for the deployment pipeline.

use ffdl_nn::NnError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors reported by the architecture, parameters and inputs parsers and
/// the inference engine.
#[derive(Debug)]
pub enum DeployError {
    /// The architecture description is malformed.
    ArchSyntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The inputs file is malformed.
    InputSyntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The parameters file does not match the network.
    ParamsMismatch(String),
    /// A network/layer error.
    Nn(NnError),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::ArchSyntax { line, message } => {
                write!(f, "architecture file line {line}: {message}")
            }
            DeployError::InputSyntax { line, message } => {
                write!(f, "inputs file line {line}: {message}")
            }
            DeployError::ParamsMismatch(msg) => write!(f, "parameters mismatch: {msg}"),
            DeployError::Nn(e) => write!(f, "network error: {e}"),
            DeployError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Nn(e) => Some(e),
            DeployError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DeployError {
    fn from(e: NnError) -> Self {
        DeployError::Nn(e)
    }
}

impl From<io::Error> for DeployError {
    fn from(e: io::Error) -> Self {
        DeployError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DeployError::ArchSyntax {
            line: 3,
            message: "unknown layer".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = DeployError::InputSyntax {
            line: 1,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("bad float"));
        assert!(DeployError::ParamsMismatch("x".into()).to_string().contains("x"));
        let e: DeployError = io::Error::new(io::ErrorKind::Other, "boom").into();
        assert!(e.source().is_some());
    }
}
