//! Error type for the deployment pipeline.

use ffdl_nn::NnError;
use std::error::Error;
use std::fmt;
use std::io;

/// Where in the inference pipeline a non-finite value was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteStage {
    /// The caller-provided input batch contained NaN/Inf — a bad
    /// request, not a model problem.
    Input,
    /// The network's output logits contained NaN/Inf — the model (or
    /// its parameters) is numerically unhealthy.
    Logits,
}

impl fmt::Display for NonFiniteStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonFiniteStage::Input => write!(f, "inputs"),
            NonFiniteStage::Logits => write!(f, "logits"),
        }
    }
}

/// Errors reported by the architecture, parameters and inputs parsers and
/// the inference engine.
#[derive(Debug)]
pub enum DeployError {
    /// The architecture description is malformed.
    ArchSyntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The inputs file is malformed.
    InputSyntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The parameters file does not match the network.
    ParamsMismatch(String),
    /// A network/layer error.
    Nn(NnError),
    /// Underlying I/O failure.
    Io(io::Error),
    /// A NaN or infinity was detected on the inference path.
    NonFinite {
        /// Whether the inputs or the logits were non-finite.
        stage: NonFiniteStage,
        /// Flat element index of the first offending value.
        index: usize,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::ArchSyntax { line, message } => {
                write!(f, "architecture file line {line}: {message}")
            }
            DeployError::InputSyntax { line, message } => {
                write!(f, "inputs file line {line}: {message}")
            }
            DeployError::ParamsMismatch(msg) => write!(f, "parameters mismatch: {msg}"),
            DeployError::Nn(e) => write!(f, "network error: {e}"),
            DeployError::Io(e) => write!(f, "i/o failure: {e}"),
            DeployError::NonFinite { stage, index } => {
                write!(f, "non-finite value (NaN/Inf) in {stage} at flat index {index}")
            }
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Nn(e) => Some(e),
            DeployError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DeployError {
    fn from(e: NnError) -> Self {
        DeployError::Nn(e)
    }
}

impl From<io::Error> for DeployError {
    fn from(e: io::Error) -> Self {
        DeployError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DeployError::ArchSyntax {
            line: 3,
            message: "unknown layer".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = DeployError::InputSyntax {
            line: 1,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("bad float"));
        assert!(DeployError::ParamsMismatch("x".into()).to_string().contains("x"));
        let e: DeployError = io::Error::other("boom").into();
        assert!(e.source().is_some());
        let e = DeployError::NonFinite {
            stage: NonFiniteStage::Logits,
            index: 9,
        };
        assert!(e.to_string().contains("logits"));
        assert!(e.to_string().contains("9"));
        assert!(DeployError::NonFinite {
            stage: NonFiniteStage::Input,
            index: 0,
        }
        .to_string()
        .contains("inputs"));
    }
}
