//! # ffdl-deploy — the Fig. 4 deployment pipeline
//!
//! Rust counterpart of the paper's Android software implementation (§V),
//! with the same four high-level modules:
//!
//! 1. **Architecture parser** ([`parse_architecture`]) — constructs the
//!    network from a text description,
//! 2. **Parameters parser** ([`read_parameters_into`] /
//!    [`write_parameters`]) — loads trained weights and biases,
//! 3. **Inputs parser** ([`parse_inputs`]) — loads test features and
//!    labels,
//! 4. **Inference engine** ([`InferenceEngine`]) — predicts labels, and
//!    reports the per-image core runtime of Tables II/III (host-measured
//!    and platform-model-projected).
//!
//! # Examples
//!
//! End-to-end: describe → build → save → reload → predict.
//!
//! ```
//! use ffdl_deploy::{parse_architecture, read_parameters_into, write_parameters, InferenceEngine};
//! use ffdl_tensor::Tensor;
//!
//! let arch = "input 16\ncirculant_fc 8 block=4\nrelu\nfc 2\nsoftmax\n";
//! let trained = parse_architecture(arch, 42)?.network;
//!
//! let mut weights = Vec::new();
//! write_parameters(&trained, &mut weights)?;
//!
//! let mut deployed = parse_architecture(arch, 0)?.network;
//! read_parameters_into(&mut deployed, &weights[..])?;
//!
//! let mut engine = InferenceEngine::new(deployed);
//! let predictions = engine.predict(&Tensor::zeros(&[1, 16]))?;
//! assert_eq!(predictions.len(), 1);
//! # Ok::<(), ffdl_deploy::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod engine;
mod error;
mod inputs;
mod params;

pub use arch::{parse_architecture, ParsedNetwork, Shape};
pub use engine::{EvaluationReport, InferenceEngine, Prediction};
pub use error::{DeployError, NonFiniteStage};
pub use inputs::{format_inputs, parse_inputs, ParsedInputs};
pub use params::{read_parameters_into, write_parameters};
