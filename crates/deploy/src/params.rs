//! The parameters parser — Fig. 4's second module ("reads a file that
//! contains trained weights and biases").
//!
//! The parameters file is a flat sequence of tensors, applied in order to
//! the layers of an architecture-parser-built network. This matches the
//! paper's separation of concerns: the architecture file describes the
//! topology, the parameters file carries only numbers.
//!
//! Format: magic `FFDP`, version u32, tensor count u32, then tensors in
//! the `ffdl_nn::wire` encoding.

use crate::error::DeployError;
use ffdl_nn::{wire, Network};
use ffdl_tensor::Tensor;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"FFDP";
const VERSION: u32 = 1;

/// Writes every parameter tensor of `network` (in layer order).
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Returns [`DeployError::Io`] on write failure.
pub fn write_parameters<W: Write>(network: &Network, mut writer: W) -> Result<(), DeployError> {
    let tensors: Vec<&Tensor> = network
        .layers()
        .iter()
        .flat_map(|l| l.param_tensors())
        .collect();
    writer.write_all(MAGIC)?;
    wire::write_u32(&mut writer, VERSION).map_err(nn_to_deploy)?;
    wire::write_u32(&mut writer, tensors.len() as u32).map_err(nn_to_deploy)?;
    for t in tensors {
        wire::write_tensor(&mut writer, t).map_err(nn_to_deploy)?;
    }
    Ok(())
}

fn nn_to_deploy(e: ffdl_nn::NnError) -> DeployError {
    match e {
        ffdl_nn::NnError::Io(io) => DeployError::Io(io),
        other => DeployError::Nn(other),
    }
}

/// Reads a parameters file and loads the tensors into `network`'s layers
/// in order.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`DeployError::ParamsMismatch`] when the tensor count or any
/// shape disagrees with the network, and [`DeployError::Io`] on truncated
/// input.
pub fn read_parameters_into<R: Read>(
    network: &mut Network,
    mut reader: R,
) -> Result<(), DeployError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DeployError::ParamsMismatch(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = wire::read_u32(&mut reader).map_err(nn_to_deploy)?;
    if version != VERSION {
        return Err(DeployError::ParamsMismatch(format!(
            "unsupported version {version}"
        )));
    }
    let count = wire::read_u32(&mut reader).map_err(nn_to_deploy)? as usize;
    if count > 100_000 {
        return Err(DeployError::ParamsMismatch(format!(
            "tensor count {count} exceeds sanity bound"
        )));
    }
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        tensors.push(wire::read_tensor(&mut reader).map_err(nn_to_deploy)?);
    }

    // Distribute to layers in order, each taking as many tensors as it
    // exposes.
    let mut cursor = 0usize;
    for layer in network.layers_mut() {
        let need = layer.param_tensors().len();
        if cursor + need > tensors.len() {
            return Err(DeployError::ParamsMismatch(format!(
                "file has {} tensors but the network needs more (layer {} wants {need} at offset {cursor})",
                tensors.len(),
                layer.type_tag()
            )));
        }
        layer
            .load_params(&tensors[cursor..cursor + need])
            .map_err(|e| DeployError::ParamsMismatch(e.to_string()))?;
        cursor += need;
    }
    if cursor != tensors.len() {
        return Err(DeployError::ParamsMismatch(format!(
            "file has {} tensors but the network consumed only {cursor}",
            tensors.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::parse_architecture;
    use std::io::Cursor;

    const ARCH: &str = "\
input 16
circulant_fc 8 block=4
relu
fc 4
softmax
";

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut trained = parse_architecture(ARCH, 42).unwrap().network;
        let mut buf = Vec::new();
        write_parameters(&trained, &mut buf).unwrap();

        // Fresh network with different random init must differ, then match
        // after loading.
        let mut fresh = parse_architecture(ARCH, 999).unwrap().network;
        let x = ffdl_tensor::Tensor::from_fn(&[2, 16], |i| (i as f32 * 0.31).sin());
        let y_trained = trained.forward(&x).unwrap();
        let y_fresh = fresh.forward(&x).unwrap();
        assert_ne!(y_trained.as_slice(), y_fresh.as_slice());

        read_parameters_into(&mut fresh, Cursor::new(buf)).unwrap();
        let y_loaded = fresh.forward(&x).unwrap();
        for (a, b) in y_loaded.as_slice().iter().zip(y_trained.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut net = parse_architecture(ARCH, 0).unwrap().network;
        assert!(matches!(
            read_parameters_into(&mut net, Cursor::new(b"XXXX".to_vec())),
            Err(DeployError::Io(_)) | Err(DeployError::ParamsMismatch(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"FFDP");
        buf.extend_from_slice(&9u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_parameters_into(&mut net, Cursor::new(buf)),
            Err(DeployError::ParamsMismatch(_))
        ));
    }

    #[test]
    fn rejects_wrong_network() {
        let trained = parse_architecture(ARCH, 1).unwrap().network;
        let mut buf = Vec::new();
        write_parameters(&trained, &mut buf).unwrap();

        // Different topology: too few tensors consumed / shape mismatch.
        let other = "input 16\nfc 8\nrelu\nfc 4\nsoftmax\n";
        let mut net = parse_architecture(other, 0).unwrap().network;
        assert!(matches!(
            read_parameters_into(&mut net, Cursor::new(buf.clone())),
            Err(DeployError::ParamsMismatch(_))
        ));

        // Network needing more tensors than the file provides.
        let bigger = "input 16\ncirculant_fc 8 block=4\nrelu\nfc 8\nrelu\nfc 4\n";
        let mut net = parse_architecture(bigger, 0).unwrap().network;
        assert!(matches!(
            read_parameters_into(&mut net, Cursor::new(buf)),
            Err(DeployError::ParamsMismatch(_))
        ));
    }

    #[test]
    fn leftover_tensors_detected() {
        let trained = parse_architecture(ARCH, 1).unwrap().network;
        let mut buf = Vec::new();
        write_parameters(&trained, &mut buf).unwrap();
        let smaller = "input 16\ncirculant_fc 8 block=4\nsoftmax\n";
        let mut net = parse_architecture(smaller, 0).unwrap().network;
        assert!(matches!(
            read_parameters_into(&mut net, Cursor::new(buf)),
            Err(DeployError::ParamsMismatch(_))
        ));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let trained = parse_architecture(ARCH, 1).unwrap().network;
        let mut buf = Vec::new();
        write_parameters(&trained, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let mut net = parse_architecture(ARCH, 0).unwrap().network;
        assert!(matches!(
            read_parameters_into(&mut net, Cursor::new(buf)),
            Err(DeployError::Io(_))
        ));
    }
}
