//! Property-based tests for the deployment pipeline: generated
//! architectures always build consistent networks, the inputs format
//! round-trips arbitrary data, and the parsers never panic on junk.

use ffdl_deploy::{
    format_inputs, parse_architecture, parse_inputs, read_parameters_into, write_parameters,
    Shape,
};
use ffdl_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a random valid FC architecture description.
fn fc_arch() -> impl Strategy<Value = (String, usize, usize)> {
    (
        1usize..=64,                                    // input dim
        prop::collection::vec((1usize..=32, 0usize..=16, 0u8..=3), 1..=4), // (width, block: 0 = dense, act)
        1usize..=10,                                    // output classes
    )
        .prop_map(|(input, layers, classes)| {
            let mut text = format!("input {input}\n");
            for (w, b, act) in &layers {
                if *b == 0 {
                    text.push_str(&format!("fc {w}\n"));
                } else {
                    text.push_str(&format!("circulant_fc {w} block={b}\n"));
                }
                match act {
                    0 => text.push_str("relu\n"),
                    1 => text.push_str("sigmoid\n"),
                    2 => text.push_str("tanh\n"),
                    _ => {}
                }
            }
            text.push_str(&format!("fc {classes}\nsoftmax\n"));
            (text, input, classes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated architecture parses, forwards at the declared
    /// shapes, and produces probability rows.
    #[test]
    fn generated_architectures_build_and_run((text, input, classes) in fc_arch(), seed in 0u64..100) {
        let parsed = parse_architecture(&text, seed).unwrap();
        prop_assert_eq!(parsed.input_shape, Shape::Flat(input));
        prop_assert_eq!(parsed.output_shape, Shape::Flat(classes));
        let mut net = parsed.network;
        let x = Tensor::from_fn(&[2, input], |i| ((i * 13 + 1) % 7) as f32 * 0.1);
        let y = net.forward(&x).unwrap();
        prop_assert_eq!(y.shape(), &[2, classes]);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
        }
    }

    /// Parameters written for a generated architecture load back into a
    /// fresh copy and reproduce outputs bit-exactly.
    #[test]
    fn parameters_roundtrip_generated_architectures((text, input, _c) in fc_arch(), seed in 0u64..100) {
        let mut a = parse_architecture(&text, seed).unwrap().network;
        let mut blob = Vec::new();
        write_parameters(&a, &mut blob).unwrap();
        let mut b = parse_architecture(&text, seed.wrapping_add(9999)).unwrap().network;
        read_parameters_into(&mut b, &blob[..]).unwrap();
        let x = Tensor::from_fn(&[1, input], |i| (i as f32 * 0.17).sin());
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        prop_assert_eq!(ya.as_slice(), yb.as_slice());
    }

    /// The inputs text format round-trips arbitrary finite features and
    /// labels.
    #[test]
    fn inputs_roundtrip(
        rows in prop::collection::vec(
            (0usize..10, prop::collection::vec(-1000i32..1000, 1..=8)),
            1..=6
        )
    ) {
        let dim = rows[0].1.len();
        prop_assume!(rows.iter().all(|(_, f)| f.len() == dim));
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (l, f) in &rows {
            labels.push(*l);
            data.extend(f.iter().map(|&v| v as f32 / 8.0));
        }
        let features = Tensor::from_vec(data, &[rows.len(), dim]).unwrap();
        let text = format_inputs(&features, Some(&labels));
        let parsed = parse_inputs(text.as_bytes()).unwrap();
        prop_assert_eq!(parsed.labels.as_deref(), Some(&labels[..]));
        for (a, b) in parsed.features.as_slice().iter().zip(features.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// The architecture parser never panics on arbitrary text.
    #[test]
    fn arch_parser_never_panics(text in "[ -~\n]{0,200}") {
        let _ = parse_architecture(&text, 0);
    }

    /// The inputs parser never panics on arbitrary text.
    #[test]
    fn inputs_parser_never_panics(text in "[ -~\n]{0,200}") {
        let _ = parse_inputs(text.as_bytes());
    }

    /// The parameters parser never panics on arbitrary bytes.
    #[test]
    fn params_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut net = parse_architecture("input 4\nfc 2\n", 0).unwrap().network;
        let _ = read_parameters_into(&mut net, &bytes[..]);
    }
}
