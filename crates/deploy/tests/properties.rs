//! Property-based tests for the deployment pipeline: generated
//! architectures always build consistent networks, the inputs format
//! round-trips arbitrary data, and the parsers never panic on junk.
//!
//! Runs on the in-house `ffdl_rng::prop` harness (seeded cases,
//! replayable failures).

use ffdl_deploy::{
    format_inputs, parse_architecture, parse_inputs, read_parameters_into, write_parameters,
    DeployError, InferenceEngine, Shape,
};
use ffdl_rng::prop::{ascii_text, bytes, check, vec_of};
use ffdl_rng::{prop_assert, prop_assert_eq, Rng, SmallRng};
use ffdl_tensor::Tensor;

/// Generator: a random valid FC architecture description, returning the
/// text plus its declared input dim and output classes.
fn fc_arch(rng: &mut SmallRng) -> (String, usize, usize) {
    let input = rng.gen_range(1usize..=64);
    let layers = vec_of(rng, 1..=4, |r| {
        (
            r.gen_range(1usize..=32),
            r.gen_range(0usize..=16), // block: 0 = dense
            r.gen_range(0u8..=3),
        )
    });
    let classes = rng.gen_range(1usize..=10);
    let mut text = format!("input {input}\n");
    for (w, b, act) in &layers {
        if *b == 0 {
            text.push_str(&format!("fc {w}\n"));
        } else {
            text.push_str(&format!("circulant_fc {w} block={b}\n"));
        }
        match act {
            0 => text.push_str("relu\n"),
            1 => text.push_str("sigmoid\n"),
            2 => text.push_str("tanh\n"),
            _ => {}
        }
    }
    text.push_str(&format!("fc {classes}\nsoftmax\n"));
    (text, input, classes)
}

/// Every generated architecture parses, forwards at the declared
/// shapes, and produces probability rows.
#[test]
fn generated_architectures_build_and_run() {
    check(
        "generated_architectures_build_and_run",
        32,
        |rng| {
            let (text, input, classes) = fc_arch(rng);
            (text, input, classes, rng.gen_range(0u64..100))
        },
        |(text, input, classes, seed)| {
            let parsed = parse_architecture(text, *seed).unwrap();
            prop_assert_eq!(parsed.input_shape, Shape::Flat(*input));
            prop_assert_eq!(parsed.output_shape, Shape::Flat(*classes));
            let mut net = parsed.network;
            let x = Tensor::from_fn(&[2, *input], |i| ((i * 13 + 1) % 7) as f32 * 0.1);
            let y = net.forward(&x).unwrap();
            prop_assert_eq!(y.shape(), &[2, *classes]);
            for r in 0..2 {
                let s: f32 = y.row(r).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
            }
            Ok(())
        },
    );
}

/// Parameters written for a generated architecture load back into a
/// fresh copy and reproduce outputs bit-exactly.
#[test]
fn parameters_roundtrip_generated_architectures() {
    check(
        "parameters_roundtrip_generated_architectures",
        32,
        |rng| {
            let (text, input, _classes) = fc_arch(rng);
            (text, input, rng.gen_range(0u64..100))
        },
        |(text, input, seed)| {
            let mut a = parse_architecture(text, *seed).unwrap().network;
            let mut blob = Vec::new();
            write_parameters(&a, &mut blob).unwrap();
            let mut b = parse_architecture(text, seed.wrapping_add(9999)).unwrap().network;
            read_parameters_into(&mut b, &blob[..]).unwrap();
            let x = Tensor::from_fn(&[1, *input], |i| (i as f32 * 0.17).sin());
            let ya = a.forward(&x).unwrap();
            let yb = b.forward(&x).unwrap();
            prop_assert_eq!(ya.as_slice(), yb.as_slice());
            Ok(())
        },
    );
}

/// The inputs text format round-trips arbitrary finite features and
/// labels.
#[test]
fn inputs_roundtrip() {
    check(
        "inputs_roundtrip",
        32,
        |rng| {
            // All rows share one feature dimension by construction.
            let dim = rng.gen_range(1usize..=8);
            vec_of(rng, 1..=6, |r| {
                (
                    r.gen_range(0usize..10),
                    (0..dim)
                        .map(|_| r.gen_range(-1000i32..1000))
                        .collect::<Vec<_>>(),
                )
            })
        },
        |rows| {
            let dim = rows[0].1.len();
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for (l, f) in rows {
                labels.push(*l);
                data.extend(f.iter().map(|&v| v as f32 / 8.0));
            }
            let features = Tensor::from_vec(data, &[rows.len(), dim]).unwrap();
            let text = format_inputs(&features, Some(&labels));
            let parsed = parse_inputs(text.as_bytes()).unwrap();
            prop_assert_eq!(parsed.labels.as_deref(), Some(&labels[..]));
            for (a, b) in parsed.features.as_slice().iter().zip(features.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// Malformed inference requests against generated architectures are
/// typed [`DeployError`]s, never panics: a mismatched input width, an
/// empty input batch (both the `[0, d]` tensor and the empty sample
/// list), and a truncated (missing-tail) parameters blob.
#[test]
fn bad_requests_are_typed_errors() {
    check(
        "bad_requests_are_typed_errors",
        32,
        |rng| {
            let (text, input, _classes) = fc_arch(rng);
            let wrong = {
                let mut w = rng.gen_range(1usize..=96);
                if w == input {
                    w = input + 1;
                }
                w
            };
            (text, input, wrong, rng.gen_range(0u64..100))
        },
        |(text, input, wrong, seed)| {
            let net = parse_architecture(text, *seed).unwrap().network;

            // Mismatched input width.
            let mut engine = InferenceEngine::new(net);
            let bad = Tensor::from_fn(&[2, *wrong], |i| i as f32 * 0.01);
            prop_assert!(matches!(
                engine.predict(&bad),
                Err(DeployError::Nn(_))
            ));

            // Empty batch, both entry points.
            prop_assert!(matches!(
                engine.predict(&Tensor::zeros(&[0, *input])),
                Err(DeployError::Nn(_))
            ));
            prop_assert!(matches!(engine.predict_batch(&[]), Err(DeployError::Nn(_))));

            // Missing parameters: a truncated blob is rejected, and the
            // network still serves well-formed requests afterwards.
            let mut blob = Vec::new();
            write_parameters(engine.network(), &mut blob).unwrap();
            let cut = blob.len() / 2;
            prop_assert!(read_parameters_into(engine.network_mut(), &blob[..cut]).is_err());
            let ok = Tensor::from_fn(&[1, *input], |i| (i as f32 * 0.1).cos());
            prop_assert!(engine.predict(&ok).is_ok());
            Ok(())
        },
    );
}

/// The architecture parser never panics on arbitrary text.
#[test]
fn arch_parser_never_panics() {
    check(
        "arch_parser_never_panics",
        32,
        |rng| ascii_text(rng, 200),
        |text| {
            let _ = parse_architecture(text, 0);
            Ok(())
        },
    );
}

/// The inputs parser never panics on arbitrary text.
#[test]
fn inputs_parser_never_panics() {
    check(
        "inputs_parser_never_panics",
        32,
        |rng| ascii_text(rng, 200),
        |text| {
            let _ = parse_inputs(text.as_bytes());
            Ok(())
        },
    );
}

/// The parameters parser never panics on arbitrary bytes.
#[test]
fn params_parser_never_panics() {
    check(
        "params_parser_never_panics",
        32,
        |rng| bytes(rng, 256),
        |bytes| {
            let mut net = parse_architecture("input 4\nfc 2\n", 0).unwrap().network;
            let _ = read_parameters_into(&mut net, &bytes[..]);
            Ok(())
        },
    );
}
