//! The block-circulant convolutional layer (§IV-B): the weight tensor `F`
//! is constrained so that its Fig.-3 lowering `F ∈ ℝ^{Cr²×P}` is a
//! block-circulant matrix (Eqn. 6), and the lowered product `Y = X·F` runs
//! through the same FFT kernel as the FC layer. Complexity drops from
//! `O(W·H·r²·C·P)` to `O(W·H·Q·log Q)` with `Q = max(r²C, P)`.

use crate::circulant::{BlockCirculantMatrix, ForwardCache};
use ffdl_nn::{wire, Layer, NnError, OpCost, ParamRef};
use ffdl_tensor::{col2im, im2col, ConvGeometry, Tensor};
use ffdl_rng::Rng;

/// Convolutional layer whose lowered filter matrix is block-circulant:
/// input `[batch, C, H, W]` → output `[batch, P, H_out, W_out]`.
///
/// Per sample, the im2col matrix rows (one per output pixel) are pushed
/// through the block-circulant product in a single batched FFT pass.
pub struct CirculantConv2d {
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    in_h: usize,
    in_w: usize,
    /// Lowered filter matrix, logical shape `[C·r², P]`, block-circulant.
    matrix: BlockCirculantMatrix,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    /// One cache per sample from the last forward pass.
    caches: Vec<ForwardCache>,
    /// The im2col matrices are not needed in backward (spectra are cached),
    /// but their geometry is.
    last_batch: usize,
}

impl CirculantConv2d {
    /// Creates a block-circulant CONV layer.
    ///
    /// `block` is the circulant block size of the lowered `[Cr², P]`
    /// filter matrix; both dimensions are zero-padded to multiples of it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] when the kernel does not fit the input or any
    /// size is zero.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        geom: ConvGeometry,
        block: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        geom.output_extent(in_h)?;
        geom.output_extent(in_w)?;
        let rows = in_channels * geom.kernel * geom.kernel;
        let matrix = BlockCirculantMatrix::random(rows, out_channels, block, rng)?;
        Ok(Self {
            in_channels,
            out_channels,
            geom,
            in_h,
            in_w,
            weight_grad: Tensor::zeros(matrix.weights().shape()),
            bias_grad: Tensor::zeros(&[out_channels]),
            matrix,
            bias: Tensor::zeros(&[out_channels]),
            caches: Vec::new(),
            last_batch: 0,
        })
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.geom
            .output_extent(self.in_h)
            .expect("validated at construction")
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.geom
            .output_extent(self.in_w)
            .expect("validated at construction")
    }

    /// The lowered block-circulant filter matrix (`[Cr², P]` logical).
    pub fn matrix(&self) -> &BlockCirculantMatrix {
        &self.matrix
    }

    /// Circulant block size.
    pub fn block(&self) -> usize {
        self.matrix.block()
    }

    /// Storage compression of the filter matrix.
    pub fn compression_ratio(&self) -> f32 {
        self.matrix.compression_ratio()
    }

    fn check_input(&self, input: &Tensor) -> Result<(), NnError> {
        if input.ndim() != 4
            || input.shape()[1] != self.in_channels
            || input.shape()[2] != self.in_h
            || input.shape()[3] != self.in_w
        {
            return Err(NnError::BadInput {
                layer: "circulant_conv2d".into(),
                message: format!(
                    "expected [batch, {}, {}, {}], got {:?}",
                    self.in_channels,
                    self.in_h,
                    self.in_w,
                    input.shape()
                ),
            });
        }
        Ok(())
    }
}

impl Layer for CirculantConv2d {
    fn type_tag(&self) -> &'static str {
        "circulant_conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.check_input(input)?;
        let batch = input.shape()[0];
        let (oh, ow) = (self.out_h(), self.out_w());
        let plane = self.in_channels * self.in_h * self.in_w;
        let mut out = Vec::with_capacity(batch * self.out_channels * oh * ow);
        self.caches.clear();

        for s in 0..batch {
            let sample = Tensor::from_vec(
                input.as_slice()[s * plane..(s + 1) * plane].to_vec(),
                &[self.in_channels, self.in_h, self.in_w],
            )?;
            let cols = im2col(&sample, self.geom)?; // [oh·ow, Cr²]
            let (y, cache) = self.matrix.forward_batch(&cols)?; // [oh·ow, P]
            for p in 0..self.out_channels {
                let b = self.bias.as_slice()[p];
                for pix in 0..oh * ow {
                    out.push(y.at(&[pix, p]) + b);
                }
            }
            self.caches.push(cache);
        }
        self.last_batch = batch;
        Ok(Tensor::from_vec(
            out,
            &[batch, self.out_channels, oh, ow],
        )?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.caches.is_empty() {
            return Err(NnError::NoForwardCache("circulant_conv2d".into()));
        }
        let (oh, ow) = (self.out_h(), self.out_w());
        if grad_output.ndim() != 4
            || grad_output.shape()[0] != self.last_batch
            || grad_output.shape()[1] != self.out_channels
            || grad_output.shape()[2] != oh
            || grad_output.shape()[3] != ow
        {
            return Err(NnError::BadInput {
                layer: "circulant_conv2d".into(),
                message: format!(
                    "expected gradient [{}, {}, {oh}, {ow}], got {:?}",
                    self.last_batch,
                    self.out_channels,
                    grad_output.shape()
                ),
            });
        }

        let plane_out = self.out_channels * oh * ow;
        let mut weight_grad = Tensor::zeros(self.matrix.weights().shape());
        let mut bias_grad = vec![0.0f32; self.out_channels];
        let mut grad_input =
            Vec::with_capacity(self.last_batch * self.in_channels * self.in_h * self.in_w);

        for (s, cache) in self.caches.iter().enumerate() {
            // Reassemble g as [oh·ow, P] from [P, oh, ow].
            let gslice = &grad_output.as_slice()[s * plane_out..(s + 1) * plane_out];
            let mut g = vec![0.0f32; oh * ow * self.out_channels];
            for p in 0..self.out_channels {
                for pix in 0..oh * ow {
                    let v = gslice[p * oh * ow + pix];
                    g[pix * self.out_channels + p] = v;
                    bias_grad[p] += v;
                }
            }
            let g = Tensor::from_vec(g, &[oh * ow, self.out_channels])?;
            let (dcols, dw) = self.matrix.backward_batch(cache, &g)?;
            weight_grad = weight_grad.add(&dw)?;
            let dx = col2im(&dcols, self.in_channels, self.in_h, self.in_w, self.geom)?;
            grad_input.extend_from_slice(dx.as_slice());
        }

        self.weight_grad = weight_grad;
        self.bias_grad = Tensor::from_slice(&bias_grad);
        Ok(Tensor::from_vec(
            grad_input,
            &[self.last_batch, self.in_channels, self.in_h, self.in_w],
        )?)
    }

    fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "circulant_filters",
                value: self.matrix.weights_mut(),
                grad: &mut self.weight_grad,
            },
            ParamRef {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.matrix.param_count() + self.bias.len()
    }

    fn logical_param_count(&self) -> usize {
        self.matrix.logical_param_count() + self.bias.len()
    }

    fn op_cost(&self) -> OpCost {
        // One block-circulant product per output pixel.
        let (oh, ow) = (self.out_h(), self.out_w());
        let pixels = (oh * ow) as u64;
        let b = self.matrix.block() as u64;
        let bins = (self.matrix.block() / 2 + 1) as u64;
        let kb_in = self.matrix.in_blocks() as u64;
        let kb_out = self.matrix.out_blocks() as u64;
        let log_b = (64 - b.leading_zeros() as u64).max(1);
        let fft_mults = b * log_b;
        // Weight spectra are shared across pixels: count them once.
        let per_pixel = (kb_in + kb_out) * fft_mults + kb_in * kb_out * bins * 4;
        let mults = pixels * per_pixel + kb_in * kb_out * fft_mults;
        OpCost {
            mults,
            adds: mults + pixels * self.out_channels as u64,
            nonlin: 0,
            param_reads: self.param_count() as u64,
            act_traffic: (self.in_channels * self.in_h * self.in_w
                + self.out_channels * oh * ow) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [
            self.in_channels,
            self.out_channels,
            self.in_h,
            self.in_w,
            self.geom.kernel,
            self.geom.stride,
            self.geom.pad,
            self.matrix.block(),
        ] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        vec![self.matrix.weights(), &self.bias]
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.matrix.weights().shape()
            || params[1].shape() != [self.out_channels]
        {
            return Err(NnError::ModelFormat(
                "circulant_conv2d parameter shapes do not match".into(),
            ));
        }
        *self.matrix.weights_mut() = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            geom: self.geom,
            in_h: self.in_h,
            in_w: self.in_w,
            matrix: self.matrix.clone(),
            bias: self.bias.clone(),
            weight_grad: self.weight_grad.clone(),
            bias_grad: self.bias_grad.clone(),
            caches: Vec::new(),
            last_batch: 0,
        }))
    }
}

/// Reconstructs a [`CirculantConv2d`] from its config blob (model loader).
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn circulant_conv2d_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let mut vals = [0usize; 8];
    for v in &mut vals {
        *v = wire::read_u32(&mut config)? as usize;
    }
    let [cin, cout, h, w, k, s, p, block] = vals;
    let geom = ConvGeometry {
        kernel: k,
        stride: s,
        pad: p,
    };
    let mut rng = ffdl_rng::rngs::mock::StepRng::new(1, 1);
    let layer = CirculantConv2d::new(cin, cout, h, w, geom, block, &mut rng)?;
    Ok(Box::new(layer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_tensor::{conv2d_direct, matrix_to_filters};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(31)
    }

    fn image(batch: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(&[batch, c, h, w], |i| ((i * 17 + 7) % 31) as f32 * 0.05 - 0.7)
    }

    #[test]
    fn forward_matches_dense_conv_with_expanded_filters() {
        // The circulant CONV layer must equal a direct convolution with the
        // dense expansion of its lowered filter matrix.
        let geom = ConvGeometry::valid(3);
        let (c, h, w, p, b) = (2usize, 6usize, 6usize, 4usize, 2usize);
        let mut layer = CirculantConv2d::new(c, p, h, w, geom, b, &mut rng()).unwrap();
        let x = image(1, c, h, w);
        let y = layer.forward(&x).unwrap();

        let fmat = layer.matrix().to_dense(); // [Cr², P]
        let filters = matrix_to_filters(&fmat, c, 3).unwrap();
        let sample = Tensor::from_vec(x.as_slice().to_vec(), &[c, h, w]).unwrap();
        let reference = conv2d_direct(&sample, &filters, geom).unwrap();
        for (a, v) in y.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - v).abs() < 1e-3, "{a} vs {v}");
        }
    }

    #[test]
    fn gradient_check_small() {
        let geom = ConvGeometry::valid(2);
        let mut layer = CirculantConv2d::new(1, 2, 4, 4, geom, 2, &mut rng()).unwrap();
        let x = image(1, 1, 4, 4);
        let loss = |layer: &mut CirculantConv2d, x: &Tensor| -> f32 {
            let y = layer.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let y = layer.forward(&x).unwrap();
        let gx = layer.backward(&y).unwrap();
        let wg = layer.weight_grad.clone();

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = gx.as_slice()[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                "dx[{i}]: {num} vs {ana}"
            );
        }
        for i in 0..wg.len() {
            let orig = layer.matrix.weights().as_slice()[i];
            layer.matrix.weights_mut().as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.matrix.weights_mut().as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.matrix.weights_mut().as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = wg.as_slice()[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                "dw[{i}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn batched_forward_shape() {
        let geom = ConvGeometry {
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let mut layer = CirculantConv2d::new(3, 8, 8, 8, geom, 4, &mut rng()).unwrap();
        let y = layer.forward(&image(2, 3, 8, 8)).unwrap();
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn compression_accounting() {
        let geom = ConvGeometry::valid(3);
        // Lowered matrix is [3·9, 64] = [27, 64], block 9 → pads rows
        // to 27 (divides), cols to 63→... 64/9 = 7.11 → 8 blocks.
        let layer = CirculantConv2d::new(3, 64, 16, 16, geom, 9, &mut rng()).unwrap();
        assert_eq!(layer.matrix().in_blocks(), 3);
        assert_eq!(layer.matrix().out_blocks(), 8);
        assert_eq!(layer.param_count(), 3 * 8 * 9 + 64);
        assert!(layer.compression_ratio() > 7.0);
    }

    #[test]
    fn errors_on_bad_shapes() {
        let geom = ConvGeometry::valid(3);
        let mut layer = CirculantConv2d::new(2, 4, 6, 6, geom, 2, &mut rng()).unwrap();
        assert!(layer.forward(&image(1, 3, 6, 6)).is_err());
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 4, 4, 4])),
            Err(NnError::NoForwardCache(_))
        ));
        let _ = layer.forward(&image(1, 2, 6, 6)).unwrap();
        assert!(layer.backward(&Tensor::zeros(&[1, 4, 5, 5])).is_err());
        assert!(CirculantConv2d::new(1, 1, 2, 2, ConvGeometry::valid(5), 2, &mut rng()).is_err());
    }

    #[test]
    fn config_roundtrip() {
        let geom = ConvGeometry {
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let mut layer = CirculantConv2d::new(2, 6, 9, 9, geom, 3, &mut rng()).unwrap();
        let mut rebuilt = circulant_conv2d_from_config(&layer.config_bytes()).unwrap();
        let params: Vec<Tensor> = layer.param_tensors().into_iter().cloned().collect();
        rebuilt.load_params(&params).unwrap();
        let x = image(1, 2, 9, 9);
        let y1 = layer.forward(&x).unwrap();
        let y2 = rebuilt.forward(&x).unwrap();
        for (a, v) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - v).abs() < 1e-6);
        }
        assert!(rebuilt.load_params(&[]).is_err());
    }

    #[test]
    fn trains_under_sgd() {
        use ffdl_nn::{Network, Sgd, SoftmaxCrossEntropy};
        let geom = ConvGeometry::valid(3);
        let mut r = rng();
        let mut net = Network::new();
        net.push(CirculantConv2d::new(1, 4, 6, 6, geom, 4, &mut r).unwrap());
        net.push(ffdl_nn::Relu::new());
        net.push(ffdl_nn::Flatten::new());
        net.push(ffdl_nn::Dense::new(4 * 4 * 4, 2, &mut r));

        // Two distinguishable patterns.
        let mut data = vec![0.0f32; 2 * 36];
        for i in 0..18 {
            data[i] = 1.0; // class 0: top half lit
            data[36 + 35 - i] = 1.0; // class 1: bottom half lit
        }
        let x = Tensor::from_vec(data, &[2, 1, 6, 6]).unwrap();
        let labels = [0usize, 1];
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            last = net.train_batch(&x, &labels, &loss, &mut opt).unwrap();
        }
        assert!(last < 0.1, "loss {last}");
        assert_eq!(net.accuracy(&x, &labels).unwrap(), 1.0);
    }
}
