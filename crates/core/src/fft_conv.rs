//! FFT-based convolution *without* compression — the baseline the paper
//! distinguishes itself from (§I): "the prior work of using FFT for
//! convolutional layer acceleration by LeCun et al. [11] ... can only
//! achieve convolutional layer acceleration instead of simultaneous
//! compression."
//!
//! [`FftConv2d`] stores the same dense `[P, C, r, r]` filter bank as
//! `ffdl_nn::Conv2d` (zero compression) but evaluates the valid
//! cross-correlation of Eqn. 5 through 2-D FFTs: each channel and filter
//! is transformed once per pass at size `(H+r−1) × (W+r−1)` (where
//! circular = linear convolution), products accumulate in the frequency
//! domain, and one inverse FFT per output map recovers the result.

use ffdl_fft::{Complex32, Fft2d};
use ffdl_nn::{wire, Layer, NnError, OpCost, ParamRef};
use ffdl_tensor::{Init, Tensor};
use ffdl_rng::Rng;

/// Dense convolutional layer computed via the 2-D FFT (valid
/// correlation, stride 1, no padding — the setting of Eqn. 5 and of the
/// LeCun et al. baseline).
///
/// Input `[batch, C, H, W]` → output `[batch, P, H−r+1, W−r+1]`. Stores
/// `P·C·r² + P` parameters — identical to `Conv2d`; the point of this
/// layer is the *compute* path, benchmarked against
/// [`CirculantConv2d`](crate::CirculantConv2d) which also compresses.
pub struct FftConv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    in_h: usize,
    in_w: usize,
    filters: Tensor, // [P, C, r, r]
    bias: Tensor,    // [P]
    filters_grad: Tensor,
    bias_grad: Tensor,
    plan: Fft2d<f32>,
    /// Cached input-channel spectra per sample from the last forward.
    cached_x_spectra: Vec<Vec<Vec<Complex32>>>,
}

impl FftConv2d {
    /// Creates an FFT convolution layer with He-normal filters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the kernel does not fit or any
    /// dimension is zero.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NnError::BadInput {
                layer: "fft_conv2d".into(),
                message: "channels and kernel must be positive".into(),
            });
        }
        if kernel > in_h || kernel > in_w {
            return Err(NnError::BadInput {
                layer: "fft_conv2d".into(),
                message: format!("kernel {kernel} exceeds input {in_h}×{in_w}"),
            });
        }
        let fan_in = in_channels * kernel * kernel;
        let filters = Init::HeNormal.sample(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            out_channels,
            rng,
        );
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            in_h,
            in_w,
            filters_grad: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            bias_grad: Tensor::zeros(&[out_channels]),
            filters,
            bias: Tensor::zeros(&[out_channels]),
            // Pad to powers of two: radix-2 transforms are far cheaper
            // than the Bluestein fallback, and circular convolution at
            // any size ≥ H+r−1 still equals the linear convolution.
            plan: Fft2d::new(
                (in_h + kernel - 1).next_power_of_two(),
                (in_w + kernel - 1).next_power_of_two(),
            ),
            cached_x_spectra: Vec::new(),
        })
    }

    /// Output spatial height (`H − r + 1`).
    pub fn out_h(&self) -> usize {
        self.in_h - self.kernel + 1
    }

    /// Output spatial width (`W − r + 1`).
    pub fn out_w(&self) -> usize {
        self.in_w - self.kernel + 1
    }

    /// The dense filter bank (`[P, C, r, r]`).
    pub fn filters(&self) -> &Tensor {
        &self.filters
    }

    /// FFT working size per transform, `(H+r−1)·(W+r−1)`.
    pub fn transform_len(&self) -> usize {
        self.plan.len()
    }

    fn fft_rows(&self) -> usize {
        (self.in_h + self.kernel - 1).next_power_of_two()
    }

    fn fft_cols(&self) -> usize {
        (self.in_w + self.kernel - 1).next_power_of_two()
    }

    /// Zero-pads a `h×w` plane into the FFT working buffer and transforms.
    fn spectrum_of_plane(&self, plane: &[f32], h: usize, w: usize) -> Vec<Complex32> {
        let (fr, fc) = (self.fft_rows(), self.fft_cols());
        let mut buf = vec![Complex32::zero(); fr * fc];
        for r in 0..h {
            for c in 0..w {
                buf[r * fc + c] = Complex32::from_real(plane[r * w + c]);
            }
        }
        self.plan.forward(&mut buf).expect("plan size matches");
        buf
    }

    /// Spectrum of the *flipped* filter `(p, c)`, so circular convolution
    /// realizes the valid cross-correlation of Eqn. 5.
    fn spectrum_of_flipped_filter(&self, p: usize, c: usize) -> Vec<Complex32> {
        let r = self.kernel;
        let f = self.filters.as_slice();
        let base = (p * self.in_channels + c) * r * r;
        let mut flipped = vec![0.0f32; r * r];
        for i in 0..r {
            for j in 0..r {
                flipped[(r - 1 - i) * r + (r - 1 - j)] = f[base + i * r + j];
            }
        }
        self.spectrum_of_plane(&flipped, r, r)
    }
}

impl Layer for FftConv2d {
    fn type_tag(&self) -> &'static str {
        "fft_conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.ndim() != 4
            || input.shape()[1] != self.in_channels
            || input.shape()[2] != self.in_h
            || input.shape()[3] != self.in_w
        {
            return Err(NnError::BadInput {
                layer: "fft_conv2d".into(),
                message: format!(
                    "expected [batch, {}, {}, {}], got {:?}",
                    self.in_channels,
                    self.in_h,
                    self.in_w,
                    input.shape()
                ),
            });
        }
        let batch = input.shape()[0];
        let (oh, ow) = (self.out_h(), self.out_w());
        let (fr, fc) = (self.fft_rows(), self.fft_cols());
        let plane = self.in_h * self.in_w;
        let r = self.kernel;

        // Filter spectra, shared across the batch.
        let filter_spec: Vec<Vec<Vec<Complex32>>> = (0..self.out_channels)
            .map(|p| {
                (0..self.in_channels)
                    .map(|c| self.spectrum_of_flipped_filter(p, c))
                    .collect()
            })
            .collect();

        let mut out = Vec::with_capacity(batch * self.out_channels * oh * ow);
        self.cached_x_spectra.clear();
        for s in 0..batch {
            let x_spec: Vec<Vec<Complex32>> = (0..self.in_channels)
                .map(|c| {
                    let start = (s * self.in_channels + c) * plane;
                    self.spectrum_of_plane(
                        &input.as_slice()[start..start + plane],
                        self.in_h,
                        self.in_w,
                    )
                })
                .collect();

            for (p, filter_spec_p) in filter_spec.iter().enumerate() {
                let mut acc = vec![Complex32::zero(); fr * fc];
                for (x_c, f_c) in x_spec.iter().zip(filter_spec_p) {
                    for ((o, &x), &f) in acc.iter_mut().zip(x_c).zip(f_c) {
                        *o += x * f;
                    }
                }
                self.plan.inverse(&mut acc).expect("plan size matches");
                let b = self.bias.as_slice()[p];
                // Valid region starts at (r−1, r−1).
                for a in 0..oh {
                    for bcol in 0..ow {
                        out.push(acc[(a + r - 1) * fc + (bcol + r - 1)].re + b);
                    }
                }
            }
            self.cached_x_spectra.push(x_spec);
        }
        Ok(Tensor::from_vec(
            out,
            &[batch, self.out_channels, oh, ow],
        )?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_x_spectra.is_empty() {
            return Err(NnError::NoForwardCache("fft_conv2d".into()));
        }
        let (oh, ow) = (self.out_h(), self.out_w());
        let batch = self.cached_x_spectra.len();
        if grad_output.shape() != [batch, self.out_channels, oh, ow] {
            return Err(NnError::BadInput {
                layer: "fft_conv2d".into(),
                message: format!(
                    "expected gradient [{batch}, {}, {oh}, {ow}], got {:?}",
                    self.out_channels,
                    grad_output.shape()
                ),
            });
        }
        let (fr, fc) = (self.fft_rows(), self.fft_cols());
        let r = self.kernel;
        let mut grad_filters = vec![0.0f32; self.filters.len()];
        let mut grad_bias = vec![0.0f32; self.out_channels];
        let mut grad_input =
            Vec::with_capacity(batch * self.in_channels * self.in_h * self.in_w);

        // Flipped-filter spectra for the input gradient.
        let filter_spec: Vec<Vec<Vec<Complex32>>> = (0..self.out_channels)
            .map(|p| {
                (0..self.in_channels)
                    .map(|c| self.spectrum_of_flipped_filter(p, c))
                    .collect()
            })
            .collect();

        for (s, x_spec) in self.cached_x_spectra.iter().enumerate() {
            // Embed each output-map gradient at offset (r−1, r−1) — the
            // position of the valid region inside the linear-convolution
            // buffer — and transform.
            let g_spec: Vec<Vec<Complex32>> = (0..self.out_channels)
                .map(|p| {
                    let mut buf = vec![Complex32::zero(); fr * fc];
                    for a in 0..oh {
                        for bcol in 0..ow {
                            let v = grad_output.at(&[s, p, a, bcol]);
                            grad_bias[p] += v;
                            buf[(a + r - 1) * fc + (bcol + r - 1)] =
                                Complex32::from_real(v);
                        }
                    }
                    self.plan.forward(&mut buf).expect("plan size matches");
                    buf
                })
                .collect();

            // dL/dx_c = Σ_p IFFT( G_p ∘ conj(Ĝflip_{p,c}) ).
            for c in 0..self.in_channels {
                let mut acc = vec![Complex32::zero(); fr * fc];
                for (g_p, filter_spec_p) in g_spec.iter().zip(&filter_spec) {
                    for ((o, &g), &f) in acc.iter_mut().zip(g_p).zip(&filter_spec_p[c]) {
                        *o += g * f.conj();
                    }
                }
                self.plan.inverse(&mut acc).expect("plan size matches");
                for i in 0..self.in_h {
                    for j in 0..self.in_w {
                        grad_input.push(acc[i * fc + j].re);
                    }
                }
            }

            // dL/dflip_{p,c} = IFFT( G_p ∘ conj(X_c) ), cropped to r×r at
            // the origin, then unflipped back to filter orientation.
            for (p, g_p) in g_spec.iter().enumerate() {
                for (c, x_c) in x_spec.iter().enumerate() {
                    let mut prod = vec![Complex32::zero(); fr * fc];
                    for ((o, &g), &x) in prod.iter_mut().zip(g_p).zip(x_c) {
                        *o = g * x.conj();
                    }
                    self.plan.inverse(&mut prod).expect("plan size matches");
                    let base = (p * self.in_channels + c) * r * r;
                    for u in 0..r {
                        for v in 0..r {
                            grad_filters[base + (r - 1 - u) * r + (r - 1 - v)] +=
                                prod[u * fc + v].re;
                        }
                    }
                }
            }
        }

        self.filters_grad = Tensor::from_vec(grad_filters, self.filters.shape())?;
        self.bias_grad = Tensor::from_slice(&grad_bias);
        Ok(Tensor::from_vec(
            grad_input,
            &[batch, self.in_channels, self.in_h, self.in_w],
        )?)
    }

    fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "filters",
                value: &mut self.filters,
                grad: &mut self.filters_grad,
            },
            ParamRef {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.filters.len() + self.bias.len()
    }

    fn op_cost(&self) -> OpCost {
        // (C + P·C + P) 2-D FFTs of S = fr·fc points (padded to powers of
        // two; ≈ S·log₂S complex mults each) plus P·C·S spectral MACs —
        // O(WHQ log Q), the acceleration (but not compression) the paper
        // credits to [11].
        let s = (self.fft_rows() * self.fft_cols()) as u64;
        let log_s = (64 - s.leading_zeros() as u64).max(1);
        let ffts = (self.in_channels + self.out_channels * self.in_channels
            + self.out_channels) as u64;
        let mults = ffts * s * log_s
            + (self.out_channels * self.in_channels) as u64 * s * 4;
        OpCost {
            mults,
            adds: mults,
            nonlin: 0,
            param_reads: self.param_count() as u64,
            act_traffic: (self.in_channels * self.in_h * self.in_w
                + self.out_channels * self.out_h() * self.out_w()) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [
            self.in_channels,
            self.out_channels,
            self.in_h,
            self.in_w,
            self.kernel,
        ] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        vec![&self.filters, &self.bias]
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.filters.shape()
            || params[1].shape() != self.bias.shape()
        {
            return Err(NnError::ModelFormat(
                "fft_conv2d parameter shapes do not match".into(),
            ));
        }
        self.filters = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            in_h: self.in_h,
            in_w: self.in_w,
            filters: self.filters.clone(),
            bias: self.bias.clone(),
            filters_grad: self.filters_grad.clone(),
            bias_grad: self.bias_grad.clone(),
            plan: self.plan.clone(),
            cached_x_spectra: Vec::new(),
        }))
    }
}

/// Reconstructs an [`FftConv2d`] from its config blob (model loader).
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn fft_conv2d_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let mut vals = [0usize; 5];
    for v in &mut vals {
        *v = wire::read_u32(&mut config)? as usize;
    }
    let [cin, cout, h, w, k] = vals;
    let mut rng = ffdl_rng::rngs::mock::StepRng::new(1, 1);
    Ok(Box::new(FftConv2d::new(cin, cout, h, w, k, &mut rng)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_tensor::{conv2d_direct, ConvGeometry};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(51)
    }

    fn image(batch: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(&[batch, c, h, w], |i| ((i * 19 + 3) % 37) as f32 * 0.05 - 0.9)
    }

    #[test]
    fn forward_matches_direct_convolution() {
        for (c, h, w, p, k) in [
            (1usize, 5usize, 5usize, 2usize, 3usize),
            (2, 6, 7, 3, 3),
            (3, 8, 8, 4, 5),
            (2, 4, 4, 1, 1),
        ] {
            let mut layer = FftConv2d::new(c, p, h, w, k, &mut rng()).unwrap();
            let x = image(1, c, h, w);
            let y = layer.forward(&x).unwrap();
            let sample = Tensor::from_vec(x.as_slice().to_vec(), &[c, h, w]).unwrap();
            let reference =
                conv2d_direct(&sample, layer.filters(), ConvGeometry::valid(k)).unwrap();
            assert_eq!(y.shape()[1..], *reference.shape());
            for (a, b) in y.as_slice().iter().zip(reference.as_slice()) {
                assert!((a - b).abs() < 1e-3, "c={c} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_matches_dense_conv_layer_batched() {
        use ffdl_nn::Conv2d;
        let (c, h, w, p, k) = (2usize, 6usize, 6usize, 3usize, 3usize);
        let mut fft_layer = FftConv2d::new(c, p, h, w, k, &mut rng()).unwrap();
        let mut dense = Conv2d::new(c, p, h, w, ConvGeometry::valid(k), &mut rng()).unwrap();
        // Share parameters.
        let params: Vec<Tensor> = fft_layer.param_tensors().into_iter().cloned().collect();
        dense.load_params(&params).unwrap();

        let x = image(3, c, h, w);
        let y_fft = fft_layer.forward(&x).unwrap();
        let y_dense = dense.forward(&x).unwrap();
        for (a, b) in y_fft.as_slice().iter().zip(y_dense.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_check() {
        let mut layer = FftConv2d::new(1, 2, 4, 4, 2, &mut rng()).unwrap();
        let x = image(1, 1, 4, 4);
        let loss = |layer: &mut FftConv2d, x: &Tensor| -> f32 {
            let y = layer.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let y = layer.forward(&x).unwrap();
        let gx = layer.backward(&y).unwrap();
        let fg = layer.filters_grad.clone();
        let bg = layer.bias_grad.clone();

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{i}]: {num} vs {}",
                gx.as_slice()[i]
            );
        }
        for i in 0..fg.len() {
            let orig = layer.filters.as_slice()[i];
            layer.filters.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.filters.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.filters.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - fg.as_slice()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "df[{i}]: {num} vs {}",
                fg.as_slice()[i]
            );
        }
        for i in 0..bg.len() {
            let orig = layer.bias.as_slice()[i];
            layer.bias.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - bg.as_slice()[i]).abs() < 3e-2 * (1.0 + num.abs()), "db[{i}]");
        }
    }

    #[test]
    fn no_compression_same_params_as_dense() {
        use ffdl_nn::Conv2d;
        let fft_layer = FftConv2d::new(3, 8, 10, 10, 3, &mut rng()).unwrap();
        let dense =
            Conv2d::new(3, 8, 10, 10, ConvGeometry::valid(3), &mut rng()).unwrap();
        assert_eq!(fft_layer.param_count(), dense.param_count());
        assert_eq!(
            fft_layer.logical_param_count(),
            fft_layer.param_count(),
            "acceleration only — no compression (the paper's point in §I)"
        );
    }

    #[test]
    fn validates_inputs() {
        assert!(FftConv2d::new(0, 1, 4, 4, 2, &mut rng()).is_err());
        assert!(FftConv2d::new(1, 1, 4, 4, 5, &mut rng()).is_err());
        let mut layer = FftConv2d::new(1, 1, 4, 4, 2, &mut rng()).unwrap();
        assert!(layer.forward(&image(1, 2, 4, 4)).is_err());
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 1, 3, 3])),
            Err(NnError::NoForwardCache(_))
        ));
        let _ = layer.forward(&image(1, 1, 4, 4)).unwrap();
        assert!(layer.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn config_roundtrip() {
        let mut layer = FftConv2d::new(2, 3, 6, 5, 3, &mut rng()).unwrap();
        let mut rebuilt = fft_conv2d_from_config(&layer.config_bytes()).unwrap();
        let params: Vec<Tensor> = layer.param_tensors().into_iter().cloned().collect();
        rebuilt.load_params(&params).unwrap();
        let x = image(1, 2, 6, 5);
        let y1 = layer.forward(&x).unwrap();
        let y2 = rebuilt.forward(&x).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(rebuilt.load_params(&[]).is_err());
    }

    #[test]
    fn trains_under_sgd() {
        use ffdl_nn::{Flatten, Network, Relu, Sgd, SoftmaxCrossEntropy};
        let mut r = rng();
        let mut net = Network::new();
        net.push(FftConv2d::new(1, 4, 6, 6, 3, &mut r).unwrap());
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(ffdl_nn::Dense::new(4 * 4 * 4, 2, &mut r));

        let mut data = vec![0.0f32; 2 * 36];
        for i in 0..18 {
            data[i] = 1.0;
            data[36 + 35 - i] = 1.0;
        }
        let x = Tensor::from_vec(data, &[2, 1, 6, 6]).unwrap();
        let labels = [0usize, 1];
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            last = net.train_batch(&x, &labels, &loss, &mut opt).unwrap();
        }
        assert!(last < 0.1, "loss {last}");
    }
}
