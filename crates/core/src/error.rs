//! Error type for the block-circulant layer crate.

use std::error::Error;
use std::fmt;

/// Errors reported by block-circulant constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CirculantError {
    /// A dimension is zero where a positive size is required.
    ZeroDimension(&'static str),
    /// The weight grid does not match the declared geometry.
    GridMismatch {
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// A vector length does not match the block size.
    BlockLengthMismatch {
        /// Expected block size.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
}

impl fmt::Display for CirculantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CirculantError::ZeroDimension(what) => write!(f, "{what} must be positive"),
            CirculantError::GridMismatch { message } => {
                write!(f, "weight grid mismatch: {message}")
            }
            CirculantError::BlockLengthMismatch { expected, actual } => write!(
                f,
                "vector length {actual} does not match block size {expected}"
            ),
        }
    }
}

impl Error for CirculantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CirculantError::ZeroDimension("block size").to_string(),
            "block size must be positive"
        );
        assert!(CirculantError::GridMismatch {
            message: "2 vs 3".into()
        }
        .to_string()
        .contains("2 vs 3"));
        assert!(CirculantError::BlockLengthMismatch {
            expected: 8,
            actual: 7
        }
        .to_string()
        .contains("8"));
    }

    #[test]
    fn send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CirculantError>();
    }
}
