//! Fixed-point quantization of the spectral deployment form — composing
//! the paper's block-circulant compression with the *weight precision
//! reduction* line of related work it cites (§II: fixed-point
//! implementations [14], ultra-low-precision weights [15], [16]).
//!
//! The stored `FFT(wᵢ)` spectra are quantized to 8- or 16-bit fixed point
//! with one power-aware scale per circulant block; inference dequantizes
//! into `f32` accumulators (the usual embedded deployment scheme). On top
//! of the block-circulant `n²/b` reduction this shrinks model bytes by a
//! further 2–4×.

use crate::circulant::BlockCirculantMatrix;
use crate::spectral::{SpectralKernel, Spectrum};
use ffdl_fft::Complex32;
use ffdl_nn::{Layer, NnError, OpCost};
use ffdl_tensor::Tensor;

/// Quantization width for spectral coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantBits {
    /// 8-bit signed fixed point (4× smaller than `f32`).
    Eight,
    /// 16-bit signed fixed point (2× smaller than `f32`).
    Sixteen,
}

impl QuantBits {
    /// Largest representable magnitude.
    fn max_level(self) -> f32 {
        match self {
            QuantBits::Eight => i8::MAX as f32,
            QuantBits::Sixteen => i16::MAX as f32,
        }
    }

    /// Bytes per real scalar.
    pub fn bytes_per_value(self) -> usize {
        match self {
            QuantBits::Eight => 1,
            QuantBits::Sixteen => 2,
        }
    }
}

impl std::fmt::Display for QuantBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantBits::Eight => write!(f, "int8"),
            QuantBits::Sixteen => write!(f, "int16"),
        }
    }
}

/// One quantized half-spectrum: interleaved re/im levels plus the block
/// scale (`value = level · scale`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSpectrum {
    levels: Vec<i16>, // i8 values stored widened; width tracked by `bits`
    scale: f32,
    bits: QuantBits,
}

impl QuantizedSpectrum {
    /// Quantizes a half spectrum with a symmetric per-block scale.
    pub fn quantize(spec: &[Complex32], bits: QuantBits) -> Self {
        let max_abs = spec
            .iter()
            .flat_map(|c| [c.re.abs(), c.im.abs()])
            .fold(0.0f32, f32::max);
        let scale = if max_abs > 0.0 {
            max_abs / bits.max_level()
        } else {
            1.0
        };
        let q = |v: f32| -> i16 {
            let lvl = (v / scale).round();
            lvl.clamp(-bits.max_level(), bits.max_level()) as i16
        };
        let levels = spec.iter().flat_map(|c| [q(c.re), q(c.im)]).collect();
        Self { levels, scale, bits }
    }

    /// Reconstructs the complex spectrum.
    pub fn dequantize(&self) -> Spectrum {
        self.levels
            .chunks_exact(2)
            .map(|p| Complex32::new(p[0] as f32 * self.scale, p[1] as f32 * self.scale))
            .collect()
    }

    /// Number of complex bins.
    pub fn bins(&self) -> usize {
        self.levels.len() / 2
    }

    /// Storage in bytes: levels plus the `f32` scale.
    pub fn storage_bytes(&self) -> usize {
        self.levels.len() * self.bits.bytes_per_value() + 4
    }

    /// Worst-case absolute quantization error per component (half an LSB
    /// beyond scale/2 due to clamping is impossible with symmetric
    /// scaling).
    pub fn max_error(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Inference-only block-circulant FC layer with quantized spectra.
///
/// Behaves like [`SpectralDense`](crate::SpectralDense) but stores each
/// block's `FFT(w)` in fixed point; the forward pass dequantizes into
/// `f32` accumulators.
pub struct QuantizedSpectralDense {
    in_dim: usize,
    out_dim: usize,
    block: usize,
    kb_in: usize,
    kb_out: usize,
    spectra: Vec<Vec<QuantizedSpectrum>>,
    /// Dequantized working copy (built once at construction).
    dequantized: Vec<Vec<Spectrum>>,
    bias: Tensor,
    bits: QuantBits,
    kernel: SpectralKernel,
}

impl QuantizedSpectralDense {
    /// Quantizes a trained block-circulant matrix for deployment.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != matrix.out_dim()`.
    pub fn from_matrix(matrix: &BlockCirculantMatrix, bias: Tensor, bits: QuantBits) -> Self {
        assert_eq!(
            bias.len(),
            matrix.out_dim(),
            "bias length must equal the output dimension"
        );
        let spectra: Vec<Vec<QuantizedSpectrum>> = matrix
            .weight_spectra()
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|s| QuantizedSpectrum::quantize(&s, bits))
                    .collect()
            })
            .collect();
        let dequantized = spectra
            .iter()
            .map(|row| row.iter().map(QuantizedSpectrum::dequantize).collect())
            .collect();
        Self {
            in_dim: matrix.in_dim(),
            out_dim: matrix.out_dim(),
            block: matrix.block(),
            kb_in: matrix.in_blocks(),
            kb_out: matrix.out_blocks(),
            spectra,
            dequantized,
            bias,
            bits,
            kernel: SpectralKernel::new(matrix.block()),
        }
    }

    /// Quantization width.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// Total model bytes for this layer's weights (quantized spectra +
    /// `f32` bias).
    pub fn storage_bytes(&self) -> usize {
        self.spectra
            .iter()
            .flatten()
            .map(QuantizedSpectrum::storage_bytes)
            .sum::<usize>()
            + self.bias.len() * 4
    }

    /// Bytes an unquantized [`SpectralDense`](crate::SpectralDense) would
    /// use for the same geometry.
    pub fn float_storage_bytes(&self) -> usize {
        self.kb_in * self.kb_out * (self.block / 2 + 1) * 2 * 4 + self.bias.len() * 4
    }

    /// Bytes the dense `f32` matrix would use.
    pub fn dense_storage_bytes(&self) -> usize {
        (self.in_dim * self.out_dim + self.out_dim) * 4
    }
}

impl Layer for QuantizedSpectralDense {
    fn type_tag(&self) -> &'static str {
        "quantized_spectral_dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.ndim() != 2 || input.cols() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "quantized_spectral_dense".into(),
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.in_dim,
                    input.shape()
                ),
            });
        }
        let b = self.block;
        let batch = input.rows();
        let mut out = Vec::with_capacity(batch * self.out_dim);
        for s in 0..batch {
            let mut padded = vec![0.0f32; self.kb_in * b];
            padded[..self.in_dim].copy_from_slice(input.row(s));
            let x_spec: Vec<Spectrum> = (0..self.kb_in)
                .map(|j| self.kernel.spectrum(&padded[j * b..(j + 1) * b]))
                .collect();
            for i in 0..self.kb_out {
                let mut acc = self.kernel.zero_accumulator();
                for (w_spec, x_j) in self.dequantized[i].iter().zip(&x_spec) {
                    SpectralKernel::mul_accumulate(&mut acc, w_spec, x_j);
                }
                let block_out = self.kernel.inverse(&acc);
                let lo = i * b;
                for (k, v) in block_out.iter().enumerate() {
                    let idx = lo + k;
                    if idx < self.out_dim {
                        out.push(v + self.bias.as_slice()[idx]);
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, &[batch, self.out_dim])?)
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor, NnError> {
        Err(NnError::BadInput {
            layer: "quantized_spectral_dense".into(),
            message: "inference-only layer does not support backward".into(),
        })
    }

    fn param_count(&self) -> usize {
        // Quantized levels count as stored values, plus scales and bias.
        self.kb_in * self.kb_out * ((self.block / 2 + 1) * 2 + 1) + self.out_dim
    }

    fn logical_param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn op_cost(&self) -> OpCost {
        // Same arithmetic as SpectralDense plus one dequantize multiply
        // per stored level (folded into param handling).
        let b = self.block as u64;
        let bins = (self.block / 2 + 1) as u64;
        let kb_in = self.kb_in as u64;
        let kb_out = self.kb_out as u64;
        let log_b = (64 - b.leading_zeros() as u64).max(1);
        let fft_mults = b * log_b;
        let mults = (kb_in + kb_out) * fft_mults + kb_in * kb_out * bins * 4;
        OpCost {
            mults,
            adds: mults + self.out_dim as u64,
            nonlin: 0,
            // Quantized reads are narrower; scale the count by byte ratio.
            param_reads: (self.param_count() * self.bits.bytes_per_value() / 4).max(1) as u64,
            act_traffic: (self.in_dim + self.out_dim) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_layer::CirculantDense;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(61)
    }

    fn input(batch: usize, dim: usize) -> Tensor {
        Tensor::from_fn(&[batch, dim], |i| ((i * 7 + 2) % 19) as f32 * 0.1 - 0.9)
    }

    #[test]
    fn spectrum_quantize_roundtrip_error_bounded() {
        let spec: Spectrum = (0..33)
            .map(|k| Complex32::new((k as f32 * 0.7).sin(), (k as f32 * 0.3).cos()))
            .collect();
        for bits in [QuantBits::Eight, QuantBits::Sixteen] {
            let q = QuantizedSpectrum::quantize(&spec, bits);
            assert_eq!(q.bins(), 33);
            let back = q.dequantize();
            for (a, b) in back.iter().zip(&spec) {
                assert!(
                    (a.re - b.re).abs() <= q.max_error() + 1e-6
                        && (a.im - b.im).abs() <= q.max_error() + 1e-6,
                    "{bits}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn sixteen_bit_is_tighter_than_eight_bit() {
        let spec: Spectrum = (0..16)
            .map(|k| Complex32::new(k as f32 * 0.21 - 1.0, (k as f32).sqrt()))
            .collect();
        let q8 = QuantizedSpectrum::quantize(&spec, QuantBits::Eight);
        let q16 = QuantizedSpectrum::quantize(&spec, QuantBits::Sixteen);
        assert!(q16.max_error() < q8.max_error());
        assert!(q8.storage_bytes() < q16.storage_bytes());
    }

    #[test]
    fn zero_spectrum_quantizes_cleanly() {
        let spec = vec![Complex32::zero(); 8];
        let q = QuantizedSpectrum::quantize(&spec, QuantBits::Eight);
        for v in q.dequantize() {
            assert_eq!(v, Complex32::zero());
        }
    }

    #[test]
    fn quantized_layer_tracks_float_layer() {
        let mut float_layer = CirculantDense::new(24, 16, 8, &mut rng()).unwrap();
        let x = input(3, 24);
        let y_float = float_layer.forward(&x).unwrap();

        for (bits, tol) in [(QuantBits::Sixteen, 1e-3f32), (QuantBits::Eight, 0.15)] {
            let mut q = QuantizedSpectralDense::from_matrix(
                float_layer.matrix(),
                float_layer.bias().clone(),
                bits,
            );
            let y_q = q.forward(&x).unwrap();
            let scale = 1.0 + y_float.max_abs();
            for (a, b) in y_q.as_slice().iter().zip(y_float.as_slice()) {
                assert!((a - b).abs() < tol * scale, "{bits}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn storage_hierarchy() {
        let m = BlockCirculantMatrix::zeros(256, 128, 64).unwrap();
        let q8 =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Eight);
        let q16 =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Sixteen);
        assert!(q8.storage_bytes() < q16.storage_bytes());
        assert!(q16.storage_bytes() < q16.float_storage_bytes());
        assert!(q16.float_storage_bytes() < q16.dense_storage_bytes() / 10);
    }

    #[test]
    fn inference_only_and_validation() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let mut q =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[4]), QuantBits::Eight);
        assert!(q.backward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(q.forward(&Tensor::zeros(&[1, 7])).is_err());
        assert!(q.parameters().is_empty());
        assert_eq!(q.bits(), QuantBits::Eight);
        assert_eq!(q.type_tag(), "quantized_spectral_dense");
    }

    #[test]
    fn op_cost_param_reads_shrink_with_bits() {
        let m = BlockCirculantMatrix::zeros(128, 128, 64).unwrap();
        let q8 = QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Eight);
        let q16 =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Sixteen);
        assert!(q8.op_cost().param_reads < q16.op_cost().param_reads);
    }
}
