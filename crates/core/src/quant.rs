//! Fixed-point quantization of the spectral deployment form — composing
//! the paper's block-circulant compression with the *weight precision
//! reduction* line of related work it cites (§II: fixed-point
//! implementations [14], ultra-low-precision weights [15], [16]).
//!
//! The stored `FFT(wᵢ)` spectra are quantized to narrow signed fixed
//! point (8/12/16 effective bits) with one symmetric scale per **output
//! block**: `value = level · scale[out_block]`; the bias vector gets one
//! more symmetric scale of its own (reconstructed once at load time,
//! never per batch). Inference never
//! dequantizes the weight tensor — the forward pass multiplies `f32`
//! input spectra directly against the integer levels
//! ([`SpectralKernel::mul_accumulate_levels`]), accumulating pure
//! level-valued products across all input blocks, and applies the block
//! scale exactly once per output block (the IFFT is linear, so scaling
//! the time-domain block equals scaling the accumulator spectrum). On
//! top of the block-circulant `n²/b` reduction this shrinks model bytes
//! by a further 2–4×, and the narrower weight reads roughly halve the
//! layer's memory traffic.
//!
//! On disk the levels and scales travel through the version-3 model
//! format's quantization header (`ffdl_nn::wire::QuantPayload`) — 2
//! bytes per level for int16/int12 and 1 for int8, never widened to
//! `f32` tensors — so a quantized model is a first-class registry
//! citizen: publishable, checksummed, hot-swappable against its f32
//! parent.

use crate::circulant::{BlockCirculantMatrix, CirculantScratch};
use crate::spectral::{SpectralKernel, Spectrum};
use ffdl_fft::Complex32;
use ffdl_nn::wire::{self, QuantPayload, QUANT_SCHEME_SYMMETRIC};
use ffdl_nn::{Layer, NnError, OpCost, Scratch};
use ffdl_tensor::Tensor;
use std::sync::Arc;

/// Quantization width for spectral coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantBits {
    /// 8-bit signed fixed point (4× smaller than `f32`).
    Eight,
    /// 12 effective bits, stored in an `i16` slot (2× smaller).
    Twelve,
    /// 16-bit signed fixed point (2× smaller than `f32`).
    Sixteen,
}

impl QuantBits {
    /// Largest representable level magnitude.
    pub fn max_level(self) -> f32 {
        match self {
            QuantBits::Eight => i8::MAX as f32,
            QuantBits::Twelve => 2047.0,
            QuantBits::Sixteen => i16::MAX as f32,
        }
    }

    /// Bytes per real scalar on the wire.
    pub fn bytes_per_value(self) -> usize {
        match self {
            QuantBits::Eight => 1,
            QuantBits::Twelve | QuantBits::Sixteen => 2,
        }
    }

    /// Effective bits (the wire-format `bits` field).
    pub fn bits(self) -> u32 {
        match self {
            QuantBits::Eight => 8,
            QuantBits::Twelve => 12,
            QuantBits::Sixteen => 16,
        }
    }

    /// Inverse of [`QuantBits::bits`].
    pub fn from_bits(bits: u32) -> Option<Self> {
        match bits {
            8 => Some(QuantBits::Eight),
            12 => Some(QuantBits::Twelve),
            16 => Some(QuantBits::Sixteen),
            _ => None,
        }
    }
}

impl std::fmt::Display for QuantBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantBits::Eight => write!(f, "int8"),
            QuantBits::Twelve => write!(f, "int12"),
            QuantBits::Sixteen => write!(f, "int16"),
        }
    }
}

/// One quantized half-spectrum: interleaved re/im levels plus the
/// spectrum's symmetric scale (`value = level · scale`). This is the
/// free-standing building block (and the round-trip property-test
/// surface); the layer below shares one scale across a whole output
/// block row instead.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSpectrum {
    levels: Vec<i16>, // narrower widths stored widened; width tracked by `bits`
    scale: f32,
    bits: QuantBits,
}

impl QuantizedSpectrum {
    /// Quantizes a half spectrum with a symmetric per-spectrum scale.
    pub fn quantize(spec: &[Complex32], bits: QuantBits) -> Self {
        let max_abs = spec
            .iter()
            .flat_map(|c| [c.re.abs(), c.im.abs()])
            .fold(0.0f32, f32::max);
        let scale = if max_abs > 0.0 {
            max_abs / bits.max_level()
        } else {
            1.0
        };
        let q = |v: f32| -> i16 {
            let lvl = (v / scale).round();
            lvl.clamp(-bits.max_level(), bits.max_level()) as i16
        };
        let levels = spec.iter().flat_map(|c| [q(c.re), q(c.im)]).collect();
        Self { levels, scale, bits }
    }

    /// Reconstructs the complex spectrum.
    pub fn dequantize(&self) -> Spectrum {
        self.levels
            .chunks_exact(2)
            .map(|p| Complex32::new(p[0] as f32 * self.scale, p[1] as f32 * self.scale))
            .collect()
    }

    /// Number of complex bins.
    pub fn bins(&self) -> usize {
        self.levels.len() / 2
    }

    /// The symmetric scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Storage in bytes: levels plus the `f32` scale.
    pub fn storage_bytes(&self) -> usize {
        self.levels.len() * self.bits.bytes_per_value() + 4
    }

    /// Worst-case absolute quantization error per component (half an LSB
    /// beyond scale/2 due to clamping is impossible with symmetric
    /// scaling).
    pub fn max_error(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Quantizes `spectra[out_block][in_block]` with one symmetric scale per
/// output block row, returning the flattened interleaved levels
/// (`[out_block][in_block][2·bins]`) and the per-row scales.
fn quantize_rows(spectra: &[Vec<Spectrum>], bits: QuantBits) -> (Vec<i16>, Vec<f32>) {
    let mut levels = Vec::new();
    let mut scales = Vec::with_capacity(spectra.len());
    for row in spectra {
        let max_abs = row
            .iter()
            .flatten()
            .flat_map(|c| [c.re.abs(), c.im.abs()])
            .fold(0.0f32, f32::max);
        let scale = if max_abs > 0.0 {
            max_abs / bits.max_level()
        } else {
            1.0
        };
        let q = |v: f32| -> i16 {
            ((v / scale).round()).clamp(-bits.max_level(), bits.max_level()) as i16
        };
        for spec in row {
            for c in spec {
                levels.push(q(c.re));
                levels.push(q(c.im));
            }
        }
        scales.push(scale);
    }
    (levels, scales)
}

/// Quantizes a bias vector with one symmetric scale.
fn quantize_bias(bias: &[f32], bits: QuantBits) -> (Vec<i16>, f32) {
    let max_abs = bias.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 {
        max_abs / bits.max_level()
    } else {
        1.0
    };
    let levels = bias
        .iter()
        .map(|v| ((v / scale).round()).clamp(-bits.max_level(), bits.max_level()) as i16)
        .collect();
    (levels, scale)
}

/// Reconstructs the `f32` bias tensor — done once per construction or
/// model load, never on the forward path.
fn dequantize_bias(levels: &[i16], scale: f32) -> Tensor {
    Tensor::from_fn(&[levels.len()], |i| levels[i] as f32 * scale)
}

/// Inference-only block-circulant FC layer with fixed-point spectra,
/// served **without dequantizing the weight tensor**.
///
/// Geometry and math mirror [`SpectralDense`](crate::SpectralDense); the
/// stored `FFT(w)` coefficients are integer levels (one symmetric scale
/// per output block row), the spectral MACs run levels × `f32` input
/// spectra via [`SpectralKernel::mul_accumulate_levels`], and the block
/// scale is applied once per output block after the IFFT. The inference
/// path reuses the same [`CirculantScratch`] workspace, so steady-state
/// serving stays allocation-free.
pub struct QuantizedSpectralDense {
    in_dim: usize,
    out_dim: usize,
    block: usize,
    kb_in: usize,
    kb_out: usize,
    /// Interleaved re/im levels, `[(i·kb_in + j)·2·bins ..]` per block.
    /// Reference-counted: worker clones share one table.
    levels: Arc<Vec<i16>>,
    /// One symmetric scale per output block row (length `kb_out`).
    scales: Arc<Vec<f32>>,
    /// Quantized bias levels (`value = level · bias_scale`).
    bias_levels: Arc<Vec<i16>>,
    /// Symmetric scale for the bias vector.
    bias_scale: f32,
    /// Dequantized bias, reconstructed once (at construction or model
    /// load) — the forward pass reads plain `f32` values.
    bias: Tensor,
    bits: QuantBits,
    kernel: SpectralKernel,
    /// Per-layer FFT scratch for the inference path (never cloned).
    infer_scratch: CirculantScratch,
}

impl QuantizedSpectralDense {
    /// Quantizes a trained block-circulant matrix for deployment.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != matrix.out_dim()`.
    pub fn from_matrix(matrix: &BlockCirculantMatrix, bias: Tensor, bits: QuantBits) -> Self {
        Self::from_spectra(
            &matrix.weight_spectra(),
            matrix.in_dim(),
            matrix.out_dim(),
            matrix.block(),
            bias,
            bits,
        )
    }

    /// Quantizes precomputed weight spectra (`spectra[out_block][in_block]`,
    /// each of length `block/2 + 1`) — the path for re-quantizing an
    /// already-frozen [`SpectralDense`](crate::SpectralDense).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != out_dim` or the spectra grid does not
    /// match the geometry.
    pub fn from_spectra(
        spectra: &[Vec<Spectrum>],
        in_dim: usize,
        out_dim: usize,
        block: usize,
        bias: Tensor,
        bits: QuantBits,
    ) -> Self {
        let kb_in = in_dim.div_ceil(block);
        let kb_out = out_dim.div_ceil(block);
        assert_eq!(bias.len(), out_dim, "bias length must equal the output dimension");
        assert_eq!(spectra.len(), kb_out, "spectra rows must equal out_blocks");
        assert!(
            spectra.iter().all(|row| row.len() == kb_in),
            "spectra columns must equal in_blocks"
        );
        let (levels, scales) = quantize_rows(spectra, bits);
        let (bias_levels, bias_scale) = quantize_bias(bias.as_slice(), bits);
        let bias = dequantize_bias(&bias_levels, bias_scale);
        Self {
            in_dim,
            out_dim,
            block,
            kb_in,
            kb_out,
            levels: Arc::new(levels),
            scales: Arc::new(scales),
            bias_levels: Arc::new(bias_levels),
            bias_scale,
            bias,
            bits,
            kernel: SpectralKernel::new(block),
            infer_scratch: CirculantScratch::new(),
        }
    }

    /// Quantization width.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The (dequantized) bias vector the forward pass adds.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The bias scale (`bias = level · bias_scale`).
    pub fn bias_scale(&self) -> f32 {
        self.bias_scale
    }

    /// Per-output-block symmetric scales (length `out_blocks`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Flattened interleaved re/im levels (`[out_block][in_block][2·bins]`).
    pub fn levels(&self) -> &[i16] {
        &self.levels
    }

    /// Worst-case absolute weight reconstruction error for one output
    /// block row: half an LSB of that row's scale.
    pub fn max_error(&self, out_block: usize) -> f32 {
        self.scales[out_block] * 0.5
    }

    /// Total model bytes for this layer's weights (narrow weight + bias
    /// levels plus the `f32` scales).
    pub fn storage_bytes(&self) -> usize {
        (self.levels.len() + self.bias_levels.len()) * self.bits.bytes_per_value()
            + (self.scales.len() + 1) * 4
    }

    /// Bytes an unquantized [`SpectralDense`](crate::SpectralDense) would
    /// use for the same geometry.
    pub fn float_storage_bytes(&self) -> usize {
        self.kb_in * self.kb_out * (self.block / 2 + 1) * 2 * 4 + self.bias.len() * 4
    }

    /// Bytes the dense `f32` matrix would use.
    pub fn dense_storage_bytes(&self) -> usize {
        (self.in_dim * self.out_dim + self.out_dim) * 4
    }

    fn check_input(&self, input: &Tensor) -> Result<(), NnError> {
        if input.ndim() != 2 || input.cols() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "quantized_spectral_dense".into(),
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.in_dim,
                    input.shape()
                ),
            });
        }
        Ok(())
    }

    /// Level slice for block `(i, j)`.
    fn block_levels(&self, i: usize, j: usize) -> &[i16] {
        let bins2 = 2 * self.kernel.bins();
        let base = (i * self.kb_in + j) * bins2;
        &self.levels[base..base + bins2]
    }
}

impl Layer for QuantizedSpectralDense {
    fn type_tag(&self) -> &'static str {
        "quantized_spectral_dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.check_input(input)?;
        let b = self.block;
        let batch = input.rows();
        let mut out = Vec::with_capacity(batch * self.out_dim);
        for s in 0..batch {
            let mut padded = vec![0.0f32; self.kb_in * b];
            padded[..self.in_dim].copy_from_slice(input.row(s));
            let x_spec: Vec<Spectrum> = (0..self.kb_in)
                .map(|j| self.kernel.spectrum(&padded[j * b..(j + 1) * b]))
                .collect();
            for i in 0..self.kb_out {
                let mut acc = self.kernel.zero_accumulator();
                for (j, x_j) in x_spec.iter().enumerate() {
                    SpectralKernel::mul_accumulate_levels(&mut acc, self.block_levels(i, j), x_j);
                }
                let block_out = self.kernel.inverse(&acc);
                let scale = self.scales[i];
                let lo = i * b;
                for (k, v) in block_out.iter().enumerate() {
                    let idx = lo + k;
                    if idx < self.out_dim {
                        out.push(v * scale + self.bias.as_slice()[idx]);
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, &[batch, self.out_dim])?)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        self.check_input(input)?;
        let b = self.block;
        let bins = self.kernel.bins();
        let batch = input.rows();
        let mut out = scratch.take(&[batch, self.out_dim]);
        let sc = &mut self.infer_scratch;
        sc.padded.clear();
        sc.padded.resize(self.kb_in * b, 0.0);
        sc.x_spec.resize(self.kb_in, Spectrum::new());
        let bins2 = 2 * bins;
        let dst = out.as_mut_slice();
        for s in 0..batch {
            sc.padded[..self.in_dim].copy_from_slice(input.row(s));
            for j in 0..self.kb_in {
                self.kernel
                    .spectrum_into(&sc.padded[j * b..(j + 1) * b], &mut sc.fft, &mut sc.x_spec[j]);
            }
            for i in 0..self.kb_out {
                sc.acc.clear();
                sc.acc.resize(bins, Complex32::zero());
                for (j, x_j) in sc.x_spec.iter().enumerate() {
                    let base = (i * self.kb_in + j) * bins2;
                    SpectralKernel::mul_accumulate_levels(
                        &mut sc.acc,
                        &self.levels[base..base + bins2],
                        x_j,
                    );
                }
                self.kernel.inverse_into(&sc.acc, &mut sc.fft, &mut sc.y_block);
                let scale = self.scales[i];
                let start = i * b;
                let end = ((i + 1) * b).min(self.out_dim);
                if start < end {
                    for (k, v) in sc.y_block[..end - start].iter().enumerate() {
                        dst[s * self.out_dim + start + k] =
                            v * scale + self.bias.as_slice()[start + k];
                    }
                }
            }
        }
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            block: self.block,
            kb_in: self.kb_in,
            kb_out: self.kb_out,
            levels: Arc::clone(&self.levels),
            scales: Arc::clone(&self.scales),
            bias_levels: Arc::clone(&self.bias_levels),
            bias_scale: self.bias_scale,
            bias: self.bias.clone(),
            bits: self.bits,
            kernel: self.kernel.clone(),
            infer_scratch: CirculantScratch::new(),
        }))
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor, NnError> {
        Err(NnError::BadInput {
            layer: "quantized_spectral_dense".into(),
            message: "inference-only layer does not support backward; train with \
                      CirculantDense, freeze, then quantize"
                .into(),
        })
    }

    fn param_count(&self) -> usize {
        // Stored values: weight + bias levels, plus the scales.
        self.levels.len() + self.bias_levels.len() + self.scales.len() + 1
    }

    fn logical_param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn op_cost(&self) -> OpCost {
        // SpectralDense arithmetic plus one scale multiply per output
        // value; param reads shrink with the level width.
        let b = self.block as u64;
        let bins = (self.block / 2 + 1) as u64;
        let kb_in = self.kb_in as u64;
        let kb_out = self.kb_out as u64;
        let log_b = (64 - b.leading_zeros() as u64).max(1);
        let fft_mults = b * log_b;
        let mults = (kb_in + kb_out) * fft_mults + kb_in * kb_out * bins * 4 + kb_out * b;
        OpCost {
            mults,
            adds: mults + self.out_dim as u64,
            nonlin: 0,
            // Narrow reads: count f32-equivalent parameter traffic.
            param_reads: (self.storage_bytes() / 4).max(1) as u64,
            act_traffic: (self.in_dim + self.out_dim) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [self.in_dim, self.out_dim, self.block, self.bits.bits() as usize] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    // No f32 parameter tensors: weights *and* bias travel as narrow
    // levels through the v3 quantization header (the trait's default
    // `param_tensors`/`load_params` — empty/none — apply).

    fn quant_payload(&self) -> Option<QuantPayload> {
        // Layout: `scales = [row scales…, bias scale]`,
        // `levels = [weight levels…, bias levels…]`.
        let mut scales = (*self.scales).clone();
        scales.push(self.bias_scale);
        let mut levels = (*self.levels).clone();
        levels.extend_from_slice(&self.bias_levels);
        Some(QuantPayload {
            scheme: QUANT_SCHEME_SYMMETRIC,
            bits: self.bits.bits(),
            scales,
            levels,
        })
    }

    fn load_quant_payload(&mut self, payload: &QuantPayload) -> Result<(), NnError> {
        if payload.scheme != QUANT_SCHEME_SYMMETRIC {
            return Err(NnError::ModelFormat(format!(
                "quantized_spectral_dense: unknown scheme {}",
                payload.scheme
            )));
        }
        if payload.bits != self.bits.bits() {
            return Err(NnError::ModelFormat(format!(
                "quantized_spectral_dense: header says {} bits, config says {}",
                payload.bits,
                self.bits.bits()
            )));
        }
        let want_weight_levels = self.kb_in * self.kb_out * 2 * self.kernel.bins();
        let want_levels = want_weight_levels + self.out_dim;
        if payload.scales.len() != self.kb_out + 1 || payload.levels.len() != want_levels {
            return Err(NnError::ModelFormat(format!(
                "quantized_spectral_dense: payload sizes {}/{} do not match geometry {}/{}",
                payload.scales.len(),
                payload.levels.len(),
                self.kb_out + 1,
                want_levels
            )));
        }
        let (weight_levels, bias_levels) = payload.levels.split_at(want_weight_levels);
        let (row_scales, bias_scale) = payload.scales.split_at(self.kb_out);
        self.scales = Arc::new(row_scales.to_vec());
        self.levels = Arc::new(weight_levels.to_vec());
        self.bias_scale = bias_scale[0];
        self.bias_levels = Arc::new(bias_levels.to_vec());
        self.bias = dequantize_bias(&self.bias_levels, self.bias_scale);
        Ok(())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Reconstructs an (empty) [`QuantizedSpectralDense`] from its config
/// blob (`in_dim, out_dim, block, bits`); levels and scales arrive
/// afterwards via [`Layer::load_quant_payload`].
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn quantized_spectral_dense_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let in_dim = wire::read_u32(&mut config)? as usize;
    let out_dim = wire::read_u32(&mut config)? as usize;
    let block = wire::read_u32(&mut config)? as usize;
    let bits_raw = wire::read_u32(&mut config)?;
    let bits = QuantBits::from_bits(bits_raw).ok_or_else(|| {
        NnError::ModelFormat(format!(
            "quantized_spectral_dense: unsupported width {bits_raw} bits"
        ))
    })?;
    if block == 0 || in_dim == 0 || out_dim == 0 {
        return Err(NnError::ModelFormat(
            "quantized_spectral_dense: zero dimension in config".into(),
        ));
    }
    let kb_in = in_dim.div_ceil(block);
    let kb_out = out_dim.div_ceil(block);
    let zeros: Vec<Vec<Spectrum>> = (0..kb_out)
        .map(|_| (0..kb_in).map(|_| vec![Complex32::zero(); block / 2 + 1]).collect())
        .collect();
    Ok(Box::new(QuantizedSpectralDense::from_spectra(
        &zeros,
        in_dim,
        out_dim,
        block,
        Tensor::zeros(&[out_dim]),
        bits,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_layer::CirculantDense;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(61)
    }

    fn input(batch: usize, dim: usize) -> Tensor {
        Tensor::from_fn(&[batch, dim], |i| ((i * 7 + 2) % 19) as f32 * 0.1 - 0.9)
    }

    #[test]
    fn spectrum_quantize_roundtrip_error_bounded() {
        let spec: Spectrum = (0..33)
            .map(|k| Complex32::new((k as f32 * 0.7).sin(), (k as f32 * 0.3).cos()))
            .collect();
        for bits in [QuantBits::Eight, QuantBits::Twelve, QuantBits::Sixteen] {
            let q = QuantizedSpectrum::quantize(&spec, bits);
            assert_eq!(q.bins(), 33);
            let back = q.dequantize();
            for (a, b) in back.iter().zip(&spec) {
                assert!(
                    (a.re - b.re).abs() <= q.max_error() + 1e-6
                        && (a.im - b.im).abs() <= q.max_error() + 1e-6,
                    "{bits}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn more_bits_is_tighter() {
        let spec: Spectrum = (0..16)
            .map(|k| Complex32::new(k as f32 * 0.21 - 1.0, (k as f32).sqrt()))
            .collect();
        let q8 = QuantizedSpectrum::quantize(&spec, QuantBits::Eight);
        let q12 = QuantizedSpectrum::quantize(&spec, QuantBits::Twelve);
        let q16 = QuantizedSpectrum::quantize(&spec, QuantBits::Sixteen);
        assert!(q16.max_error() < q12.max_error());
        assert!(q12.max_error() < q8.max_error());
        assert!(q8.storage_bytes() < q16.storage_bytes());
    }

    #[test]
    fn zero_spectrum_quantizes_cleanly() {
        let spec = vec![Complex32::zero(); 8];
        let q = QuantizedSpectrum::quantize(&spec, QuantBits::Eight);
        for v in q.dequantize() {
            assert_eq!(v, Complex32::zero());
        }
    }

    #[test]
    fn quantized_layer_tracks_float_layer() {
        let mut float_layer = CirculantDense::new(24, 16, 8, &mut rng()).unwrap();
        let x = input(3, 24);
        let y_float = float_layer.forward(&x).unwrap();

        for (bits, tol) in [
            (QuantBits::Sixteen, 2e-3f32),
            (QuantBits::Twelve, 2e-2),
            (QuantBits::Eight, 0.25),
        ] {
            let mut q = QuantizedSpectralDense::from_matrix(
                float_layer.matrix(),
                float_layer.bias().clone(),
                bits,
            );
            let y_q = q.forward(&x).unwrap();
            let scale = 1.0 + y_float.max_abs();
            for (a, b) in y_q.as_slice().iter().zip(y_float.as_slice()) {
                assert!((a - b).abs() < tol * scale, "{bits}: {a} vs {b}");
            }
        }
    }

    /// The dequant-free kernel must equal the explicit-dequantization
    /// reference exactly: accumulate dequantized `f32` spectra the
    /// SpectralDense way and compare against the level-MAC + one scale
    /// per output block path. (Same additions in the same order, scale
    /// factored out of the j-sum — results agree to f32 rounding.)
    #[test]
    fn kernel_matches_explicit_dequantization() {
        let float_layer = CirculantDense::new(20, 12, 4, &mut rng()).unwrap();
        let mut q = QuantizedSpectralDense::from_matrix(
            float_layer.matrix(),
            float_layer.bias().clone(),
            QuantBits::Eight,
        );
        let x = input(2, 20);
        let y_kernel = q.forward(&x).unwrap();

        // Reference: dequantize each block spectrum (level · row scale),
        // then run the plain f32 spectral path.
        let kernel = SpectralKernel::new(q.block());
        let bins = kernel.bins();
        let b = q.block();
        let (kb_in, kb_out) = (q.in_dim().div_ceil(b), q.out_dim().div_ceil(b));
        let mut y_ref = Vec::new();
        for s in 0..x.rows() {
            let mut padded = vec![0.0f32; kb_in * b];
            padded[..q.in_dim()].copy_from_slice(x.row(s));
            let x_spec: Vec<Spectrum> = (0..kb_in)
                .map(|j| kernel.spectrum(&padded[j * b..(j + 1) * b]))
                .collect();
            for i in 0..kb_out {
                let scale = q.scales()[i];
                let mut acc = kernel.zero_accumulator();
                for (j, x_j) in x_spec.iter().enumerate() {
                    let base = (i * kb_in + j) * 2 * bins;
                    let w: Spectrum = (0..bins)
                        .map(|k| {
                            Complex32::new(
                                q.levels()[base + 2 * k] as f32,
                                q.levels()[base + 2 * k + 1] as f32,
                            )
                        })
                        .collect();
                    SpectralKernel::mul_accumulate(&mut acc, &w, x_j);
                }
                for (k, v) in kernel.inverse(&acc).iter().enumerate() {
                    let idx = i * b + k;
                    if idx < q.out_dim() {
                        y_ref.push(v * scale + q.bias().as_slice()[idx]);
                    }
                }
            }
        }
        assert_eq!(y_kernel.as_slice(), &y_ref[..], "kernel == explicit dequant");
    }

    #[test]
    fn forward_infer_is_bit_identical_to_forward() {
        let float_layer = CirculantDense::new(24, 16, 8, &mut rng()).unwrap();
        let mut q = QuantizedSpectralDense::from_matrix(
            float_layer.matrix(),
            float_layer.bias().clone(),
            QuantBits::Sixteen,
        );
        let x = input(5, 24);
        let y = q.forward(&x).unwrap();
        let mut scratch = Scratch::new();
        let y_infer = q.forward_infer(&x, &mut scratch).unwrap();
        assert_eq!(y.as_slice(), y_infer.as_slice());

        // The clone shares the level table and answers identically.
        let mut clone = q.clone_layer().unwrap();
        let y_clone = clone.forward_infer(&x, &mut scratch).unwrap();
        assert_eq!(y.as_slice(), y_clone.as_slice());
    }

    #[test]
    fn storage_hierarchy() {
        let m = BlockCirculantMatrix::zeros(256, 128, 64).unwrap();
        let q8 =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Eight);
        let q16 =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Sixteen);
        assert!(q8.storage_bytes() < q16.storage_bytes());
        assert!(q16.storage_bytes() < q16.float_storage_bytes());
        assert!(q16.float_storage_bytes() < q16.dense_storage_bytes() / 10);
    }

    #[test]
    fn inference_only_and_validation() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let mut q =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[4]), QuantBits::Eight);
        assert!(q.backward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(q.forward(&Tensor::zeros(&[1, 7])).is_err());
        assert!(q.parameters().is_empty());
        assert_eq!(q.bits(), QuantBits::Eight);
        assert_eq!(q.type_tag(), "quantized_spectral_dense");
        assert!(q.as_any().is_some());
    }

    #[test]
    fn op_cost_param_reads_shrink_with_bits() {
        let m = BlockCirculantMatrix::zeros(128, 128, 64).unwrap();
        let q8 = QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Eight);
        let q16 =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[128]), QuantBits::Sixteen);
        assert!(q8.op_cost().param_reads < q16.op_cost().param_reads);
    }

    #[test]
    fn wire_roundtrip_is_bit_identical_and_version_3() {
        let float_layer = CirculantDense::new(24, 16, 8, &mut rng()).unwrap();
        let q = QuantizedSpectralDense::from_matrix(
            float_layer.matrix(),
            float_layer.bias().clone(),
            QuantBits::Twelve,
        );
        let mut net = ffdl_nn::Network::new();
        net.push(q);
        let mut buf = Vec::new();
        ffdl_nn::save_network(&net, &mut buf).unwrap();
        assert_eq!(buf[4], 3, "quantized model must be version 3");

        let mut loaded = ffdl_nn::load_network(&buf[..], &crate::full_registry()).unwrap();
        let x = input(2, 24);
        let y1 = net.forward(&x).unwrap();
        let y2 = loaded.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice(), "levels/scales are exact on the wire");
    }

    #[test]
    fn load_quant_payload_validates() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let mut q =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[4]), QuantBits::Sixteen);
        let good = q.quant_payload().unwrap();

        let mut bad = good.clone();
        bad.scheme = 7;
        assert!(q.load_quant_payload(&bad).is_err());
        let mut bad = good.clone();
        bad.bits = 8;
        assert!(q.load_quant_payload(&bad).is_err());
        let mut bad = good.clone();
        bad.scales.push(1.0);
        assert!(q.load_quant_payload(&bad).is_err());
        let mut bad = good.clone();
        bad.levels.pop();
        assert!(q.load_quant_payload(&bad).is_err());
        assert!(q.load_quant_payload(&good).is_ok());
    }

    #[test]
    fn config_rejects_bad_bits() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let q =
            QuantizedSpectralDense::from_matrix(&m, Tensor::zeros(&[4]), QuantBits::Sixteen);
        let mut config = q.config_bytes();
        // Overwrite the bits field (4th u32) with an unsupported width.
        config[12..16].copy_from_slice(&10u32.to_le_bytes());
        assert!(quantized_spectral_dense_from_config(&config).is_err());
        assert!(quantized_spectral_dense_from_config(&q.config_bytes()).is_ok());
    }
}
