//! Inference-only spectral layer: stores `FFT(wᵢ)` instead of the weight
//! matrix, exactly as §IV-A prescribes for deployment ("we can simply keep
//! the FFT result FFT(wᵢ) ... instead of the whole matrix W").
//!
//! This is what the deployment pipeline ships to the embedded target: the
//! forward pass skips the weight-side FFTs entirely, leaving one FFT per
//! input block, the spectral MACs, and one IFFT per output block.

use crate::circulant::{BlockCirculantMatrix, CirculantScratch};
use crate::spectral::{SpectralKernel, Spectrum};
use ffdl_fft::Complex32;
use ffdl_nn::{wire, Layer, NnError, OpCost, Scratch};
use ffdl_tensor::Tensor;
use std::sync::Arc;

/// Frozen block-circulant FC layer holding precomputed weight spectra.
///
/// Created from a trained [`CirculantDense`](crate::CirculantDense) (via
/// its matrix) with [`SpectralDense::from_matrix`]. Training is not
/// supported: `backward` returns an error, and the layer exposes no
/// parameters to the optimizer.
pub struct SpectralDense {
    in_dim: usize,
    out_dim: usize,
    block: usize,
    kb_in: usize,
    kb_out: usize,
    /// `spectra[out_block][in_block]`, each of length `b/2 + 1`.
    /// Reference-counted: worker clones share one table.
    spectra: Arc<Vec<Vec<Spectrum>>>,
    bias: Tensor,
    kernel: SpectralKernel,
    /// Per-layer FFT scratch for the inference path (never cloned).
    infer_scratch: CirculantScratch,
}

impl SpectralDense {
    /// Freezes a block-circulant matrix and bias into spectral form.
    pub fn from_matrix(matrix: &BlockCirculantMatrix, bias: Tensor) -> Self {
        assert_eq!(
            bias.len(),
            matrix.out_dim(),
            "bias length must equal the output dimension"
        );
        Self {
            in_dim: matrix.in_dim(),
            out_dim: matrix.out_dim(),
            block: matrix.block(),
            kb_in: matrix.in_blocks(),
            kb_out: matrix.out_blocks(),
            spectra: matrix.shared_weight_spectra(),
            bias,
            kernel: SpectralKernel::new(matrix.block()),
            infer_scratch: CirculantScratch::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Stored spectral coefficients (complex values across all blocks).
    pub fn stored_complex_values(&self) -> usize {
        self.kb_in * self.kb_out * (self.block / 2 + 1)
    }

    /// The frozen weight spectra, `spectra[out_block][in_block]` — what
    /// the quantizer consumes when re-quantizing an already-frozen layer.
    pub fn spectra(&self) -> &[Vec<Spectrum>] {
        &self.spectra
    }
}

impl Layer for SpectralDense {
    fn type_tag(&self) -> &'static str {
        "spectral_dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.ndim() != 2 || input.cols() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "spectral_dense".into(),
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.in_dim,
                    input.shape()
                ),
            });
        }
        let b = self.block;
        let batch = input.rows();
        let mut out = Vec::with_capacity(batch * self.out_dim);
        for s in 0..batch {
            let mut padded = vec![0.0f32; self.kb_in * b];
            padded[..self.in_dim].copy_from_slice(input.row(s));
            let x_spec: Vec<Spectrum> = (0..self.kb_in)
                .map(|j| self.kernel.spectrum(&padded[j * b..(j + 1) * b]))
                .collect();
            let mut y_padded = vec![0.0f32; self.kb_out * b];
            for i in 0..self.kb_out {
                let mut acc = self.kernel.zero_accumulator();
                for (w_spec, x_j) in self.spectra[i].iter().zip(&x_spec) {
                    SpectralKernel::mul_accumulate(&mut acc, w_spec, x_j);
                }
                y_padded[i * b..(i + 1) * b].copy_from_slice(&self.kernel.inverse(&acc));
            }
            for (k, v) in y_padded[..self.out_dim].iter().enumerate() {
                out.push(v + self.bias.as_slice()[k]);
            }
        }
        Ok(Tensor::from_vec(out, &[batch, self.out_dim])?)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        if input.ndim() != 2 || input.cols() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "spectral_dense".into(),
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.in_dim,
                    input.shape()
                ),
            });
        }
        let b = self.block;
        let bins = self.kernel.bins();
        let batch = input.rows();
        let mut out = scratch.take(&[batch, self.out_dim]);
        let sc = &mut self.infer_scratch;
        sc.padded.clear();
        sc.padded.resize(self.kb_in * b, 0.0);
        sc.x_spec.resize(self.kb_in, Spectrum::new());
        let dst = out.as_mut_slice();
        for s in 0..batch {
            sc.padded[..self.in_dim].copy_from_slice(input.row(s));
            for j in 0..self.kb_in {
                self.kernel
                    .spectrum_into(&sc.padded[j * b..(j + 1) * b], &mut sc.fft, &mut sc.x_spec[j]);
            }
            for i in 0..self.kb_out {
                sc.acc.clear();
                sc.acc.resize(bins, Complex32::zero());
                for (w_spec, x_j) in self.spectra[i].iter().zip(&sc.x_spec) {
                    SpectralKernel::mul_accumulate(&mut sc.acc, w_spec, x_j);
                }
                self.kernel.inverse_into(&sc.acc, &mut sc.fft, &mut sc.y_block);
                let start = i * b;
                let end = ((i + 1) * b).min(self.out_dim);
                if start < end {
                    for (k, v) in sc.y_block[..end - start].iter().enumerate() {
                        dst[s * self.out_dim + start + k] =
                            v + self.bias.as_slice()[start + k];
                    }
                }
            }
        }
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            block: self.block,
            kb_in: self.kb_in,
            kb_out: self.kb_out,
            spectra: Arc::clone(&self.spectra),
            bias: self.bias.clone(),
            kernel: self.kernel.clone(),
            infer_scratch: CirculantScratch::new(),
        }))
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor, NnError> {
        Err(NnError::BadInput {
            layer: "spectral_dense".into(),
            message: "inference-only layer does not support backward; train with \
                      CirculantDense and freeze afterwards"
                .into(),
        })
    }

    fn param_count(&self) -> usize {
        // Two reals per stored complex bin, plus bias.
        2 * self.stored_complex_values() + self.out_dim
    }

    fn logical_param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn op_cost(&self) -> OpCost {
        // No weight-side FFTs: input FFTs + spectral MACs + output IFFTs.
        let b = self.block as u64;
        let bins = (self.block / 2 + 1) as u64;
        let kb_in = self.kb_in as u64;
        let kb_out = self.kb_out as u64;
        let log_b = (64 - b.leading_zeros() as u64).max(1);
        let fft_mults = b * log_b;
        let mults = (kb_in + kb_out) * fft_mults + kb_in * kb_out * bins * 4;
        OpCost {
            mults,
            adds: mults + self.out_dim as u64,
            nonlin: 0,
            param_reads: self.param_count() as u64,
            act_traffic: (self.in_dim + self.out_dim) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [self.in_dim, self.out_dim, self.block] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        // Serialized lazily through interleaved re/im; see spectra_tensor.
        // The bias is the only plain tensor; spectra are encoded in
        // `load_params`/`spectra_tensor` order as one tensor.
        Vec::new()
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2 {
            return Err(NnError::ModelFormat(
                "spectral_dense expects [spectra, bias]".into(),
            ));
        }
        let bins = self.block / 2 + 1;
        if params[0].shape() != [self.kb_out, self.kb_in, 2 * bins]
            || params[1].shape() != [self.out_dim]
        {
            return Err(NnError::ModelFormat(
                "spectral_dense parameter shapes do not match".into(),
            ));
        }
        let flat = params[0].as_slice();
        let mut spectra = Vec::with_capacity(self.kb_out);
        for i in 0..self.kb_out {
            let mut row = Vec::with_capacity(self.kb_in);
            for j in 0..self.kb_in {
                let base = (i * self.kb_in + j) * 2 * bins;
                let spec: Spectrum = (0..bins)
                    .map(|k| ffdl_fft::Complex32::new(flat[base + 2 * k], flat[base + 2 * k + 1]))
                    .collect();
                row.push(spec);
            }
            spectra.push(row);
        }
        self.spectra = Arc::new(spectra);
        self.bias = params[1].clone();
        Ok(())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl SpectralDense {
    /// Serializes the spectra to a `[out_blocks, in_blocks, 2·bins]`
    /// tensor (re/im interleaved) — the on-disk form of "store FFT(w)".
    pub fn spectra_tensor(&self) -> Tensor {
        let bins = self.block / 2 + 1;
        let mut data = Vec::with_capacity(self.kb_out * self.kb_in * 2 * bins);
        for row in self.spectra.iter() {
            for spec in row {
                for c in spec {
                    data.push(c.re);
                    data.push(c.im);
                }
            }
        }
        Tensor::from_vec(data, &[self.kb_out, self.kb_in, 2 * bins])
            .expect("size by construction")
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

/// Reconstructs an (empty) [`SpectralDense`] from its config blob.
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn spectral_dense_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let in_dim = wire::read_u32(&mut config)? as usize;
    let out_dim = wire::read_u32(&mut config)? as usize;
    let block = wire::read_u32(&mut config)? as usize;
    let matrix = BlockCirculantMatrix::zeros(in_dim, out_dim, block)
        .map_err(|e| NnError::ModelFormat(e.to_string()))?;
    Ok(Box::new(SpectralDense::from_matrix(
        &matrix,
        Tensor::zeros(&[out_dim]),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_layer::CirculantDense;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(23)
    }

    fn input(batch: usize, dim: usize) -> Tensor {
        Tensor::from_fn(&[batch, dim], |i| ((i * 13 + 1) % 29) as f32 * 0.05 - 0.7)
    }

    #[test]
    fn frozen_layer_matches_training_layer() {
        let mut trained = CirculantDense::new(12, 8, 4, &mut rng()).unwrap();
        let mut frozen = SpectralDense::from_matrix(trained.matrix(), trained.bias().clone());
        let x = input(3, 12);
        let y_train = trained.forward(&x).unwrap();
        let y_frozen = frozen.forward(&x).unwrap();
        for (a, v) in y_train.as_slice().iter().zip(y_frozen.as_slice()) {
            assert!((a - v).abs() < 1e-4, "{a} vs {v}");
        }
    }

    #[test]
    fn backward_is_rejected() {
        let m = BlockCirculantMatrix::zeros(4, 4, 2).unwrap();
        let mut layer = SpectralDense::from_matrix(&m, Tensor::zeros(&[4]));
        assert!(layer.backward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(layer.parameters().is_empty());
    }

    #[test]
    fn storage_accounting() {
        let m = BlockCirculantMatrix::zeros(128, 128, 64).unwrap();
        let layer = SpectralDense::from_matrix(&m, Tensor::zeros(&[128]));
        assert_eq!(layer.stored_complex_values(), 2 * 2 * 33);
        // Still dramatically below the dense 128·128.
        assert!(layer.param_count() < layer.logical_param_count() / 10);
    }

    #[test]
    fn serialization_roundtrip() {
        let m = BlockCirculantMatrix::random(10, 6, 4, &mut rng()).unwrap();
        let mut layer = SpectralDense::from_matrix(&m, Tensor::from_fn(&[6], |i| i as f32 * 0.1));
        let mut rebuilt = spectral_dense_from_config(&layer.config_bytes()).unwrap();
        rebuilt
            .load_params(&[layer.spectra_tensor(), layer.bias().clone()])
            .unwrap();
        let x = input(2, 10);
        let y1 = layer.forward(&x).unwrap();
        let y2 = rebuilt.forward(&x).unwrap();
        for (a, v) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - v).abs() < 1e-5);
        }
    }

    #[test]
    fn load_params_validates() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let mut layer = SpectralDense::from_matrix(&m, Tensor::zeros(&[4]));
        assert!(layer.load_params(&[]).is_err());
        assert!(layer
            .load_params(&[Tensor::zeros(&[1, 1, 1]), Tensor::zeros(&[4])])
            .is_err());
    }

    #[test]
    fn forward_validates_input() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let mut layer = SpectralDense::from_matrix(&m, Tensor::zeros(&[4]));
        assert!(layer.forward(&Tensor::zeros(&[2, 7])).is_err());
    }

    #[test]
    fn spectral_op_cost_cheaper_than_training_layer() {
        let mut r = rng();
        let trained = CirculantDense::new(512, 512, 64, &mut r).unwrap();
        let frozen = SpectralDense::from_matrix(trained.matrix(), trained.bias().clone());
        assert!(frozen.op_cost().mults < trained.op_cost().mults);
    }
}
