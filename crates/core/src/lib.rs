//! # ffdl-core — block-circulant FFT-based DNN layers
//!
//! The primary contribution of *"FFT-Based Deep Learning Deployment in
//! Embedded Systems"* (Lin et al., DATE 2018), §IV: weight matrices are
//! constrained to be **block-circulant**, so storage drops from `O(n²)`
//! to `O(n)` and every matrix–vector product becomes the
//! *"FFT → component-wise multiplication → IFFT"* kernel, `O(n log n)` —
//! simultaneous compression and acceleration, for both inference
//! (Algorithm 1) and training (Algorithm 2).
//!
//! - [`BlockCirculantMatrix`] — the structured-matrix algebra: FFT-based
//!   batched products, gradients, dense expansion, and least-squares
//!   projection of a pretrained dense matrix onto the circulant structure.
//! - [`CirculantDense`] — the FC layer (§IV-A), a drop-in replacement for
//!   `ffdl_nn::Dense` implementing the `Layer` trait.
//! - [`CirculantConv2d`] — the CONV layer (§IV-B, Eqn. 6) via the Fig. 3
//!   im2col lowering.
//! - [`SpectralDense`] — inference-only frozen layer that stores
//!   `FFT(wᵢ)` instead of weights, as the paper ships to devices.
//! - [`QuantizedSpectralDense`] — the same frozen layer with the spectra
//!   in narrow fixed point (8/12/16 bits, one scale per output block),
//!   served without dequantizing the weight tensor.
//! - [`CirculantGru`] — block-circulant recurrent cell (the E-RNN
//!   direction): six circulant matrices per step, stateful streaming
//!   serving via `ffdl-stream`.
//! - [`register_circulant_layers`] — plugs the above into the
//!   `ffdl_nn::LayerRegistry` model format.
//!
//! # Examples
//!
//! Compression accounting for the paper's MNIST Arch. 1 hidden layer:
//!
//! ```
//! use ffdl_core::CirculantDense;
//! use ffdl_rng::SeedableRng;
//!
//! let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(0);
//! let layer = CirculantDense::new(256, 128, 64, &mut rng)?;
//! // 256·128 = 32768 dense weights stored as 4·2 blocks of 64 values.
//! assert_eq!(layer.matrix().param_count(), 512);
//! assert_eq!(layer.matrix().compression_ratio(), 64.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circulant;
mod conv_layer;
mod dense_layer;
mod error;
mod fft_conv;
mod inference;
mod quant;
mod recurrent;
mod spectral;

pub use circulant::{BlockCirculantMatrix, CirculantScratch, ForwardCache};
pub use conv_layer::{circulant_conv2d_from_config, CirculantConv2d};
pub use dense_layer::{circulant_dense_from_config, CirculantDense};
pub use error::CirculantError;
pub use fft_conv::{fft_conv2d_from_config, FftConv2d};
pub use inference::{spectral_dense_from_config, SpectralDense};
pub use quant::{
    quantized_spectral_dense_from_config, QuantBits, QuantizedSpectralDense, QuantizedSpectrum,
};
pub use recurrent::{circulant_gru_from_config, CirculantGru, GruScratch};
pub use spectral::{SpectralKernel, Spectrum};

use ffdl_nn::LayerRegistry;

/// Registers the block-circulant layer types (`circulant_dense`,
/// `circulant_conv2d`, `spectral_dense`, `quantized_spectral_dense`,
/// `circulant_gru`) with a model-format registry.
///
/// # Examples
///
/// ```
/// use ffdl_nn::LayerRegistry;
///
/// let mut registry = LayerRegistry::with_builtin_layers();
/// ffdl_core::register_circulant_layers(&mut registry);
/// assert!(registry.builder("circulant_dense").is_some());
/// ```
pub fn register_circulant_layers(registry: &mut LayerRegistry) {
    registry.register("circulant_dense", circulant_dense_from_config);
    registry.register("circulant_conv2d", circulant_conv2d_from_config);
    registry.register("spectral_dense", spectral_dense_from_config);
    registry.register("fft_conv2d", fft_conv2d_from_config);
    registry.register("quantized_spectral_dense", quantized_spectral_dense_from_config);
    registry.register("circulant_gru", circulant_gru_from_config);
}

/// A registry with both the built-in `ffdl-nn` layers and the circulant
/// layers registered — the one-stop loader for this project's models.
pub fn full_registry() -> LayerRegistry {
    let mut r = LayerRegistry::with_builtin_layers();
    register_circulant_layers(&mut r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_registry_has_all_tags() {
        let r = full_registry();
        for tag in [
            "dense",
            "conv2d",
            "relu",
            "softmax",
            "flatten",
            "maxpool2d",
            "circulant_dense",
            "circulant_conv2d",
            "spectral_dense",
            "fft_conv2d",
            "quantized_spectral_dense",
            "circulant_gru",
        ] {
            assert!(r.builder(tag).is_some(), "missing {tag}");
        }
    }
}
