//! Block-circulant matrices and their FFT-based linear algebra — the
//! mathematical object at the heart of the paper (§IV).
//!
//! A logical `in_dim × out_dim` matrix is represented by a grid of
//! `b × b` circulant blocks, each defined by a length-`b` vector; storage
//! drops from `O(m·n)` to `O(m·n / b)` and every product runs through the
//! "FFT → component-wise multiplication → IFFT" kernel in `O(n log n)`.
//!
//! Conventions (documented in DESIGN.md §3): a circulant block `C` defined
//! by `w` acts as `C·x = w ⊛ x` (circular convolution). In the row-vector
//! batch convention used by the layers (`y = x·W`), the equivalent dense
//! matrix has `W[j·b + q][i·b + p] = w_ij[(p − q) mod b]`, where `i`
//! indexes output blocks and `j` input blocks. Dimensions that are not
//! multiples of `b` are zero-padded, as the paper's footnote prescribes.

use crate::error::CirculantError;
use crate::spectral::{SpectralKernel, Spectrum};
use ffdl_fft::Complex32;
use ffdl_tensor::{Init, Tensor};
use ffdl_rng::Rng;
use std::sync::{Arc, OnceLock};

/// Cached per-sample input spectra from a forward pass, consumed by the
/// backward pass (Algorithm 2 reuses `FFT(x)`).
pub struct ForwardCache {
    /// `input_spectra[sample][input_block]`.
    input_spectra: Vec<Vec<Spectrum>>,
}

impl ForwardCache {
    /// Number of cached samples.
    pub fn batch(&self) -> usize {
        self.input_spectra.len()
    }
}

/// A logical `in_dim × out_dim` matrix stored as a grid of circulant
/// blocks (row-vector convention: `y = x·W`).
///
/// # Examples
///
/// ```
/// use ffdl_core::BlockCirculantMatrix;
/// use ffdl_rng::SeedableRng;
///
/// let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(0);
/// let m = BlockCirculantMatrix::random(8, 8, 4, &mut rng)?;
/// assert_eq!(m.param_count(), 4 * 4); // (8/4)·(8/4) blocks × 4 values
/// assert_eq!(m.logical_param_count(), 64);
/// assert_eq!(m.compression_ratio(), 4.0);
/// # Ok::<(), ffdl_core::CirculantError>(())
/// ```
#[derive(Clone)]
pub struct BlockCirculantMatrix {
    in_dim: usize,
    out_dim: usize,
    block: usize,
    kb_in: usize,
    kb_out: usize,
    /// Defining vectors, shape `[kb_out, kb_in, block]`.
    weights: Tensor,
    kernel: SpectralKernel,
    /// Lazily computed weight spectra, shared across clones (an Arc
    /// pointer bump) and invalidated whenever the weights are touched
    /// through [`BlockCirculantMatrix::weights_mut`].
    spectra_cache: OnceLock<Arc<Vec<Vec<Spectrum>>>>,
}

/// Reusable buffers for [`BlockCirculantMatrix::forward_batch_infer`] (and
/// [`SpectralDense`](crate::SpectralDense)'s inference path): one FFT
/// packing intermediate, per-input-block spectra, the spectral
/// accumulator, one inverse-transform output block, and the zero-padded
/// input row. After warmup, steady-state inference reuses all of them
/// without touching the heap.
#[derive(Default)]
pub struct CirculantScratch {
    /// Packing intermediate for the real FFT.
    pub(crate) fft: Vec<Complex32>,
    /// Per-input-block spectra of the current sample.
    pub(crate) x_spec: Vec<Spectrum>,
    /// Frequency-domain accumulator for one output block.
    pub(crate) acc: Spectrum,
    /// Time-domain output block.
    pub(crate) y_block: Vec<f32>,
    /// Zero-padded input row (`in_blocks · block` long).
    pub(crate) padded: Vec<f32>,
}

impl CirculantScratch {
    /// Creates an empty scratch set; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockCirculantMatrix {
    /// Creates a zero matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::ZeroDimension`] when any size is zero.
    pub fn zeros(in_dim: usize, out_dim: usize, block: usize) -> Result<Self, CirculantError> {
        Self::validate(in_dim, out_dim, block)?;
        let kb_in = in_dim.div_ceil(block);
        let kb_out = out_dim.div_ceil(block);
        Ok(Self {
            in_dim,
            out_dim,
            block,
            kb_in,
            kb_out,
            weights: Tensor::zeros(&[kb_out, kb_in, block]),
            kernel: SpectralKernel::new(block),
            spectra_cache: OnceLock::new(),
        })
    }

    /// Creates a matrix with Xavier-scaled random defining vectors.
    ///
    /// The fan used for scaling is the *logical* (padded) fan, so the
    /// expanded dense equivalent has the variance Xavier prescribes.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::ZeroDimension`] when any size is zero.
    pub fn random<R: Rng>(
        in_dim: usize,
        out_dim: usize,
        block: usize,
        rng: &mut R,
    ) -> Result<Self, CirculantError> {
        let mut m = Self::zeros(in_dim, out_dim, block)?;
        m.weights = Init::XavierUniform.sample(
            &[m.kb_out, m.kb_in, block],
            m.kb_in * block,
            m.kb_out * block,
            rng,
        );
        Ok(m)
    }

    /// Creates a matrix from explicit defining vectors of shape
    /// `[out_blocks, in_blocks, block]`.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError`] variants on inconsistent geometry.
    pub fn from_weights(
        in_dim: usize,
        out_dim: usize,
        block: usize,
        weights: Tensor,
    ) -> Result<Self, CirculantError> {
        Self::validate(in_dim, out_dim, block)?;
        let kb_in = in_dim.div_ceil(block);
        let kb_out = out_dim.div_ceil(block);
        if weights.shape() != [kb_out, kb_in, block] {
            return Err(CirculantError::GridMismatch {
                message: format!(
                    "weights shape {:?}, expected [{kb_out}, {kb_in}, {block}]",
                    weights.shape()
                ),
            });
        }
        Ok(Self {
            in_dim,
            out_dim,
            block,
            kb_in,
            kb_out,
            weights,
            kernel: SpectralKernel::new(block),
            spectra_cache: OnceLock::new(),
        })
    }

    fn validate(in_dim: usize, out_dim: usize, block: usize) -> Result<(), CirculantError> {
        if in_dim == 0 {
            return Err(CirculantError::ZeroDimension("input dimension"));
        }
        if out_dim == 0 {
            return Err(CirculantError::ZeroDimension("output dimension"));
        }
        if block == 0 {
            return Err(CirculantError::ZeroDimension("block size"));
        }
        Ok(())
    }

    /// Logical input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Logical output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Block size `b`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of input blocks (`⌈in/b⌉`).
    pub fn in_blocks(&self) -> usize {
        self.kb_in
    }

    /// Number of output blocks (`⌈out/b⌉`).
    pub fn out_blocks(&self) -> usize {
        self.kb_out
    }

    /// The defining vectors, shape `[out_blocks, in_blocks, block]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable defining vectors (the optimizer's handle).
    ///
    /// Taking this handle invalidates the cached weight spectra: the next
    /// product recomputes them. Clones holding the previous `Arc` keep
    /// using the old spectra — weights are immutable from their
    /// perspective.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        self.spectra_cache = OnceLock::new();
        &mut self.weights
    }

    /// The defining vector of block `(out_block, in_block)`.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    pub fn block_vector(&self, out_block: usize, in_block: usize) -> &[f32] {
        assert!(out_block < self.kb_out && in_block < self.kb_in);
        let start = (out_block * self.kb_in + in_block) * self.block;
        &self.weights.as_slice()[start..start + self.block]
    }

    /// Stored parameter count: `out_blocks · in_blocks · b`.
    pub fn param_count(&self) -> usize {
        self.kb_out * self.kb_in * self.block
    }

    /// Parameters of the equivalent dense matrix: `in_dim · out_dim`.
    pub fn logical_param_count(&self) -> usize {
        self.in_dim * self.out_dim
    }

    /// Storage compression `logical / stored` (≈ `b` when dimensions
    /// divide evenly).
    pub fn compression_ratio(&self) -> f32 {
        self.logical_param_count() as f32 / self.param_count() as f32
    }

    /// Precomputed weight spectra, indexed `[out_block][in_block]` — the
    /// quantity the paper stores for inference instead of `W`.
    pub fn weight_spectra(&self) -> Vec<Vec<Spectrum>> {
        (0..self.kb_out)
            .map(|i| {
                (0..self.kb_in)
                    .map(|j| self.kernel.spectrum(self.block_vector(i, j)))
                    .collect()
            })
            .collect()
    }

    /// Cached, reference-counted weight spectra. Computed on first use
    /// and shared by every clone until [`Self::weights_mut`] invalidates
    /// it, so steady-state products never re-transform the weights.
    pub fn shared_weight_spectra(&self) -> Arc<Vec<Vec<Spectrum>>> {
        Arc::clone(
            self.spectra_cache
                .get_or_init(|| Arc::new(self.weight_spectra())),
        )
    }

    /// Splits (and zero-pads) one padded row-sample into per-block spectra.
    fn input_spectra_of(&self, x: &[f32]) -> Vec<Spectrum> {
        let b = self.block;
        let mut padded = vec![0.0f32; self.kb_in * b];
        padded[..x.len()].copy_from_slice(x);
        (0..self.kb_in)
            .map(|j| self.kernel.spectrum(&padded[j * b..(j + 1) * b]))
            .collect()
    }

    /// Batched product `Y = X·W` through the FFT kernel (Algorithm 1,
    /// generalized to a block grid), returning the output and the cache
    /// the backward pass reuses.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::GridMismatch`] when `x` is not
    /// `[batch, in_dim]`.
    pub fn forward_batch(&self, x: &Tensor) -> Result<(Tensor, ForwardCache), CirculantError> {
        if x.ndim() != 2 || x.cols() != self.in_dim {
            return Err(CirculantError::GridMismatch {
                message: format!(
                    "input shape {:?}, expected [batch, {}]",
                    x.shape(),
                    self.in_dim
                ),
            });
        }
        let batch = x.rows();
        let b = self.block;
        let w_spec = self.shared_weight_spectra();
        let mut out = Vec::with_capacity(batch * self.out_dim);
        let mut cache = Vec::with_capacity(batch);

        for s in 0..batch {
            let x_spec = self.input_spectra_of(x.row(s));
            let mut y_padded = vec![0.0f32; self.kb_out * b];
            for i in 0..self.kb_out {
                let mut acc = self.kernel.zero_accumulator();
                for j in 0..self.kb_in {
                    SpectralKernel::mul_accumulate(&mut acc, &w_spec[i][j], &x_spec[j]);
                }
                let y_block = self.kernel.inverse(&acc);
                y_padded[i * b..(i + 1) * b].copy_from_slice(&y_block);
            }
            out.extend_from_slice(&y_padded[..self.out_dim]);
            cache.push(x_spec);
        }
        let out = Tensor::from_vec(out, &[batch, self.out_dim]).expect("size by construction");
        Ok((
            out,
            ForwardCache {
                input_spectra: cache,
            },
        ))
    }

    /// Inference-only batched product `Y = X·W` writing into `out`: no
    /// backward cache is built, the cached weight spectra are reused, and
    /// every intermediate lives in `scratch`. After a warmup call,
    /// steady-state invocations perform zero heap allocations for
    /// power-of-two blocks (Bluestein block sizes still allocate inside
    /// the planned transform).
    ///
    /// Bit-identical to [`Self::forward_batch`]: the arithmetic and its
    /// order are unchanged, only the buffer ownership differs.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::GridMismatch`] when `x` is not
    /// `[batch, in_dim]`; `out` is reshaped only on success paths.
    pub fn forward_batch_infer(
        &self,
        x: &Tensor,
        scratch: &mut CirculantScratch,
        out: &mut Tensor,
    ) -> Result<(), CirculantError> {
        if x.ndim() != 2 || x.cols() != self.in_dim {
            return Err(CirculantError::GridMismatch {
                message: format!(
                    "input shape {:?}, expected [batch, {}]",
                    x.shape(),
                    self.in_dim
                ),
            });
        }
        let batch = x.rows();
        let b = self.block;
        let bins = self.kernel.bins();
        let w_spec = self.shared_weight_spectra();
        out.reuse_as(&[batch, self.out_dim]);

        // The padded tail beyond `in_dim` is written once and never
        // dirtied: only the first `in_dim` entries change per sample.
        scratch.padded.clear();
        scratch.padded.resize(self.kb_in * b, 0.0);
        scratch.x_spec.resize(self.kb_in, Spectrum::new());

        let dst = out.as_mut_slice();
        for s in 0..batch {
            scratch.padded[..self.in_dim].copy_from_slice(x.row(s));
            for j in 0..self.kb_in {
                self.kernel.spectrum_into(
                    &scratch.padded[j * b..(j + 1) * b],
                    &mut scratch.fft,
                    &mut scratch.x_spec[j],
                );
            }
            for i in 0..self.kb_out {
                scratch.acc.clear();
                scratch.acc.resize(bins, Complex32::zero());
                for j in 0..self.kb_in {
                    SpectralKernel::mul_accumulate(
                        &mut scratch.acc,
                        &w_spec[i][j],
                        &scratch.x_spec[j],
                    );
                }
                self.kernel
                    .inverse_into(&scratch.acc, &mut scratch.fft, &mut scratch.y_block);
                let start = i * b;
                let end = ((i + 1) * b).min(self.out_dim);
                if start < end {
                    dst[s * self.out_dim + start..s * self.out_dim + end]
                        .copy_from_slice(&scratch.y_block[..end - start]);
                }
            }
        }
        Ok(())
    }

    /// Batched backward pass (Algorithm 2, generalized): given the cache
    /// from [`Self::forward_batch`] and the upstream gradient
    /// `g = ∂L/∂Y` of shape `[batch, out_dim]`, returns
    /// `(∂L/∂X of shape [batch, in_dim], ∂L/∂w of shape
    /// [out_blocks, in_blocks, block])`, both accumulated over the batch.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::GridMismatch`] on shape or batch
    /// mismatches.
    pub fn backward_batch(
        &self,
        cache: &ForwardCache,
        grad_out: &Tensor,
    ) -> Result<(Tensor, Tensor), CirculantError> {
        if grad_out.ndim() != 2 || grad_out.cols() != self.out_dim {
            return Err(CirculantError::GridMismatch {
                message: format!(
                    "gradient shape {:?}, expected [batch, {}]",
                    grad_out.shape(),
                    self.out_dim
                ),
            });
        }
        let batch = grad_out.rows();
        if batch != cache.batch() {
            return Err(CirculantError::GridMismatch {
                message: format!(
                    "gradient batch {batch} does not match cached batch {}",
                    cache.batch()
                ),
            });
        }
        let b = self.block;
        let w_spec = self.shared_weight_spectra();
        let mut grad_x = Vec::with_capacity(batch * self.in_dim);
        // Accumulate weight gradients in the frequency domain and invert
        // once at the end: IFFT is linear, so this matches summing the
        // per-sample time-domain gradients.
        let mut grad_w_spec: Vec<Vec<Spectrum>> = (0..self.kb_out)
            .map(|_| (0..self.kb_in).map(|_| self.kernel.zero_accumulator()).collect())
            .collect();

        for s in 0..batch {
            // Pad and transform the gradient blocks.
            let mut g_padded = vec![0.0f32; self.kb_out * b];
            g_padded[..self.out_dim].copy_from_slice(grad_out.row(s));
            let g_spec: Vec<Spectrum> = (0..self.kb_out)
                .map(|i| self.kernel.spectrum(&g_padded[i * b..(i + 1) * b]))
                .collect();

            let x_spec = &cache.input_spectra[s];
            let mut gx_padded = vec![0.0f32; self.kb_in * b];
            for j in 0..self.kb_in {
                let mut acc = self.kernel.zero_accumulator();
                for i in 0..self.kb_out {
                    // ∂L/∂x_j += corr(g_i, w_ij) = IFFT(G_i ∘ conj(W_ij)).
                    SpectralKernel::mul_conj_accumulate(&mut acc, &g_spec[i], &w_spec[i][j]);
                    // ∂L/∂w_ij += corr(g_i, x_j) = IFFT(G_i ∘ conj(X_j)).
                }
                let gx_block = self.kernel.inverse(&acc);
                gx_padded[j * b..(j + 1) * b].copy_from_slice(&gx_block);
            }
            for (i, gs) in g_spec.iter().enumerate() {
                for (j, xs) in x_spec.iter().enumerate() {
                    SpectralKernel::mul_conj_accumulate(&mut grad_w_spec[i][j], gs, xs);
                }
            }
            grad_x.extend_from_slice(&gx_padded[..self.in_dim]);
        }

        let mut grad_w = Vec::with_capacity(self.param_count());
        for row in &grad_w_spec {
            for spec in row {
                grad_w.extend(self.kernel.inverse(spec));
            }
        }
        let grad_x =
            Tensor::from_vec(grad_x, &[batch, self.in_dim]).expect("size by construction");
        let grad_w = Tensor::from_vec(grad_w, &[self.kb_out, self.kb_in, self.block])
            .expect("size by construction");
        Ok((grad_x, grad_w))
    }

    /// Single-vector product `y = x·W` (convenience over
    /// [`Self::forward_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::GridMismatch`] when `x.len() != in_dim`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, CirculantError> {
        let t = Tensor::from_vec(x.to_vec(), &[1, x.len()]).map_err(|_| {
            CirculantError::GridMismatch {
                message: "input is empty".into(),
            }
        })?;
        let (y, _) = self.forward_batch(&t)?;
        Ok(y.into_vec())
    }

    /// Expands to the equivalent dense matrix of shape
    /// `[in_dim, out_dim]` (row-vector convention) — the `O(n²)` object
    /// the compression replaces; used by tests and the dense baselines.
    pub fn to_dense(&self) -> Tensor {
        let b = self.block;
        let mut dense = Tensor::zeros(&[self.in_dim, self.out_dim]);
        for i in 0..self.kb_out {
            for j in 0..self.kb_in {
                let w = self.block_vector(i, j);
                for p in 0..b {
                    let col = i * b + p;
                    if col >= self.out_dim {
                        continue;
                    }
                    for q in 0..b {
                        let row = j * b + q;
                        if row >= self.in_dim {
                            continue;
                        }
                        *dense.at_mut(&[row, col]) = w[(p + b - q) % b];
                    }
                }
            }
        }
        dense
    }

    /// Projects a dense `[in_dim, out_dim]` matrix onto the nearest
    /// block-circulant matrix (least squares): each defining-vector entry
    /// is the mean of the dense entries on its circulant diagonal,
    /// restricted to the logical (unpadded) region.
    ///
    /// This enables compress-then-fine-tune workflows on pretrained dense
    /// models, complementing the paper's train-from-scratch recipe.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError`] variants on malformed inputs.
    pub fn project_from_dense(dense: &Tensor, block: usize) -> Result<Self, CirculantError> {
        if dense.ndim() != 2 {
            return Err(CirculantError::GridMismatch {
                message: format!("dense matrix must be rank 2, got {:?}", dense.shape()),
            });
        }
        let (in_dim, out_dim) = (dense.rows(), dense.cols());
        let mut m = Self::zeros(in_dim, out_dim, block)?;
        let b = block;
        let mut weights = Tensor::zeros(&[m.kb_out, m.kb_in, b]);
        for i in 0..m.kb_out {
            for j in 0..m.kb_in {
                let mut sums = vec![0.0f32; b];
                let mut counts = vec![0u32; b];
                for p in 0..b {
                    let col = i * b + p;
                    if col >= out_dim {
                        continue;
                    }
                    for q in 0..b {
                        let row = j * b + q;
                        if row >= in_dim {
                            continue;
                        }
                        let d = (p + b - q) % b;
                        sums[d] += dense.at(&[row, col]);
                        counts[d] += 1;
                    }
                }
                for d in 0..b {
                    if counts[d] > 0 {
                        *weights.at_mut(&[i, j, d]) = sums[d] / counts[d] as f32;
                    }
                }
            }
        }
        m.weights = weights;
        Ok(m)
    }
}

impl std::fmt::Debug for BlockCirculantMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCirculantMatrix")
            .field("in_dim", &self.in_dim)
            .field("out_dim", &self.out_dim)
            .field("block", &self.block)
            .field("stored_params", &self.param_count())
            .field("compression", &self.compression_ratio())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(13)
    }

    fn sample_input(batch: usize, dim: usize) -> Tensor {
        Tensor::from_fn(&[batch, dim], |i| ((i * 7 + 3) % 19) as f32 * 0.1 - 0.9)
    }

    #[test]
    fn matvec_matches_dense_expansion_square() {
        for (n, b) in [(8usize, 4usize), (8, 8), (6, 3), (12, 4), (8, 1)] {
            let m = BlockCirculantMatrix::random(n, n, b, &mut rng()).unwrap();
            let dense = m.to_dense();
            let x = sample_input(1, n);
            let fast = m.matvec(x.row(0)).unwrap();
            let slow = Tensor::from_vec(x.row(0).to_vec(), &[n])
                .unwrap();
            let slow = dense.transpose().unwrap().matvec(&slow).unwrap();
            for (a, v) in fast.iter().zip(slow.as_slice()) {
                assert!((a - v).abs() < 1e-3, "n={n} b={b}: {a} vs {v}");
            }
        }
    }

    #[test]
    fn matvec_matches_dense_rectangular_and_padded() {
        // Includes non-divisible dims exercising zero padding (the paper's
        // footnote) and non-power-of-two blocks (Bluestein path).
        for (in_dim, out_dim, b) in [
            (8usize, 4usize, 4usize),
            (4, 8, 4),
            (10, 6, 4),  // padding on both sides
            (7, 5, 3),   // nothing divides
            (121, 64, 11), // Arch-2-like odd sizes
        ] {
            let m = BlockCirculantMatrix::random(in_dim, out_dim, b, &mut rng()).unwrap();
            let dense = m.to_dense();
            let x = sample_input(1, in_dim);
            let fast = m.matvec(x.row(0)).unwrap();
            let xv = Tensor::from_vec(x.row(0).to_vec(), &[in_dim]).unwrap();
            let slow = dense.transpose().unwrap().matvec(&xv).unwrap();
            for (k, (a, v)) in fast.iter().zip(slow.as_slice()).enumerate() {
                assert!(
                    (a - v).abs() < 2e-3,
                    "in={in_dim} out={out_dim} b={b} k={k}: {a} vs {v}"
                );
            }
        }
    }

    #[test]
    fn block_one_is_elementwise_scaling_grid() {
        // b = 1: every "circulant block" is a scalar — a fully dense matrix.
        let m = BlockCirculantMatrix::random(3, 2, 1, &mut rng()).unwrap();
        assert_eq!(m.param_count(), 6);
        assert_eq!(m.compression_ratio(), 1.0);
    }

    #[test]
    fn param_accounting() {
        let m = BlockCirculantMatrix::zeros(128, 128, 64).unwrap();
        assert_eq!(m.param_count(), 2 * 2 * 64);
        assert_eq!(m.logical_param_count(), 128 * 128);
        assert_eq!(m.compression_ratio(), 64.0);
        // Padded case: 121 → 2 blocks of 64.
        let m = BlockCirculantMatrix::zeros(121, 64, 64).unwrap();
        assert_eq!(m.in_blocks(), 2);
        assert_eq!(m.out_blocks(), 1);
        assert_eq!(m.param_count(), 2 * 64);
    }

    #[test]
    fn forward_batch_shapes_and_rows_independent() {
        let m = BlockCirculantMatrix::random(10, 6, 4, &mut rng()).unwrap();
        let x = sample_input(3, 10);
        let (y, cache) = m.forward_batch(&x).unwrap();
        assert_eq!(y.shape(), &[3, 6]);
        assert_eq!(cache.batch(), 3);
        let single = Tensor::from_vec(x.row(1).to_vec(), &[1, 10]).unwrap();
        let (y1, _) = m.forward_batch(&single).unwrap();
        for (a, v) in y1.as_slice().iter().zip(y.row(1)) {
            assert!((a - v).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_matches_dense_gradients() {
        // Compare ∂L/∂x and ∂L/∂w against the expanded dense computation.
        let (in_dim, out_dim, b) = (6usize, 4usize, 2usize);
        let m = BlockCirculantMatrix::random(in_dim, out_dim, b, &mut rng()).unwrap();
        let x = sample_input(2, in_dim);
        let (y, cache) = m.forward_batch(&x).unwrap();
        let g = y.clone(); // L = ||y||²/2 → dL/dy = y
        let (gx, gw) = m.backward_batch(&cache, &g).unwrap();

        // Dense reference: y = x·W, dX = g·Wᵀ.
        let dense = m.to_dense();
        let gx_ref = g.matmul(&dense.transpose().unwrap()).unwrap();
        for (a, v) in gx.as_slice().iter().zip(gx_ref.as_slice()) {
            assert!((a - v).abs() < 1e-3, "{a} vs {v}");
        }

        // Weight gradient by finite differences on the defining vectors.
        let eps = 1e-2f32;
        let loss = |m: &BlockCirculantMatrix, x: &Tensor| -> f32 {
            let (y, _) = m.forward_batch(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let mut m = m;
        for idx in 0..gw.len() {
            let orig = m.weights().as_slice()[idx];
            m.weights_mut().as_mut_slice()[idx] = orig + eps;
            let lp = loss(&m, &x);
            m.weights_mut().as_mut_slice()[idx] = orig - eps;
            let lm = loss(&m, &x);
            m.weights_mut().as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dw[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn forward_batch_infer_matches_forward_batch() {
        for (in_dim, out_dim, b) in [(10usize, 6usize, 4usize), (8, 8, 4), (7, 5, 3)] {
            let m = BlockCirculantMatrix::random(in_dim, out_dim, b, &mut rng()).unwrap();
            let x = sample_input(3, in_dim);
            let (expected, _) = m.forward_batch(&x).unwrap();
            let mut scratch = CirculantScratch::new();
            let mut out = Tensor::zeros(&[0]);
            m.forward_batch_infer(&x, &mut scratch, &mut out).unwrap();
            assert_eq!(out.shape(), expected.shape());
            assert_eq!(out.as_slice(), expected.as_slice(), "bit-identical");
            // Warm second call, same result.
            m.forward_batch_infer(&x, &mut scratch, &mut out).unwrap();
            assert_eq!(out.as_slice(), expected.as_slice());
            // Shape validation.
            assert!(m
                .forward_batch_infer(&Tensor::zeros(&[2, in_dim + 1]), &mut scratch, &mut out)
                .is_err());
        }
    }

    #[test]
    fn spectra_cache_invalidated_by_weights_mut() {
        let mut m = BlockCirculantMatrix::random(8, 8, 4, &mut rng()).unwrap();
        let x = sample_input(1, 8);
        let (y0, _) = m.forward_batch(&x).unwrap();
        let first = m.shared_weight_spectra();
        assert!(Arc::ptr_eq(&first, &m.shared_weight_spectra()));
        m.weights_mut().as_mut_slice()[0] += 1.0;
        let second = m.shared_weight_spectra();
        assert!(!Arc::ptr_eq(&first, &second), "cache must be invalidated");
        let (y1, _) = m.forward_batch(&x).unwrap();
        assert_ne!(y0.as_slice(), y1.as_slice());
    }

    #[test]
    fn clone_shares_weight_buffer_and_spectra() {
        let m = BlockCirculantMatrix::random(8, 8, 4, &mut rng()).unwrap();
        let spectra = m.shared_weight_spectra();
        let c = m.clone();
        assert!(m.weights().shares_buffer(c.weights()));
        assert!(Arc::ptr_eq(&spectra, &c.shared_weight_spectra()));
        let x = sample_input(2, 8);
        let (ya, _) = m.forward_batch(&x).unwrap();
        let (yb, _) = c.forward_batch(&x).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn constructors_validate() {
        assert!(BlockCirculantMatrix::zeros(0, 4, 2).is_err());
        assert!(BlockCirculantMatrix::zeros(4, 0, 2).is_err());
        assert!(BlockCirculantMatrix::zeros(4, 4, 0).is_err());
        assert!(
            BlockCirculantMatrix::from_weights(4, 4, 2, Tensor::zeros(&[1, 2, 2])).is_err()
        );
        assert!(
            BlockCirculantMatrix::from_weights(4, 4, 2, Tensor::zeros(&[2, 2, 2])).is_ok()
        );
    }

    #[test]
    fn forward_batch_validates_input() {
        let m = BlockCirculantMatrix::zeros(4, 4, 2).unwrap();
        assert!(m.forward_batch(&Tensor::zeros(&[2, 5])).is_err());
        assert!(m.forward_batch(&Tensor::zeros(&[4])).is_err());
        let (_, cache) = m.forward_batch(&Tensor::zeros(&[2, 4])).unwrap();
        assert!(m.backward_batch(&cache, &Tensor::zeros(&[2, 5])).is_err());
        assert!(m.backward_batch(&cache, &Tensor::zeros(&[3, 4])).is_err());
    }

    #[test]
    fn projection_recovers_exactly_circulant_matrix() {
        let m = BlockCirculantMatrix::random(8, 6, 2, &mut rng()).unwrap();
        let dense = m.to_dense();
        let projected = BlockCirculantMatrix::project_from_dense(&dense, 2).unwrap();
        for (a, v) in projected
            .weights()
            .as_slice()
            .iter()
            .zip(m.weights().as_slice())
        {
            assert!((a - v).abs() < 1e-5, "{a} vs {v}");
        }
    }

    #[test]
    fn projection_is_least_squares_on_diagonals() {
        // For a 2×2 single block, entries on each circulant diagonal are
        // averaged.
        let dense = Tensor::from_vec(vec![1.0, 2.0, 4.0, 3.0], &[2, 2]).unwrap();
        // Layout (row=input q, col=output p): W[q][p] = w[(p−q) mod 2]
        // d=0 diagonal: (0,0)=1 and (1,1)=3 → w[0]=2; d=1: (0,1)=2,(1,0)=4 → w[1]=3.
        let m = BlockCirculantMatrix::project_from_dense(&dense, 2).unwrap();
        assert_eq!(m.weights().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn projection_validates_rank() {
        assert!(BlockCirculantMatrix::project_from_dense(&Tensor::zeros(&[4]), 2).is_err());
    }

    #[test]
    fn spectra_shapes() {
        let m = BlockCirculantMatrix::zeros(8, 4, 4).unwrap();
        let spec = m.weight_spectra();
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0].len(), 2);
        assert_eq!(spec[0][0].len(), 3); // 4/2 + 1
    }

    #[test]
    fn debug_shows_compression() {
        let m = BlockCirculantMatrix::zeros(64, 64, 16).unwrap();
        let s = format!("{m:?}");
        assert!(s.contains("compression"));
    }
}
