//! The spectral kernel: half-spectrum FFT plumbing shared by every
//! block-circulant layer.
//!
//! All signals in the paper's layers are real, so the kernel works on the
//! non-redundant `b/2 + 1` bins and performs the three frequency-domain
//! primitives of Algorithms 1–2:
//!
//! - `acc += FFT(w) ∘ FFT(x)` — forward (circular convolution),
//! - `acc += FFT(g) ∘ conj(FFT(·))` — both gradients (circular correlation).

use ffdl_fft::{Complex32, RealFft};

/// A half-spectrum vector for a fixed block size.
pub type Spectrum = Vec<Complex32>;

/// FFT engine for one block size `b`.
///
/// Owns the planned real-input transforms; layers create one kernel per
/// block size and reuse it for every block and every sample, matching the
/// paper's deployment pattern where the twiddle tables are effectively
/// constants.
#[derive(Clone)]
pub struct SpectralKernel {
    block: usize,
    plan: RealFft<f32>,
}

impl SpectralKernel {
    /// Builds a kernel for block size `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn new(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Self {
            block,
            plan: RealFft::new(block),
        }
    }

    /// Block size `b`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of half-spectrum bins, `b/2 + 1`.
    pub fn bins(&self) -> usize {
        self.plan.spectrum_len()
    }

    /// Forward transform of one real block.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.block()`.
    pub fn spectrum(&self, x: &[f32]) -> Spectrum {
        self.plan.forward(x).expect("block length is fixed")
    }

    /// Inverse transform back to a real block.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != self.bins()`.
    pub fn inverse(&self, spec: &[Complex32]) -> Vec<f32> {
        self.plan.inverse(spec).expect("bin count is fixed")
    }

    /// Allocation-reusing variant of [`SpectralKernel::spectrum`]: writes
    /// the half spectrum into `out`, using `fft_scratch` for the packed
    /// intermediate. Steady-state calls perform no heap allocation once
    /// both vectors are warm (power-of-two blocks; Bluestein lengths
    /// still allocate inside the planned transform).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.block()`.
    pub fn spectrum_into(&self, x: &[f32], fft_scratch: &mut Vec<Complex32>, out: &mut Spectrum) {
        self.plan
            .forward_into(x, fft_scratch, out)
            .expect("block length is fixed");
    }

    /// Allocation-reusing variant of [`SpectralKernel::inverse`]: writes
    /// the real block into `out`, using `fft_scratch` for the complex
    /// intermediate.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != self.bins()`.
    pub fn inverse_into(
        &self,
        spec: &[Complex32],
        fft_scratch: &mut Vec<Complex32>,
        out: &mut Vec<f32>,
    ) {
        self.plan
            .inverse_into(spec, fft_scratch, out)
            .expect("bin count is fixed");
    }

    /// `acc[k] += a[k] · b[k]` — the component-wise multiplication at the
    /// centre of the "FFT → ∘ → IFFT" procedure (Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn mul_accumulate(acc: &mut [Complex32], a: &[Complex32], b: &[Complex32]) {
        assert_eq!(acc.len(), a.len());
        assert_eq!(acc.len(), b.len());
        for ((o, &x), &y) in acc.iter_mut().zip(a).zip(b) {
            *o += x * y;
        }
    }

    /// Accumulates the component-wise product of a *fixed-point* weight
    /// spectrum (interleaved re/im integer levels) and an `f32` input
    /// spectrum: `acc[k] += (levels[2k] + i·levels[2k+1]) · b[k]`.
    ///
    /// The quantization scale is deliberately **not** applied here — the
    /// quantized circulant kernel accumulates pure level-valued products
    /// over all input blocks and applies the block scale once per output
    /// block, so the weight tensor is never dequantized into a
    /// materialized `f32` copy.
    pub fn mul_accumulate_levels(acc: &mut [Complex32], levels: &[i16], b: &[Complex32]) {
        assert_eq!(levels.len(), 2 * acc.len());
        assert_eq!(acc.len(), b.len());
        for ((o, lv), &y) in acc.iter_mut().zip(levels.chunks_exact(2)).zip(b) {
            let w = Complex32::new(lv[0] as f32, lv[1] as f32);
            *o += w * y;
        }
    }

    /// `acc[k] += a[k] · conj(b[k])` — the correlation kernel of the
    /// backward pass (Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn mul_conj_accumulate(acc: &mut [Complex32], a: &[Complex32], b: &[Complex32]) {
        assert_eq!(acc.len(), a.len());
        assert_eq!(acc.len(), b.len());
        for ((o, &x), &y) in acc.iter_mut().zip(a).zip(b) {
            *o += x * y.conj();
        }
    }

    /// A zeroed accumulator of the right length.
    pub fn zero_accumulator(&self) -> Spectrum {
        vec![Complex32::zero(); self.bins()]
    }
}

impl std::fmt::Debug for SpectralKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpectralKernel")
            .field("block", &self.block)
            .field("bins", &self.bins())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_fft::{circular_convolve_direct, circular_correlate_direct};

    fn signal(n: usize, seed: f32) -> Vec<f32> {
        (0..n).map(|k| (k as f32 * seed).sin() + 0.2).collect()
    }

    #[test]
    fn roundtrip() {
        for b in [1usize, 2, 3, 8, 11, 64, 121, 128] {
            let k = SpectralKernel::new(b);
            let x = signal(b, 0.7);
            let back = k.inverse(&k.spectrum(&x));
            for (a, v) in back.iter().zip(&x) {
                assert!((a - v).abs() < 1e-4, "b={b}");
            }
        }
    }

    #[test]
    fn convolution_via_kernel_matches_direct() {
        for b in [4usize, 8, 16, 64] {
            let k = SpectralKernel::new(b);
            let w = signal(b, 1.3);
            let x = signal(b, 0.4);
            let mut acc = k.zero_accumulator();
            SpectralKernel::mul_accumulate(&mut acc, &k.spectrum(&w), &k.spectrum(&x));
            let fast = k.inverse(&acc);
            let slow = circular_convolve_direct(&w, &x);
            for (a, v) in fast.iter().zip(&slow) {
                assert!((a - v).abs() < 1e-3, "b={b}: {a} vs {v}");
            }
        }
    }

    #[test]
    fn correlation_via_kernel_matches_direct() {
        let b = 16;
        let k = SpectralKernel::new(b);
        let g = signal(b, 0.9);
        let x = signal(b, 2.1);
        let mut acc = k.zero_accumulator();
        SpectralKernel::mul_conj_accumulate(&mut acc, &k.spectrum(&g), &k.spectrum(&x));
        let fast = k.inverse(&acc);
        let slow = circular_correlate_direct(&g, &x);
        for (a, v) in fast.iter().zip(&slow) {
            assert!((a - v).abs() < 1e-3);
        }
    }

    #[test]
    fn accumulation_sums_contributions() {
        let b = 8;
        let k = SpectralKernel::new(b);
        let w1 = signal(b, 0.3);
        let w2 = signal(b, 1.7);
        let x = signal(b, 0.8);
        let mut acc = k.zero_accumulator();
        SpectralKernel::mul_accumulate(&mut acc, &k.spectrum(&w1), &k.spectrum(&x));
        SpectralKernel::mul_accumulate(&mut acc, &k.spectrum(&w2), &k.spectrum(&x));
        let sum = k.inverse(&acc);
        let mut expected = circular_convolve_direct(&w1, &x);
        for (e, v) in expected.iter_mut().zip(circular_convolve_direct(&w2, &x)) {
            *e += v;
        }
        for (a, v) in sum.iter().zip(&expected) {
            assert!((a - v).abs() < 1e-3);
        }
    }

    #[test]
    fn bins_formula() {
        assert_eq!(SpectralKernel::new(8).bins(), 5);
        assert_eq!(SpectralKernel::new(7).bins(), 4);
        assert_eq!(SpectralKernel::new(1).bins(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_panics() {
        let _ = SpectralKernel::new(0);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", SpectralKernel::new(8)).is_empty());
    }
}
