//! Block-circulant recurrent cell — the E-RNN direction (PAPERS.md):
//! the paper's compression applies unchanged to recurrent weight
//! matrices, because a GRU step is nothing but six matrix–vector
//! products plus elementwise gates. Every one of the six matrices
//! (three input-to-hidden, three hidden-to-hidden) is a
//! [`BlockCirculantMatrix`], so storage is `O(m·n/b)` and each product
//! runs through the "FFT → component-wise multiply → IFFT" kernel.
//!
//! The cell is **inference-oriented** (like [`SpectralDense`]): it
//! serves streaming sessions in `ffdl-stream`, where per-session hidden
//! state is carried across requests. Two call surfaces share one code
//! path, which is what makes the streaming determinism contract hold:
//!
//! * [`CirculantGru::step`] — one token, caller-owned hidden state and
//!   scratch (`&self`, so the stream engine can drive it through
//!   [`Layer::as_any`] without mutable access to the layer).
//! * [`Layer::forward`] / [`Layer::forward_infer`] — a whole `[seq,
//!   in_dim]` sequence scanned from `h = 0`, implemented as a loop over
//!   `step`. A session stepped one token at a time is therefore
//!   **bit-identical** to single-shot replay of the same rows.
//!
//! [`SpectralDense`]: crate::SpectralDense

use crate::circulant::{BlockCirculantMatrix, CirculantScratch};
use ffdl_nn::{wire, Layer, NnError, OpCost, Scratch};
use ffdl_rng::Rng;
use ffdl_tensor::Tensor;

/// Gate math (cuDNN/“v3” GRU variant — reset gate applied *after* the
/// hidden-side product, so `h·Uₙ` is computed once on the old state):
///
/// ```text
/// z  = σ(x·W_z + h·U_z + b_z)          update gate
/// r  = σ(x·W_r + h·U_r + b_r)          reset gate
/// n  = tanh(x·W_n + r ∘ (h·U_n) + b_n) candidate state
/// h' = (1 − z) ∘ n + z ∘ h
/// ```
///
/// All six matrices are block-circulant; see the module docs for the
/// serving contract.
pub struct CirculantGru {
    in_dim: usize,
    hidden: usize,
    block: usize,
    /// Input-to-hidden matrices, `in_dim × hidden` each: z, r, n.
    w: [BlockCirculantMatrix; 3],
    /// Hidden-to-hidden matrices, `hidden × hidden` each: z, r, n.
    u: [BlockCirculantMatrix; 3],
    /// Gate biases, `[hidden]` each: z, r, n.
    b: [Tensor; 3],
    /// Per-layer scratch for the whole-sequence forward path; never
    /// cloned (each worker clone warms its own).
    infer_scratch: GruScratch,
}

/// Reusable buffers for one GRU step: the FFT workspace plus the row
/// tensors the six matrix products read and write. One per driver (the
/// stream engine keeps one per worker); after warmup a step touches no
/// heap.
pub struct GruScratch {
    circ: CirculantScratch,
    /// `[1, in_dim]` input row.
    x_in: Tensor,
    /// `[1, hidden]` hidden-state row.
    h_in: Tensor,
    /// `x·W_g` products, `[1, hidden]` each.
    xg: [Tensor; 3],
    /// `h·U_g` products, `[1, hidden]` each.
    hg: [Tensor; 3],
}

impl GruScratch {
    /// Creates an empty scratch set; buffers grow on first use.
    pub fn new() -> Self {
        let t = || Tensor::zeros(&[1]);
        Self {
            circ: CirculantScratch::new(),
            x_in: t(),
            h_in: t(),
            xg: [t(), t(), t()],
            hg: [t(), t(), t()],
        }
    }
}

impl Default for GruScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

impl CirculantGru {
    /// Creates a cell with Xavier-scaled circulant blocks and zero
    /// biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when a dimension or the block size
    /// is zero.
    pub fn new<R: Rng>(
        in_dim: usize,
        hidden: usize,
        block: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        let mut mk = |rows: usize| BlockCirculantMatrix::random(rows, hidden, block, rng);
        let w = [mk(in_dim)?, mk(in_dim)?, mk(in_dim)?];
        let u = [mk(hidden)?, mk(hidden)?, mk(hidden)?];
        Ok(Self {
            in_dim,
            hidden,
            block,
            w,
            u,
            b: [
                Tensor::zeros(&[hidden]),
                Tensor::zeros(&[hidden]),
                Tensor::zeros(&[hidden]),
            ],
            infer_scratch: GruScratch::new(),
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state width (also the per-step output width).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Circulant block size `b` (the compression knob).
    pub fn block(&self) -> usize {
        self.block
    }

    /// Advances the cell one step: reads the token `x` (length
    /// `in_dim`) and the hidden state `h` (length `hidden`), writes the
    /// new hidden state — which is also the cell's output — back into
    /// `h`. Takes `&self` so the stream engine can drive a shared layer
    /// through [`Layer::as_any`]; all mutable state is the caller's
    /// (`h`, `scratch`), which is what keeps per-session state on one
    /// worker thread.
    ///
    /// Bit-identical to the corresponding row of [`Layer::forward`] on
    /// the whole sequence (same code path).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `x` or `h` has the wrong
    /// length.
    pub fn step(&self, x: &[f32], h: &mut [f32], scratch: &mut GruScratch) -> Result<(), NnError> {
        if x.len() != self.in_dim || h.len() != self.hidden {
            return Err(NnError::BadInput {
                layer: "circulant_gru".into(),
                message: format!(
                    "step expects x[{}] and h[{}], got x[{}] h[{}]",
                    self.in_dim,
                    self.hidden,
                    x.len(),
                    h.len()
                ),
            });
        }
        scratch.x_in.reuse_as(&[1, self.in_dim]);
        scratch.x_in.as_mut_slice().copy_from_slice(x);
        scratch.h_in.reuse_as(&[1, self.hidden]);
        scratch.h_in.as_mut_slice().copy_from_slice(h);
        for g in 0..3 {
            self.w[g].forward_batch_infer(&scratch.x_in, &mut scratch.circ, &mut scratch.xg[g])?;
            self.u[g].forward_batch_infer(&scratch.h_in, &mut scratch.circ, &mut scratch.hg[g])?;
        }
        let (bz, br, bn) = (
            self.b[0].as_slice(),
            self.b[1].as_slice(),
            self.b[2].as_slice(),
        );
        for k in 0..self.hidden {
            let z = sigmoid(scratch.xg[0].as_slice()[k] + scratch.hg[0].as_slice()[k] + bz[k]);
            let r = sigmoid(scratch.xg[1].as_slice()[k] + scratch.hg[1].as_slice()[k] + br[k]);
            let n =
                (scratch.xg[2].as_slice()[k] + r * scratch.hg[2].as_slice()[k] + bn[k]).tanh();
            h[k] = (1.0 - z) * n + z * h[k];
        }
        Ok(())
    }

    /// Scans a `[seq, in_dim]` sequence from `h = 0`, writing one
    /// `[hidden]` output row per step into `out` (shape
    /// `[seq, hidden]`, already sized by the caller).
    fn scan(&self, input: &Tensor, out: &mut Tensor, scratch: &mut GruScratch) -> Result<(), NnError> {
        let mut h = vec![0.0f32; self.hidden];
        for s in 0..input.rows() {
            self.step(input.row(s), &mut h, scratch)?;
            out.row_mut(s).copy_from_slice(&h);
        }
        Ok(())
    }

    fn check_input(&self, input: &Tensor) -> Result<(), NnError> {
        if input.ndim() != 2 || input.cols() != self.in_dim {
            return Err(NnError::BadInput {
                layer: "circulant_gru".into(),
                message: format!(
                    "expected [seq, {}], got {:?}",
                    self.in_dim,
                    input.shape()
                ),
            });
        }
        Ok(())
    }
}

impl Layer for CirculantGru {
    fn type_tag(&self) -> &'static str {
        "circulant_gru"
    }

    /// **Sequence semantics:** the leading dimension is *time*, not
    /// batch — the rows of `input` are scanned in order from `h = 0`
    /// and row `s` of the output is the hidden state after step `s`.
    /// Recurrent models are served by `ffdl-stream` (one session = one
    /// sequence); routing one through the stateless batch pools would
    /// silently treat a batch as a timeline.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.check_input(input)?;
        let mut out = Tensor::zeros(&[input.rows(), self.hidden]);
        let mut scratch = std::mem::take(&mut self.infer_scratch);
        let result = self.scan(input, &mut out, &mut scratch);
        self.infer_scratch = scratch;
        result?;
        Ok(out)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        self.check_input(input)?;
        let mut out = scratch.take(&[input.rows(), self.hidden]);
        let mut sc = std::mem::take(&mut self.infer_scratch);
        let result = self.scan(input, &mut out, &mut sc);
        self.infer_scratch = sc;
        if let Err(e) = result {
            scratch.recycle(out);
            return Err(e);
        }
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_dim: self.in_dim,
            hidden: self.hidden,
            block: self.block,
            w: self.w.clone(),
            u: self.u.clone(),
            b: self.b.clone(),
            infer_scratch: GruScratch::new(),
        }))
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor, NnError> {
        Err(NnError::BadInput {
            layer: "circulant_gru".into(),
            message: "inference-only recurrent cell does not support backward; \
                      project trained weights onto the circulant structure offline"
                .into(),
        })
    }

    fn param_count(&self) -> usize {
        self.w.iter().map(|m| m.param_count()).sum::<usize>()
            + self.u.iter().map(|m| m.param_count()).sum::<usize>()
            + 3 * self.hidden
    }

    fn logical_param_count(&self) -> usize {
        3 * self.in_dim * self.hidden + 3 * self.hidden * self.hidden + 3 * self.hidden
    }

    fn op_cost(&self) -> OpCost {
        // Six circulant products per step (each: input FFTs, spectral
        // MACs, output IFFTs — weight spectra are cached), plus ~10
        // elementwise ops and 2 nonlinearity groups per hidden unit.
        let cost = |m: &BlockCirculantMatrix| -> (u64, u64) {
            let b = m.block() as u64;
            let bins = (m.block() / 2 + 1) as u64;
            let (kb_in, kb_out) = (m.in_blocks() as u64, m.out_blocks() as u64);
            let log_b = (64 - b.leading_zeros() as u64).max(1);
            let mults = (kb_in + kb_out) * b * log_b + kb_in * kb_out * bins * 4;
            (mults, mults)
        };
        let (mut mults, mut adds) = (0u64, 0u64);
        for m in self.w.iter().chain(self.u.iter()) {
            let (mm, aa) = cost(m);
            mults += mm;
            adds += aa;
        }
        let h = self.hidden as u64;
        OpCost {
            mults: mults + 4 * h,
            adds: adds + 6 * h,
            nonlin: 3 * h,
            param_reads: self.param_count() as u64,
            act_traffic: (self.in_dim + 2 * self.hidden) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [self.in_dim, self.hidden, self.block] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        let mut t: Vec<&Tensor> = self.w.iter().map(|m| m.weights()).collect();
        t.extend(self.u.iter().map(|m| m.weights()));
        t.extend(self.b.iter());
        t
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 9 {
            return Err(NnError::ModelFormat(format!(
                "circulant_gru expects 9 parameter tensors (W_z W_r W_n U_z U_r U_n b_z b_r b_n), got {}",
                params.len()
            )));
        }
        for (i, m) in self.w.iter().chain(self.u.iter()).enumerate() {
            if params[i].shape() != m.weights().shape() {
                return Err(NnError::ModelFormat(
                    "circulant_gru weight tensor shapes do not match".into(),
                ));
            }
        }
        for p in &params[6..9] {
            if p.shape() != [self.hidden] {
                return Err(NnError::ModelFormat(
                    "circulant_gru bias tensor shapes do not match".into(),
                ));
            }
        }
        for (i, m) in self.w.iter_mut().enumerate() {
            *m.weights_mut() = params[i].clone();
        }
        for (i, m) in self.u.iter_mut().enumerate() {
            *m.weights_mut() = params[3 + i].clone();
        }
        for (i, b) in self.b.iter_mut().enumerate() {
            *b = params[6 + i].clone();
        }
        Ok(())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Reconstructs an (empty) [`CirculantGru`] from its config blob.
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn circulant_gru_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let in_dim = wire::read_u32(&mut config)? as usize;
    let hidden = wire::read_u32(&mut config)? as usize;
    let block = wire::read_u32(&mut config)? as usize;
    let zero = |i: usize, o: usize| -> Result<BlockCirculantMatrix, NnError> {
        BlockCirculantMatrix::zeros(i, o, block).map_err(|e| NnError::ModelFormat(e.to_string()))
    };
    Ok(Box::new(CirculantGru {
        in_dim,
        hidden,
        block,
        w: [zero(in_dim, hidden)?, zero(in_dim, hidden)?, zero(in_dim, hidden)?],
        u: [zero(hidden, hidden)?, zero(hidden, hidden)?, zero(hidden, hidden)?],
        b: [
            Tensor::zeros(&[hidden]),
            Tensor::zeros(&[hidden]),
            Tensor::zeros(&[hidden]),
        ],
        infer_scratch: GruScratch::new(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(41)
    }

    fn sequence(seq: usize, dim: usize) -> Tensor {
        Tensor::from_fn(&[seq, dim], |i| ((i * 19 + 3) % 31) as f32 * 0.06 - 0.9)
    }

    #[test]
    fn step_matches_whole_sequence_forward_bitwise() {
        let mut cell = CirculantGru::new(10, 8, 4, &mut rng()).unwrap();
        let x = sequence(7, 10);
        let y = cell.forward(&x).unwrap();

        let mut h = vec![0.0f32; 8];
        let mut sc = GruScratch::new();
        for s in 0..7 {
            cell.step(x.row(s), &mut h, &mut sc).unwrap();
            assert_eq!(y.row(s), &h[..], "step {s} diverged from forward");
        }
    }

    #[test]
    fn forward_infer_is_bit_identical_to_forward() {
        let mut cell = CirculantGru::new(6, 12, 4, &mut rng()).unwrap();
        let x = sequence(5, 6);
        let y1 = cell.forward(&x).unwrap();
        let mut scratch = Scratch::new();
        let y2 = cell.forward_infer(&x, &mut scratch).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
        // And again with a warm scratch pool.
        scratch.recycle(y2);
        let y3 = cell.forward_infer(&x, &mut scratch).unwrap();
        assert_eq!(y1.as_slice(), y3.as_slice());
    }

    #[test]
    fn gates_match_dense_reference() {
        // Expand all six matrices to dense and recompute the GRU by
        // hand; the FFT path must agree to float tolerance.
        let cell = CirculantGru::new(6, 4, 2, &mut rng()).unwrap();
        let x = sequence(3, 6);
        let dense: Vec<_> = cell
            .w
            .iter()
            .chain(cell.u.iter())
            .map(|m| m.to_dense())
            .collect();
        let matvec = |w: &Tensor, v: &[f32]| -> Vec<f32> {
            // Row-vector convention: y[o] = Σ_i v[i] · W[i][o].
            let (rows, cols) = (w.shape()[0], w.shape()[1]);
            (0..cols)
                .map(|o| (0..rows).map(|i| v[i] * w.as_slice()[i * cols + o]).sum())
                .collect()
        };
        let mut h_ref = vec![0.0f32; 4];
        let mut h = vec![0.0f32; 4];
        let mut sc = GruScratch::new();
        for s in 0..3 {
            let xs = x.row(s);
            let xz = matvec(&dense[0], xs);
            let xr = matvec(&dense[1], xs);
            let xn = matvec(&dense[2], xs);
            let hz = matvec(&dense[3], &h_ref);
            let hr = matvec(&dense[4], &h_ref);
            let hn = matvec(&dense[5], &h_ref);
            for k in 0..4 {
                let z = sigmoid(xz[k] + hz[k]);
                let r = sigmoid(xr[k] + hr[k]);
                let n = (xn[k] + r * hn[k]).tanh();
                h_ref[k] = (1.0 - z) * n + z * h_ref[k];
            }
            cell.step(xs, &mut h, &mut sc).unwrap();
            for (a, v) in h.iter().zip(&h_ref) {
                assert!((a - v).abs() < 1e-4, "step {s}: {a} vs {v}");
            }
        }
    }

    #[test]
    fn hidden_state_is_bounded_and_carried() {
        // GRU outputs are convex mixes of tanh values: |h| <= 1 always,
        // and feeding the same token twice must not give the same output
        // (state advanced).
        let cell = CirculantGru::new(8, 8, 4, &mut rng()).unwrap();
        let mut h = vec![0.0f32; 8];
        let mut sc = GruScratch::new();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        cell.step(&x, &mut h, &mut sc).unwrap();
        let h1 = h.clone();
        cell.step(&x, &mut h, &mut sc).unwrap();
        assert!(h.iter().all(|v| v.abs() <= 1.0));
        assert_ne!(h1, h, "state did not advance");
    }

    #[test]
    fn config_and_param_roundtrip() {
        let mut cell = CirculantGru::new(10, 6, 4, &mut rng()).unwrap();
        let mut rebuilt = circulant_gru_from_config(&cell.config_bytes()).unwrap();
        let params: Vec<Tensor> = cell.param_tensors().into_iter().cloned().collect();
        assert_eq!(params.len(), 9);
        rebuilt.load_params(&params).unwrap();
        let x = sequence(4, 10);
        let y1 = cell.forward(&x).unwrap();
        let y2 = rebuilt.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice(), "wire round-trip not bit-identical");
    }

    #[test]
    fn load_params_validates() {
        let mut cell = CirculantGru::new(8, 4, 2, &mut rng()).unwrap();
        assert!(cell.load_params(&[]).is_err());
        let mut bad: Vec<Tensor> = cell.param_tensors().into_iter().cloned().collect();
        bad[0] = Tensor::zeros(&[1, 1, 1]);
        assert!(cell.load_params(&bad).is_err());
        let mut bad: Vec<Tensor> = cell.param_tensors().into_iter().cloned().collect();
        bad[8] = Tensor::zeros(&[5]);
        assert!(cell.load_params(&bad).is_err());
    }

    #[test]
    fn backward_rejected_and_shapes_validated() {
        let mut cell = CirculantGru::new(8, 4, 2, &mut rng()).unwrap();
        assert!(cell.backward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(cell.forward(&Tensor::zeros(&[2, 7])).is_err());
        let mut sc = GruScratch::new();
        let mut h = vec![0.0; 4];
        assert!(cell.step(&[0.0; 7], &mut h, &mut sc).is_err());
        let mut short = vec![0.0f32; 3];
        assert!(cell.step(&[0.0; 8], &mut short, &mut sc).is_err());
    }

    #[test]
    fn compression_accounting() {
        let cell = CirculantGru::new(64, 64, 16, &mut rng()).unwrap();
        // 6 matrices of (64/16)² blocks × 16 values + 3 biases.
        assert_eq!(cell.param_count(), 6 * 16 * 16 + 3 * 64);
        assert_eq!(cell.logical_param_count(), 6 * 64 * 64 + 3 * 64);
        assert!(cell.op_cost().mults > 0);
        assert!(cell.op_cost().nonlin == 3 * 64);
    }

    #[test]
    fn clone_layer_is_bit_identical() {
        let mut cell = CirculantGru::new(8, 8, 4, &mut rng()).unwrap();
        let mut clone = cell.clone_layer().unwrap();
        let x = sequence(3, 8);
        assert_eq!(
            cell.forward(&x).unwrap().as_slice(),
            clone.forward(&x).unwrap().as_slice()
        );
    }
}
