//! The block-circulant fully-connected layer — Algorithm 1 (inference)
//! and Algorithm 2 (training) of the paper, §IV-A.

use crate::circulant::{BlockCirculantMatrix, CirculantScratch, ForwardCache};
use crate::error::CirculantError;
use ffdl_nn::{wire, Layer, NnError, OpCost, ParamRef, Scratch};
use ffdl_tensor::Tensor;
use ffdl_rng::Rng;

impl From<CirculantError> for NnError {
    fn from(e: CirculantError) -> Self {
        NnError::BadInput {
            layer: "circulant".into(),
            message: e.to_string(),
        }
    }
}

/// Fully-connected layer whose weight matrix is block-circulant:
/// input `[batch, in_dim]` → output `[batch, out_dim]` via the
/// "FFT → component-wise multiplication → IFFT" kernel.
///
/// Storage is `O(m·n/b)` and per-sample compute is `O((m+n)·log b · n/b)`
/// instead of the dense layer's `O(m·n)` — the simultaneous compression
/// and acceleration that distinguishes the paper from FFT-only CONV
/// acceleration (LeCun et al. \[11\]).
///
/// # Examples
///
/// ```
/// use ffdl_core::CirculantDense;
/// use ffdl_nn::Layer;
/// use ffdl_tensor::Tensor;
/// use ffdl_rng::SeedableRng;
///
/// let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(0);
/// // The paper's MNIST Arch. 1 hidden layer: 256 → 128, block 64.
/// let mut layer = CirculantDense::new(256, 128, 64, &mut rng)?;
/// assert_eq!(layer.param_count(), 4 * 2 * 64 + 128); // weights + bias
/// assert_eq!(layer.logical_param_count(), 256 * 128 + 128);
/// let y = layer.forward(&Tensor::zeros(&[1, 256]))?;
/// assert_eq!(y.shape(), &[1, 128]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CirculantDense {
    matrix: BlockCirculantMatrix,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cache: Option<ForwardCache>,
    /// Complex-valued FFT scratch for the inference path. Per-layer (not
    /// in the shared [`Scratch`] pool, which holds real tensors only) and
    /// never cloned: each worker's layer clone warms its own.
    infer_scratch: CirculantScratch,
}

impl CirculantDense {
    /// Creates a layer with Xavier-scaled circulant blocks and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when a dimension or the block size is
    /// zero.
    pub fn new<R: Rng>(
        in_dim: usize,
        out_dim: usize,
        block: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        let matrix = BlockCirculantMatrix::random(in_dim, out_dim, block, rng)?;
        Ok(Self::from_matrix(matrix, Tensor::zeros(&[out_dim])))
    }

    /// Wraps an existing matrix and bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != matrix.out_dim()`.
    pub fn from_matrix(matrix: BlockCirculantMatrix, bias: Tensor) -> Self {
        assert_eq!(
            bias.len(),
            matrix.out_dim(),
            "bias length must equal the output dimension"
        );
        let wg = Tensor::zeros(matrix.weights().shape());
        let bg = Tensor::zeros(&[matrix.out_dim()]);
        Self {
            matrix,
            bias,
            weight_grad: wg,
            bias_grad: bg,
            cache: None,
            infer_scratch: CirculantScratch::new(),
        }
    }

    /// The underlying block-circulant matrix.
    pub fn matrix(&self) -> &BlockCirculantMatrix {
        &self.matrix
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.matrix.in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.matrix.out_dim()
    }

    /// Block size `b` (the compression knob).
    pub fn block(&self) -> usize {
        self.matrix.block()
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Storage compression ratio of the weight matrix alone.
    pub fn compression_ratio(&self) -> f32 {
        self.matrix.compression_ratio()
    }
}

impl Layer for CirculantDense {
    fn type_tag(&self) -> &'static str {
        "circulant_dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let (mut y, cache) = self.matrix.forward_batch(input)?;
        for r in 0..y.rows() {
            for (o, &b) in y.row_mut(r).iter_mut().zip(self.bias.as_slice()) {
                *o += b;
            }
        }
        self.cache = Some(cache);
        Ok(y)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        if input.ndim() != 2 {
            return Err(NnError::BadInput {
                layer: "circulant_dense".into(),
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.matrix.in_dim(),
                    input.shape()
                ),
            });
        }
        let mut y = scratch.take(&[input.rows(), self.matrix.out_dim()]);
        if let Err(e) = self
            .matrix
            .forward_batch_infer(input, &mut self.infer_scratch, &mut y)
        {
            scratch.recycle(y);
            return Err(e.into());
        }
        for r in 0..y.rows() {
            for (o, &b) in y.row_mut(r).iter_mut().zip(self.bias.as_slice()) {
                *o += b;
            }
        }
        Ok(y)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            matrix: self.matrix.clone(),
            bias: self.bias.clone(),
            weight_grad: self.weight_grad.clone(),
            bias_grad: self.bias_grad.clone(),
            cache: None,
            infer_scratch: CirculantScratch::new(),
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache("circulant_dense".into()))?;
        let (grad_x, grad_w) = self.matrix.backward_batch(cache, grad_output)?;
        self.weight_grad = grad_w;
        self.bias_grad = grad_output.sum_rows()?;
        Ok(grad_x)
    }

    fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "circulant_weights",
                value: self.matrix.weights_mut(),
                grad: &mut self.weight_grad,
            },
            ParamRef {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.matrix.param_count() + self.bias.len()
    }

    fn logical_param_count(&self) -> usize {
        self.matrix.logical_param_count() + self.bias.len()
    }

    fn op_cost(&self) -> OpCost {
        // Algorithm 1 cost: one FFT per input block, one spectral MAC per
        // grid cell, one IFFT per output block. A real FFT of size b costs
        // ≈ b·log₂b real multiplies; a complex MAC costs 4 mults + 4 adds
        // over b/2+1 bins. The training layer also re-transforms its
        // weights each pass (one FFT per grid cell); the frozen
        // [`SpectralDense`](crate::SpectralDense) skips those.
        let b = self.matrix.block() as u64;
        let bins = (self.matrix.block() / 2 + 1) as u64;
        let kb_in = self.matrix.in_blocks() as u64;
        let kb_out = self.matrix.out_blocks() as u64;
        let log_b = (64 - b.leading_zeros() as u64).max(1);
        let fft_mults = b * log_b;
        let mults =
            (kb_in + kb_out + kb_in * kb_out) * fft_mults + kb_in * kb_out * bins * 4;
        let adds = mults + self.matrix.out_dim() as u64;
        OpCost {
            mults,
            adds,
            nonlin: 0,
            param_reads: self.param_count() as u64,
            act_traffic: (self.matrix.in_dim() + self.matrix.out_dim()) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [
            self.matrix.in_dim(),
            self.matrix.out_dim(),
            self.matrix.block(),
        ] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        vec![self.matrix.weights(), &self.bias]
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.matrix.weights().shape()
            || params[1].shape() != [self.matrix.out_dim()]
        {
            return Err(NnError::ModelFormat(
                "circulant_dense parameter shapes do not match".into(),
            ));
        }
        *self.matrix.weights_mut() = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Reconstructs a [`CirculantDense`] from its config blob (model loader).
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn circulant_dense_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let in_dim = wire::read_u32(&mut config)? as usize;
    let out_dim = wire::read_u32(&mut config)? as usize;
    let block = wire::read_u32(&mut config)? as usize;
    let matrix = BlockCirculantMatrix::zeros(in_dim, out_dim, block)
        .map_err(|e| NnError::ModelFormat(e.to_string()))?;
    Ok(Box::new(CirculantDense::from_matrix(
        matrix,
        Tensor::zeros(&[out_dim]),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_nn::Dense;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    fn input(batch: usize, dim: usize) -> Tensor {
        Tensor::from_fn(&[batch, dim], |i| ((i * 11 + 5) % 23) as f32 * 0.08 - 0.8)
    }

    #[test]
    fn equivalent_to_dense_layer_with_expanded_matrix() {
        // The layer must behave exactly like a Dense layer whose weight is
        // the expanded circulant matrix — forward AND backward.
        let (in_dim, out_dim, b) = (10usize, 6usize, 4usize);
        let mut circ = CirculantDense::new(in_dim, out_dim, b, &mut rng()).unwrap();
        let dense_w = circ.matrix().to_dense();
        let mut dense = Dense::with_params(dense_w, circ.bias().clone()).unwrap();

        let x = input(3, in_dim);
        let y_c = circ.forward(&x).unwrap();
        let y_d = dense.forward(&x).unwrap();
        for (a, v) in y_c.as_slice().iter().zip(y_d.as_slice()) {
            assert!((a - v).abs() < 1e-3, "forward: {a} vs {v}");
        }

        let g = y_c.clone();
        let gx_c = circ.backward(&g).unwrap();
        let gx_d = dense.backward(&g).unwrap();
        for (a, v) in gx_c.as_slice().iter().zip(gx_d.as_slice()) {
            assert!((a - v).abs() < 1e-3, "grad x: {a} vs {v}");
        }
    }

    #[test]
    fn weight_gradient_check() {
        let mut layer = CirculantDense::new(6, 4, 2, &mut rng()).unwrap();
        let x = input(2, 6);
        let y = layer.forward(&x).unwrap();
        let _ = layer.backward(&y).unwrap();
        let wg = layer.weight_grad.clone();
        let bg = layer.bias_grad.clone();

        let eps = 1e-2f32;
        let loss = |layer: &mut CirculantDense, x: &Tensor| -> f32 {
            let y = layer.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for i in 0..wg.len() {
            let orig = layer.matrix.weights().as_slice()[i];
            layer.matrix.weights_mut().as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.matrix.weights_mut().as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.matrix.weights_mut().as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = wg.as_slice()[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                "dw[{i}]: {num} vs {ana}"
            );
        }
        for i in 0..bg.len() {
            let orig = layer.bias.as_slice()[i];
            layer.bias.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = bg.as_slice()[i];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "db[{i}]");
        }
    }

    #[test]
    fn paper_arch1_dimensions() {
        // 256 → 128 with block 64: 4×2 grid → 512 weights + 128 bias.
        let layer = CirculantDense::new(256, 128, 64, &mut rng()).unwrap();
        assert_eq!(layer.param_count(), 512 + 128);
        assert_eq!(layer.logical_param_count(), 256 * 128 + 128);
        assert!((layer.compression_ratio() - 64.0).abs() < 1e-6);
    }

    #[test]
    fn paper_arch2_dimensions_with_padding() {
        // 121 → 64 with block 64: input pads to 128 → 2×1 grid.
        let layer = CirculantDense::new(121, 64, 64, &mut rng()).unwrap();
        assert_eq!(layer.param_count(), 2 * 64 + 64);
        let mut layer = layer;
        let y = layer.forward(&input(2, 121)).unwrap();
        assert_eq!(y.shape(), &[2, 64]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut layer = CirculantDense::new(4, 4, 2, &mut rng()).unwrap();
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 4])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn parameters_exposed_for_optimizer() {
        let mut layer = CirculantDense::new(8, 8, 4, &mut rng()).unwrap();
        let params = layer.parameters();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].value.shape(), &[2, 2, 4]);
        assert_eq!(params[1].value.shape(), &[8]);
    }

    #[test]
    fn op_cost_beats_dense_for_large_blocks() {
        let circ = CirculantDense::new(1024, 1024, 256, &mut rng()).unwrap();
        let dense_macs = 1024u64 * 1024;
        assert!(
            circ.op_cost().mults < dense_macs / 4,
            "FFT path should be far cheaper: {} vs {dense_macs}",
            circ.op_cost().mults
        );
    }

    #[test]
    fn config_roundtrip_preserves_behaviour() {
        let mut layer = CirculantDense::new(10, 6, 4, &mut rng()).unwrap();
        let mut rebuilt = circulant_dense_from_config(&layer.config_bytes()).unwrap();
        let params: Vec<Tensor> = layer.param_tensors().into_iter().cloned().collect();
        rebuilt.load_params(&params).unwrap();
        let x = input(2, 10);
        let y1 = layer.forward(&x).unwrap();
        let y2 = rebuilt.forward(&x).unwrap();
        for (a, v) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - v).abs() < 1e-6);
        }
        assert!(rebuilt.load_params(&[Tensor::zeros(&[1])]).is_err());
    }

    #[test]
    fn constructor_validates() {
        assert!(CirculantDense::new(0, 4, 2, &mut rng()).is_err());
        assert!(circulant_dense_from_config(&[0u8; 12]).is_err());
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_matrix_checks_bias() {
        let m = BlockCirculantMatrix::zeros(4, 4, 2).unwrap();
        let _ = CirculantDense::from_matrix(m, Tensor::zeros(&[5]));
    }
}
