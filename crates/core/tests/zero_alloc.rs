//! Counting-allocator proof of the steady-state allocation diet.
//!
//! A `#[global_allocator]` wrapper around [`std::alloc::System`] counts
//! heap allocations, but only while a thread-local gate is raised — so
//! the harness, other test threads, and warmup traffic stay invisible.
//! After two warmup passes (which populate the [`Scratch`] pool and
//! every layer's private FFT scratch), repeated
//! [`Network::forward_batch_with`] calls must perform **zero** heap
//! allocations: that is the contract the serving hot path relies on.
//!
//! This lives in an integration test (its own crate) deliberately: the
//! allocator shim needs `unsafe`, which the library crates forbid.

use ffdl_core::CirculantDense;
use ffdl_nn::{Dense, Network, Relu, Scratch, Softmax};
use ffdl_rng::{Rng, SeedableRng, SmallRng};
use ffdl_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations observed while the thread-local gate is raised.
static COUNTED_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init: a lazily initialized thread-local would itself
    // allocate on first access and deadlock the accounting.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn note(&self) {
        // `try_with`: allocator calls can arrive during thread teardown
        // after the TLS slot is destroyed.
        let gated = COUNTING.try_with(Cell::get).unwrap_or(false);
        if gated {
            COUNTED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// SAFETY: pure pass-through to System; the only addition is counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.note();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place is still a potential allocation: count it.
        self.note();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.note();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled on this thread and returns
/// how many allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = COUNTED_ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    COUNTED_ALLOCS.load(Ordering::Relaxed) - before
}

fn network() -> Network {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut net = Network::new();
    net.push(CirculantDense::new(16, 16, 4, &mut rng).unwrap());
    net.push(Relu::new());
    net.push(Dense::new(16, 4, &mut rng));
    net.push(Softmax::new());
    net
}

#[test]
fn steady_state_forward_batch_allocates_nothing() {
    let mut net = network();
    let mut scratch = Scratch::new();

    let mut rng = SmallRng::seed_from_u64(77);
    let samples: Vec<Tensor> = (0..8)
        .map(|_| Tensor::from_fn(&[16], |_| rng.next_f32() * 2.0 - 1.0))
        .collect();
    let refs: Vec<&Tensor> = samples.iter().collect();

    // Warmup: the first pass allocates the scratch-pool tensors and each
    // layer's private FFT spectra; the second catches any buffer that
    // only materializes once the pool is partially warm.
    for _ in 0..2 {
        let out = net.forward_batch_with(&refs, &mut scratch).unwrap();
        scratch.recycle(out);
    }
    let reference = net.forward_batch_with(&refs, &mut scratch).unwrap();

    // `reference` keeps one buffer checked out of the pool for the rest
    // of the test; one more unmeasured pass lets the pool replace it.
    let out = net.forward_batch_with(&refs, &mut scratch).unwrap();
    scratch.recycle(out);

    // Steady state: zero heap allocations across many full passes.
    let allocs = count_allocs(|| {
        for _ in 0..16 {
            let out = net
                .forward_batch_with(&refs, &mut scratch)
                .expect("steady-state forward");
            scratch.recycle(out);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state forward_batch_with must not touch the heap"
    );

    // The diet changes nothing numerically: still bit-identical.
    let after = net.forward_batch_with(&refs, &mut scratch).unwrap();
    assert_eq!(reference.as_slice(), after.as_slice());
}
