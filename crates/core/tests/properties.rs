//! Property-based tests: the block-circulant layer must be *exactly* a
//! dense layer with the expanded circulant matrix, for arbitrary
//! geometry — forward, input gradients and batch handling.
//!
//! Runs on the in-house `ffdl_rng::prop` harness (seeded cases,
//! replayable failures).

use ffdl_core::{BlockCirculantMatrix, CirculantDense};
use ffdl_nn::{Dense, Layer};
use ffdl_rng::prop::check;
use ffdl_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};
use ffdl_tensor::Tensor;

/// (in_dim, out_dim, block, batch, seed) — includes padding cases.
fn geometry(rng: &mut SmallRng) -> (usize, usize, usize, usize, u64) {
    (
        rng.gen_range(1usize..=24),
        rng.gen_range(1usize..=24),
        rng.gen_range(1usize..=12),
        rng.gen_range(1usize..=4),
        rng.gen_range(0u64..1000),
    )
}

fn input_tensor(batch: usize, dim: usize, seed: u64) -> Tensor {
    let mut v = seed;
    Tensor::from_fn(&[batch, dim], |_| {
        // xorshift for determinism independent of the harness stream
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        ((v % 2000) as f32 / 1000.0) - 1.0
    })
}

/// FFT-path matvec equals the dense expansion for any geometry.
#[test]
fn matvec_equals_dense_expansion() {
    check(
        "matvec_equals_dense_expansion",
        40,
        geometry,
        |&(in_dim, out_dim, block, _b, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = BlockCirculantMatrix::random(in_dim, out_dim, block, &mut rng).unwrap();
            let x = input_tensor(1, in_dim, seed.wrapping_add(1));
            let fast = m.matvec(x.row(0)).unwrap();
            let dense = m.to_dense();
            let xv = Tensor::from_vec(x.row(0).to_vec(), &[in_dim]).unwrap();
            let slow = dense.transpose().unwrap().matvec(&xv).unwrap();
            let scale = 1.0 + slow.max_abs();
            for (a, v) in fast.iter().zip(slow.as_slice()) {
                prop_assert!((a - v).abs() < 1e-3 * scale, "{a} vs {v}");
            }
            Ok(())
        },
    );
}

/// Layer forward/backward equals a Dense layer with the expanded
/// matrix, batched.
#[test]
fn layer_equals_dense_layer() {
    check(
        "layer_equals_dense_layer",
        40,
        geometry,
        |&(in_dim, out_dim, block, batch, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut circ = CirculantDense::new(in_dim, out_dim, block, &mut rng).unwrap();
            let mut dense =
                Dense::with_params(circ.matrix().to_dense(), circ.bias().clone()).unwrap();

            let x = input_tensor(batch, in_dim, seed.wrapping_add(7));
            let y_c = circ.forward(&x).unwrap();
            let y_d = dense.forward(&x).unwrap();
            let scale = 1.0 + y_d.max_abs();
            for (a, v) in y_c.as_slice().iter().zip(y_d.as_slice()) {
                prop_assert!((a - v).abs() < 2e-3 * scale, "forward {a} vs {v}");
            }

            let g = input_tensor(batch, out_dim, seed.wrapping_add(13));
            let gx_c = circ.backward(&g).unwrap();
            let gx_d = dense.backward(&g).unwrap();
            let scale = 1.0 + gx_d.max_abs();
            for (a, v) in gx_c.as_slice().iter().zip(gx_d.as_slice()) {
                prop_assert!((a - v).abs() < 2e-3 * scale, "grad {a} vs {v}");
            }
            Ok(())
        },
    );
}

/// Storage never exceeds the dense count and matches the padded-grid
/// formula exactly.
#[test]
fn compression_formula() {
    check(
        "compression_formula",
        40,
        geometry,
        |&(in_dim, out_dim, block, _b, _seed)| {
            let m = BlockCirculantMatrix::zeros(in_dim, out_dim, block).unwrap();
            let kb_in = in_dim.div_ceil(block);
            let kb_out = out_dim.div_ceil(block);
            prop_assert_eq!(m.param_count(), kb_in * kb_out * block);
            // Padded storage can only exceed dense when padding dominates:
            // bounded by the padded logical size.
            prop_assert!(m.param_count() <= kb_in * block * kb_out * block);
            Ok(())
        },
    );
}

/// Dense → project → expand is idempotent (projection is a projection).
#[test]
fn projection_is_idempotent() {
    check(
        "projection_is_idempotent",
        40,
        geometry,
        |&(in_dim, out_dim, block, _b, seed)| {
            let dense = input_tensor(in_dim, out_dim, seed.wrapping_add(3));
            let once = BlockCirculantMatrix::project_from_dense(&dense, block).unwrap();
            let twice = BlockCirculantMatrix::project_from_dense(&once.to_dense(), block).unwrap();
            for (a, v) in once.weights().as_slice().iter().zip(twice.weights().as_slice()) {
                prop_assert!((a - v).abs() < 1e-4, "{a} vs {v}");
            }
            Ok(())
        },
    );
}

/// Chain-rule consistency: the circulant weight gradient is exactly the
/// circulant-diagonal *sum* of the unconstrained dense weight gradient —
/// because each defining value `w_ij[d]` appears at every position
/// `(j·b+q, i·b+p)` with `(p − q) mod b = d` of the expanded matrix.
#[test]
fn circulant_gradient_is_diagonal_sum_of_dense_gradient() {
    let mut rng = SmallRng::seed_from_u64(77);
    let (in_dim, out_dim, b) = (8usize, 4usize, 4usize);
    let mut circ = CirculantDense::new(in_dim, out_dim, b, &mut rng).unwrap();
    let mut dense = Dense::with_params(circ.matrix().to_dense(), circ.bias().clone()).unwrap();

    let x = input_tensor(3, in_dim, 5);
    let y = circ.forward(&x).unwrap();
    let _ = dense.forward(&x).unwrap();
    let g = y; // L = ||y||²/2
    let _ = circ.backward(&g).unwrap();
    let _ = dense.backward(&g).unwrap();

    // Pull out both weight gradients through the parameter interface.
    let circ_grad = circ.parameters()[0].grad.clone();
    let dense_grad = dense.parameters()[0].grad.clone();

    let kb_in = in_dim / b;
    let kb_out = out_dim / b;
    for i in 0..kb_out {
        for j in 0..kb_in {
            for d in 0..b {
                let mut sum = 0.0f32;
                for q in 0..b {
                    let p = (q + d) % b;
                    sum += dense_grad.at(&[j * b + q, i * b + p]);
                }
                let ana = circ_grad.at(&[i, j, d]);
                assert!(
                    (sum - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                    "block ({i},{j}) diag {d}: {sum} vs {ana}"
                );
            }
        }
    }
}
