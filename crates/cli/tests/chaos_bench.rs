//! `serve-bench --chaos / --deadline-ms` end-to-end, in its own process:
//! the fault injector is global, so this must not share a test binary
//! with the deterministic serve-bench tests — and it is ONE `#[test]`
//! so an armed campaign can't leak into a sibling run.

use ffdl_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn chaos_and_deadline_flags_report_faults_and_survive() {
    // Deadline only, injector disarmed: a generous deadline must not
    // shed anything, and the robustness summary line says so.
    let out = run(&args(&[
        "serve-bench",
        "--workers",
        "1",
        "--requests",
        "32",
        "--dataset",
        "mnist11",
        "--deadline-ms",
        "30000",
    ]))
    .expect("deadline bench completes");
    assert!(out.contains("robustness: 0 shed, 0 expired"), "{out}");

    // Full campaign: panic, latency spike, NaN activation, and a bit
    // flip on a swap load. The run must finish with a stats table —
    // every fault became a typed failure or a tolerated skip.
    let out = run(&args(&[
        "serve-bench",
        "--workers",
        "2",
        "--batch",
        "8",
        "--requests",
        "64",
        "--dataset",
        "mnist11",
        "--seed",
        "9",
        "--swap-every",
        "16",
        "--chaos",
        "7",
        "--deadline-ms",
        "2000",
    ]))
    .expect("chaos bench completes");
    assert!(
        out.contains(
            "chaos: seed 7, injected 1 panics, 1 latency spikes, 1 NaN activations, 1 bit flips"
        ),
        "{out}"
    );
    assert!(out.contains("1 corrupt swap loads tolerated"), "{out}");
    assert!(out.contains("1 worker restarts"), "{out}");
    assert!(out.contains("prediction digest"), "{out}");
    assert!(out.contains("serve stats"), "{out}");
}
