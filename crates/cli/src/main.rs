//! `ffdl` binary entry point; all logic lives in the library for
//! testability.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ffdl_cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
