//! # ffdl-cli — command-line front end
//!
//! A small tool over the Fig. 4 pipeline:
//!
//! ```text
//! ffdl train      --arch net.arch --dataset mnist16 --out weights.ffdp
//! ffdl infer      --arch net.arch --params weights.ffdp --inputs test.csv
//! ffdl inspect    --arch net.arch [--params weights.ffdp]
//! ffdl gen-inputs --dataset mnist16 --samples 100 --out test.csv
//! ```
//!
//! The argument parser is hand-rolled (`--key value` flags only) to keep
//! the dependency set to the project's approved crates.

use ffdl::data::{mnist_preprocess, resize_images, standardize, synthetic_cifar, synthetic_mnist, CifarConfig, Dataset, MnistConfig};
use ffdl::deploy::{
    format_inputs, parse_architecture, parse_inputs, read_parameters_into, write_parameters,
    InferenceEngine,
};
use ffdl::paper;
use ffdl::platform::{
    all_platforms, Implementation, PlatformSpec, PowerState, RuntimeModel, HONOR_6X, NEXUS_5,
    ODROID_XU3,
};
use ffdl_registry::ModelStore;
use ffdl_rng::rngs::SmallRng;
use ffdl_rng::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),+ $(,)?) => {$(
        impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError(e.to_string())
            }
        }
    )+};
}

from_error!(
    std::io::Error,
    ffdl::deploy::DeployError,
    ffdl::nn::NnError,
    ffdl::data::DataError,
    ffdl::tensor::TensorError,
    ffdl_registry::RegistryError,
    ffdl_serve::ServeError,
    ffdl_stream::StreamError,
    ffdl_quant::QuantError,
);

/// Parsed `--key value` flags.
#[derive(Debug, Default, Clone)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on a dangling flag or a token that is not a
    /// flag.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --flag, got {tok:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| CliError(format!("flag --{key} needs a value")))?;
            if values.insert(key.to_string(), value.clone()).is_some() {
                return Err(CliError(format!("duplicate flag --{key}")));
            }
        }
        Ok(Self { values })
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Optional numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("flag --{key}: cannot parse {v:?}"))),
        }
    }

    /// Optional boolean flag (`--metrics on`); an absent flag is `false`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] unless the value is one of
    /// `on | off | true | false | 1 | 0 | yes | no`.
    pub fn get_bool(&self, key: &str) -> Result<bool, CliError> {
        match self.values.get(key).map(String::as_str) {
            None => Ok(false),
            Some("on" | "true" | "1" | "yes") => Ok(true),
            Some("off" | "false" | "0" | "no") => Ok(false),
            Some(v) => Err(CliError(format!(
                "flag --{key}: expected on|off, got {v:?}"
            ))),
        }
    }

    /// Rejects any flag outside `allowed`, naming the offending flag and
    /// listing what the command accepts (so a typo like `--epoch` is
    /// reported as such instead of being silently ignored).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] naming the first unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), CliError> {
        let mut unknown: Vec<&str> = self
            .values
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        if let Some(first) = unknown.first() {
            let expected = allowed
                .iter()
                .map(|a| format!("--{a}"))
                .collect::<Vec<_>>()
                .join(", ");
            return Err(CliError(format!(
                "unknown flag --{first} (expected one of: {expected})"
            )));
        }
        Ok(())
    }
}

/// Builds the requested dataset. `mnist16` / `mnist11` are the §V-B
/// pipelines; `cifar` / `cifar16` are the CIFAR-10 stand-ins.
///
/// # Errors
///
/// Returns [`CliError`] for unknown names or generator failures.
pub fn load_dataset(name: &str, samples: usize, seed: u64) -> Result<Dataset, CliError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    match name {
        "mnist16" => {
            let raw = synthetic_mnist(samples, &MnistConfig::default(), &mut rng)?;
            Ok(mnist_preprocess(&raw, 16)?)
        }
        "mnist11" => {
            let raw = synthetic_mnist(samples, &MnistConfig::default(), &mut rng)?;
            Ok(mnist_preprocess(&raw, 11)?)
        }
        "cifar" => {
            let raw = synthetic_cifar(samples, &CifarConfig::default(), &mut rng)?;
            Ok(standardize(&raw)?)
        }
        "cifar16" => {
            let raw = synthetic_cifar(samples, &CifarConfig::default(), &mut rng)?;
            Ok(standardize(&resize_images(&raw, 16)?)?)
        }
        other => Err(CliError(format!(
            "unknown dataset {other:?} (expected mnist16 | mnist11 | cifar | cifar16)"
        ))),
    }
}

/// Resolves a platform name.
///
/// # Errors
///
/// Returns [`CliError`] for unknown names.
pub fn platform_by_name(name: &str) -> Result<PlatformSpec, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "nexus5" | "nexus" => Ok(NEXUS_5),
        "xu3" | "odroid" => Ok(ODROID_XU3),
        "honor6x" | "honor" => Ok(HONOR_6X),
        other => Err(CliError(format!(
            "unknown platform {other:?} (expected nexus5 | xu3 | honor6x)"
        ))),
    }
}

/// Resolves an implementation name.
///
/// # Errors
///
/// Returns [`CliError`] for unknown names.
pub fn implementation_by_name(name: &str) -> Result<Implementation, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "java" => Ok(Implementation::Java),
        "cpp" | "c++" => Ok(Implementation::Cpp),
        other => Err(CliError(format!(
            "unknown implementation {other:?} (expected java | cpp)"
        ))),
    }
}

/// `ffdl train`: parse architecture, train on a synthetic dataset, write
/// a parameters file.
///
/// # Errors
///
/// Returns [`CliError`] on any flag, parse, I/O or training failure.
pub fn cmd_train(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&[
        "arch", "out", "dataset", "samples", "epochs", "batch", "lr", "seed",
    ])?;
    let arch_path = flags.require("arch")?;
    let out_path = flags.require("out")?;
    let dataset = flags.get("dataset").unwrap_or("mnist16");
    let samples = flags.get_num("samples", 1200usize)?;
    let epochs = flags.get_num("epochs", 40usize)?;
    let batch = flags.get_num("batch", 32usize)?;
    let lr = flags.get_num("lr", 0.005f32)?;
    let seed = flags.get_num("seed", 42u64)?;

    let arch_text = fs::read_to_string(arch_path)?;
    let mut net = parse_architecture(&arch_text, seed)?.network;
    let ds = load_dataset(dataset, samples, seed)?;
    let (train, test) = ds.split_at(samples * 5 / 6);

    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(1));
    let report = paper::train_classifier(&mut net, &train, &test, epochs, batch, Some(lr), &mut rng)?;

    let mut file = Vec::new();
    write_parameters(&net, &mut file)?;
    fs::write(out_path, &file)?;

    Ok(format!(
        "trained {} layers on {dataset} ({} train / {} test): accuracy {:.2}%, final loss {:.4}\n\
         wrote {} bytes of parameters to {out_path}",
        net.len(),
        train.len(),
        test.len(),
        report.test_accuracy * 100.0,
        report.final_loss,
        file.len(),
    ))
}

/// `ffdl infer`: rebuild the network from architecture + parameters,
/// run the inputs file, report predictions/accuracy/runtime.
///
/// # Errors
///
/// Returns [`CliError`] on any flag, parse, I/O or shape failure.
pub fn cmd_infer(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["arch", "params", "inputs", "platform", "impl", "metrics"])?;
    let metrics = flags.get_bool("metrics")?;
    if metrics {
        ffdl::telemetry::set_enabled(true);
    }
    let arch_text = fs::read_to_string(flags.require("arch")?)?;
    let params = fs::read(flags.require("params")?)?;
    let inputs_text = fs::read_to_string(flags.require("inputs")?)?;

    let mut net = parse_architecture(&arch_text, 0)?.network;
    read_parameters_into(&mut net, &params[..])?;
    let inputs = parse_inputs(inputs_text.as_bytes())?;
    if inputs.is_empty() {
        return Err(CliError("inputs file contains no samples".into()));
    }

    let models: Vec<RuntimeModel> = match flags.get("platform") {
        Some(p) => {
            let platform = platform_by_name(p)?;
            let implementation =
                implementation_by_name(flags.get("impl").unwrap_or("cpp"))?;
            vec![RuntimeModel::new(platform, implementation, PowerState::PluggedIn)]
        }
        None => Vec::new(),
    };

    let mut engine = InferenceEngine::new(net);
    let report = engine.evaluate(&inputs.features, inputs.labels.as_deref(), &models, 1, 3)?;

    let mut out = String::new();
    writeln!(out, "{} samples", report.samples).expect("string write");
    if let Some(acc) = report.accuracy {
        writeln!(out, "accuracy: {:.2}%", acc * 100.0).expect("string write");
    }
    writeln!(out, "host core runtime: {:.1} µs/image", report.host_timing.mean_us)
        .expect("string write");
    for us in &report.projected_us {
        writeln!(out, "projected embedded runtime: {us:.1} µs/image").expect("string write");
    }
    // Show the first few predictions.
    let preds = engine.predict(&inputs.features)?;
    for (i, p) in preds.iter().take(5).enumerate() {
        writeln!(
            out,
            "sample {i}: class {} (p = {:.3})",
            p.label, p.probabilities[p.label]
        )
        .expect("string write");
    }
    if metrics {
        ffdl::telemetry::set_enabled(false);
        writeln!(out).expect("string write");
        out.push_str(&ffdl::telemetry::global().snapshot().to_text());
    }
    Ok(out)
}

/// `ffdl inspect`: print the layer table with parameter and compression
/// accounting and per-platform projections.
///
/// # Errors
///
/// Returns [`CliError`] on any flag, parse or I/O failure.
pub fn cmd_inspect(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["arch", "params"])?;
    let arch_text = fs::read_to_string(flags.require("arch")?)?;
    let parsed = parse_architecture(&arch_text, 0)?;
    let mut net = parsed.network;
    if let Some(p) = flags.get("params") {
        let params = fs::read(p)?;
        read_parameters_into(&mut net, &params[..])?;
    }

    // One forward pass so activation-dependent op costs are populated.
    let shape = parsed.input_shape;
    let x = match shape {
        ffdl::deploy::Shape::Flat(n) => ffdl::tensor::Tensor::zeros(&[1, n]),
        ffdl::deploy::Shape::Image(c, h, w) => ffdl::tensor::Tensor::zeros(&[1, c, h, w]),
    };
    let _ = net.forward(&x)?;

    let mut out = String::new();
    writeln!(
        out,
        "{:<20} {:>10} {:>12} {:>12}",
        "layer", "params", "logical", "flops"
    )
    .expect("string write");
    for layer in net.layers() {
        writeln!(
            out,
            "{:<20} {:>10} {:>12} {:>12}",
            layer.type_tag(),
            layer.param_count(),
            layer.logical_param_count(),
            layer.op_cost().flops(),
        )
        .expect("string write");
    }
    writeln!(
        out,
        "total: {} stored / {} logical parameters ({:.1}x compression)",
        net.param_count(),
        net.logical_param_count(),
        net.compression_ratio()
    )
    .expect("string write");
    for platform in all_platforms() {
        let cpp = RuntimeModel::new(platform, Implementation::Cpp, PowerState::PluggedIn)
            .estimate_network_us(&net);
        let java = RuntimeModel::new(platform, Implementation::Java, PowerState::PluggedIn)
            .estimate_network_us(&net);
        writeln!(
            out,
            "{:<18} projected: C++ {cpp:>9.1} µs/image | Java {java:>9.1} µs/image",
            platform.name
        )
        .expect("string write");
    }
    Ok(out)
}

/// `ffdl gen-inputs`: write a labelled CSV inputs file from a synthetic
/// dataset (flattening image datasets for the text format).
///
/// # Errors
///
/// Returns [`CliError`] on any flag or I/O failure.
pub fn cmd_gen_inputs(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["out", "dataset", "samples", "seed"])?;
    let out_path = flags.require("out")?;
    let dataset = flags.get("dataset").unwrap_or("mnist16");
    let samples = flags.get_num("samples", 100usize)?;
    let seed = flags.get_num("seed", 7u64)?;

    let ds = load_dataset(dataset, samples, seed)?;
    let ds = ffdl::data::flatten_samples(&ds)?;
    let (x, y) = ds.batch(&(0..ds.len()).collect::<Vec<_>>());
    let text = format_inputs(&x, Some(&y));
    fs::write(out_path, &text)?;
    Ok(format!(
        "wrote {samples} {dataset} samples ({} features each) to {out_path}",
        ds.sample_shape()[0]
    ))
}

/// `ffdl serve-bench`: closed-loop load generator against the
/// `ffdl-serve` runtime — the paper's architecture for the dataset, a
/// bounded queue, `--workers` threads with dynamic batching up to
/// `--batch`, and a throughput/latency stats table.
///
/// The "prediction digest" line is a checksum over all predicted labels
/// in request order; it is identical for any `--workers` count under the
/// same seed (served predictions are bit-identical to single-sample
/// inference), while the timing rows below it naturally vary run to run.
/// `--swap-every N` publishes a fresh network into a throwaway
/// [`ModelStore`] every N requests and hot-swaps the running pool onto
/// it, so which model serves a given request — and therefore the digest
/// — depends on timing in that mode.
///
/// `--deadline-ms N` gives every request a queue deadline (expired
/// requests are shed as typed failures and counted in the summary), and
/// `--chaos SEED` arms the deterministic `ffdl-fault` campaign for the
/// run — requests lost to an injected panic or NaN activation become
/// typed failures, so the digest only covers the requests that were
/// actually answered.
///
/// # Errors
///
/// Returns [`CliError`] on bad flags or any serve failure.
pub fn cmd_serve_bench(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&[
        "workers",
        "batch",
        "requests",
        "dataset",
        "wait-us",
        "queue-depth",
        "seed",
        "metrics",
        "swap-every",
        "chaos",
        "deadline-ms",
        "quantized",
        "tenants",
        "tenant-weights",
        "tenant-classes",
        "rate-rps",
        "rate-limit",
        "slo-ms",
        "duration-ms",
        "max-workers",
        "stream",
        "sessions",
        "steps-per-session",
        "brownout",
        "ladder",
        "target-delay-ms",
    ])?;
    let metrics = flags.get_bool("metrics")?;
    let workers = flags.get_num("workers", 1usize)?;
    let max_batch = flags.get_num("batch", 16usize)?;
    let requests = flags.get_num("requests", 256usize)?;
    let dataset = flags.get("dataset").unwrap_or("mnist16");
    let wait_us = flags.get_num("wait-us", 2000u64)?;
    let queue_depth = flags.get_num("queue-depth", 256usize)?;
    let seed = flags.get_num("seed", 42u64)?;
    let swap_every = flags.get_num("swap-every", 0usize)?;
    let chaos = flags.get("chaos").is_some();
    let chaos_seed = flags.get_num("chaos", 0u64)?;
    let deadline_ms = flags.get_num("deadline-ms", 0u64)?;
    if requests == 0 {
        return Err(CliError("flag --requests must be >= 1".into()));
    }

    // Enable before the network is built so FFT plan-cache misses from
    // kernel construction are counted too.
    if metrics {
        ffdl::telemetry::set_enabled(true);
    }

    // The paper's block-circulant architecture for the dataset; raw
    // circulant layers benefit most from batching (weight spectra are
    // recomputed per forward call, so a batch pays them once).
    let (arch_label, build): (&str, fn(u64) -> ffdl::nn::Network) = match dataset {
        "mnist16" => ("arch1", paper::arch1),
        "mnist11" => ("arch2", paper::arch2),
        other => {
            return Err(CliError(format!(
                "unknown serve dataset {other:?} (expected mnist16 | mnist11)"
            )))
        }
    };
    let mut network = build(seed);

    // A small pool of distinct samples, cycled to form the request stream.
    let unique = requests.min(64);
    let ds = ffdl::data::flatten_samples(&load_dataset(dataset, unique, seed)?)?;
    let (x, _) = ds.batch(&(0..ds.len()).collect::<Vec<_>>());
    let width = x.shape()[1];
    let samples: Vec<ffdl::tensor::Tensor> = (0..requests)
        .map(|i| {
            let row = x.row(i % unique);
            ffdl::tensor::Tensor::from_vec(row.to_vec(), &[width])
        })
        .collect::<Result<_, _>>()?;

    // --quantized BITS serves the fixed-point deployment form instead of
    // the f32 network, reporting the byte and top-1-agreement cost of
    // the precision drop up front (measured on the sample pool).
    let quant_bits = flags.get_num("quantized", 0u32)?;
    let mut quant_note = None;
    if quant_bits > 0 {
        let bits = ffdl::core::QuantBits::from_bits(quant_bits).ok_or_else(|| {
            CliError(format!("flag --quantized: expected 8 | 12 | 16, got {quant_bits}"))
        })?;
        let mut q = ffdl_quant::quantize_network(&network, bits)?;
        let agreement = ffdl_quant::top1_agreement(&mut network, &mut q, &x)?;
        let f32_bytes = ffdl_quant::model_bytes(&network)?;
        let q_bytes = ffdl_quant::model_bytes(&q)?;
        quant_note = Some(format!(
            "quantized: {bits}, model bytes {q_bytes} ({:.1}% of f32 {f32_bytes}), top-1 agreement {:.2}% on {unique} eval samples",
            q_bytes as f64 * 100.0 / f32_bytes as f64,
            agreement as f64 * 100.0,
        ));
        network = q;
    }

    // --stream switches to stateful streaming serving (ffdl-stream): a
    // block-circulant GRU sized to the dataset, served one token per
    // step across sticky sessions. Session state makes the other serve
    // modes meaningless in combination.
    let tenants = flags.get_num("tenants", 0usize)?;
    if flags.get_bool("stream")? {
        if tenants > 0 || swap_every != 0 || chaos || quant_bits > 0 {
            return Err(CliError(
                "--stream cannot be combined with --tenants, --swap-every, \
                 --chaos or --quantized (the ffdl-stream test suite covers \
                 streaming faults and swaps)"
                    .into(),
            ));
        }
        let out = serve_bench_stream(flags, dataset, &samples, width, workers, seed);
        if metrics {
            ffdl::telemetry::set_enabled(false);
        }
        return out;
    }

    // --tenants N switches to the multi-tenant scheduler with an
    // open-loop Poisson driver (ffdl-sched) instead of the closed-loop
    // single-model pool.
    let brownout_on = flags.get_bool("brownout")?;
    if brownout_on && tenants == 0 {
        return Err(CliError(
            "--brownout requires --tenants N (brownout is a property of \
             the multi-tenant scheduler)"
                .into(),
        ));
    }
    if tenants > 0 {
        if swap_every != 0 || (chaos && !brownout_on) {
            return Err(CliError(
                "--tenants cannot be combined with --swap-every, or with \
                 --chaos unless --brownout on (the sched chaos suite covers \
                 multi-tenant faults; --chaos with --brownout arms an \
                 overload spike into tenant t0)"
                    .into(),
            ));
        }
        let out = serve_bench_tenants(
            flags, tenants, &network, arch_label, dataset, &samples, workers, max_batch, seed,
        );
        if metrics {
            ffdl::telemetry::set_enabled(false);
        }
        return out;
    }

    let config = ffdl_serve::ServeConfig {
        workers,
        max_batch,
        max_wait: std::time::Duration::from_micros(wait_us),
        queue_depth,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        // Under chaos the injected NaN activations must surface as typed
        // failures (threshold 0: screen, but never quarantine — the
        // bench serves one trusted model, so rollback has no target).
        health: ffdl_serve::HealthConfig {
            check_finite: chaos,
            unhealthy_threshold: 0,
        },
        tenant: None,
    };
    // --chaos SEED arms a deterministic fault campaign for the whole
    // run: one worker panic, one latency spike, one NaN activation and
    // one bit flip (the flip only fires if a registry load happens, i.e.
    // with --swap-every). Same seed, same faults.
    if chaos {
        ffdl::fault::arm(ffdl::fault::FaultPlan::chaos(chaos_seed, 1));
    }
    // With --swap-every N the bench exercises the full model lifecycle:
    // every N requests a fresh network (alternating seed) is published
    // into a throwaway registry, loaded back (checksum-verified), and
    // hot-swapped into the running pool — admission never pauses.
    let mut swap_note = None;
    let mut corrupt_swaps = 0u64;
    let report = if swap_every == 0 {
        ffdl_serve::run_closed_loop(&network, &config, &samples)?
    } else {
        let store_dir = std::env::temp_dir().join(format!(
            "ffdl-serve-bench-store-{}-{}",
            std::process::id(),
            seed,
        ));
        let _ = fs::remove_dir_all(&store_dir);
        let store = ModelStore::open(&store_dir)?;
        store.publish("bench", &network, arch_label)?;
        let server = ffdl_serve::Server::start(&network, &config)?;
        let mut swaps = 0u64;
        for (i, sample) in samples.iter().enumerate() {
            if i > 0 && i.is_multiple_of(swap_every) {
                store.publish("bench", &build(seed ^ (swaps + 1)), arch_label)?;
                match server.swap_from_store(&store, "bench", None) {
                    Ok(_) => swaps += 1,
                    // An injected bit flip lands here as a typed Corrupt
                    // error: the swap is skipped (the pool keeps serving
                    // the current generation), never crashed on.
                    Err(ffdl_serve::ServeError::Registry(_)) if chaos => {
                        corrupt_swaps += 1;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            loop {
                match server.try_submit(i as u64, sample.clone()) {
                    Ok(()) => break,
                    Err(ffdl_serve::ServeError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(e) => return Err(e.into()),
                }
            }
        }
        let report = server.finish()?;
        fs::remove_dir_all(&store_dir).ok();
        swap_note = Some(format!(
            "hot-swap: {swaps} registry-mediated swaps, final generation {}",
            report.model_generation,
        ));
        report
    };
    let fault_summary = chaos.then(ffdl::fault::disarm);
    if metrics {
        ffdl::telemetry::set_enabled(false);
    }

    // Order-sensitive checksum over predicted labels: equal across
    // worker counts iff the served results are deterministic.
    let digest = report
        .responses
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, r| {
            (h ^ r.prediction.label as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });

    let mut out = String::new();
    writeln!(
        out,
        "serve-bench: {dataset} / {} / {requests} requests, {workers} workers, batch<={max_batch}, window {wait_us} µs, depth {queue_depth}, {} rejections",
        if dataset == "mnist11" { "arch2" } else { "arch1" },
        report.queue_full_rejections,
    )
    .expect("string write");
    writeln!(out, "prediction digest: {digest:016x}").expect("string write");
    if let Some(note) = &quant_note {
        writeln!(out, "{note}").expect("string write");
    }
    writeln!(
        out,
        "robustness: {} shed, {} expired, {} worker restarts, {} quarantines, {} auto-rollbacks",
        report.shed, report.expired, report.worker_restarts, report.quarantines, report.auto_rollbacks,
    )
    .expect("string write");
    if let Some(summary) = fault_summary {
        writeln!(
            out,
            "chaos: seed {chaos_seed}, injected {} panics, {} latency spikes, {} NaN activations, {} bit flips ({corrupt_swaps} corrupt swap loads tolerated)",
            summary.panics, summary.latency_spikes, summary.nan_activations, summary.bit_flips,
        )
        .expect("string write");
    }
    if let Some(note) = swap_note {
        writeln!(out, "{note}").expect("string write");
    }
    out.push_str(&report.table());
    if metrics {
        // Library-wide metrics (FFT plan cache, per-layer spans, engine
        // counters) live on the global registry; the serve runtime's
        // per-worker metrics arrive merged in the report. Show them as
        // one table.
        let mut snapshot = ffdl::telemetry::global().snapshot();
        snapshot.merge(&report.telemetry);
        writeln!(out).expect("string write");
        out.push_str(&snapshot.to_text());
    }
    Ok(out)
}

/// Parses a comma-separated per-tenant list (`"8,1"`), requiring exactly
/// `n` entries when present; `None` yields `n` copies of the default.
fn per_tenant_list<T: Clone>(
    raw: Option<&str>,
    n: usize,
    default: T,
    parse: impl Fn(&str) -> Result<T, CliError>,
    what: &str,
) -> Result<Vec<T>, CliError> {
    match raw {
        None => Ok(vec![default; n]),
        Some(s) => {
            let items: Vec<T> = s
                .split(',')
                .map(|tok| parse(tok.trim()))
                .collect::<Result<_, _>>()?;
            if items.len() != n {
                return Err(CliError(format!(
                    "--{what}: expected {n} comma-separated entries, got {}",
                    items.len()
                )));
            }
            Ok(items)
        }
    }
}

/// The `--tenants N` arm of `serve-bench`: N tenants (named `t0…`), each
/// bound to the bench model in a throwaway registry, scheduled by
/// `ffdl-sched` (WDRR + priority classes + optional per-tenant rate
/// budgets + autoscaling `--workers` → `--max-workers`), and loaded
/// open-loop with independent seeded Poisson arrivals at `--rate-rps`
/// per tenant. Reports per-tenant SLO attainment against `--slo-ms`.
#[allow(clippy::too_many_arguments)]
fn serve_bench_tenants(
    flags: &Flags,
    tenants: usize,
    network: &ffdl::nn::Network,
    arch_label: &str,
    dataset: &str,
    samples: &[ffdl::tensor::Tensor],
    workers: usize,
    max_batch: usize,
    seed: u64,
) -> Result<String, CliError> {
    let metrics = flags.get_bool("metrics")?;
    let max_workers = flags.get_num("max-workers", workers)?;
    let slo_ms = flags.get_num("slo-ms", 25u64)?;
    let duration_ms = flags.get_num("duration-ms", 500u64)?;
    let rate_rps = flags.get_num("rate-rps", 400.0f64)?;
    let rate_limit = flags.get_num("rate-limit", 0.0f64)?;
    let queue_depth = flags.get_num("queue-depth", 256usize)?;
    let weights = per_tenant_list(
        flags.get("tenant-weights"),
        tenants,
        1u64,
        |tok| {
            tok.parse()
                .map_err(|_| CliError(format!("--tenant-weights: cannot parse {tok:?}")))
        },
        "tenant-weights",
    )?;
    let classes = per_tenant_list(
        flags.get("tenant-classes"),
        tenants,
        ffdl_sched::PriorityClass::Normal,
        |tok| Ok(ffdl_sched::PriorityClass::parse(tok)?),
        "tenant-classes",
    )?;

    let brownout_on = flags.get_bool("brownout")?;
    let target_delay_ms = flags.get_num("target-delay-ms", 20u64)?;
    let chaos = flags.get("chaos").is_some();
    let chaos_seed = flags.get_num("chaos", 0u64)?;

    let store_dir = std::env::temp_dir().join(format!(
        "ffdl-sched-bench-store-{}-{}",
        std::process::id(),
        seed,
    ));
    let _ = fs::remove_dir_all(&store_dir);
    let store = ModelStore::open(&store_dir)?;
    store.publish("bench", network, arch_label)?;

    // --brownout on pre-publishes the precision ladder (--ladder, a
    // comma list of f32/int16/int12/int8 rungs) so degradation swaps at
    // runtime are pure registry loads.
    let mut ladder = None;
    let mut ladder_note = None;
    if brownout_on {
        let rung_bits: Vec<Option<ffdl::core::QuantBits>> = flags
            .get("ladder")
            .unwrap_or("f32,int16,int8")
            .split(',')
            .map(|tok| match tok.trim() {
                "f32" => Ok(None),
                "int16" => Ok(Some(ffdl::core::QuantBits::Sixteen)),
                "int12" => Ok(Some(ffdl::core::QuantBits::Twelve)),
                "int8" => Ok(Some(ffdl::core::QuantBits::Eight)),
                other => Err(CliError(format!(
                    "--ladder: expected f32|int16|int12|int8, got {other:?}"
                ))),
            })
            .collect::<Result<_, _>>()?;
        let published =
            ffdl_quant::publish_ladder(&store, "bench", network, arch_label, &rung_bits)?;
        ladder_note = Some(
            published
                .iter()
                .map(|(label, generation)| format!("{label}@gen{generation}"))
                .collect::<Vec<_>>()
                .join(" -> "),
        );
        let rungs = published
            .into_iter()
            .map(|(label, registry_generation)| ffdl_sched::LadderRung {
                label,
                registry_generation,
            })
            .collect();
        ladder = Some(
            ffdl_sched::Ladder::new(rungs).map_err(|e| CliError(format!("--ladder: {e}")))?,
        );
    }

    let specs: Vec<ffdl_sched::TenantSpec> = (0..tenants)
        .map(|i| {
            let mut spec = ffdl_sched::TenantSpec::new(format!("t{i}"), "bench");
            spec.weight = weights[i];
            spec.class = classes[i];
            spec.queue_depth = queue_depth;
            spec.rate_limit = (rate_limit > 0.0).then_some(rate_limit);
            spec.ladder = ladder.clone();
            spec
        })
        .collect();
    let config = ffdl_sched::SchedConfig {
        min_workers: workers,
        max_workers,
        max_batch,
        quantum: 4,
        deadline: Some(std::time::Duration::from_millis(slo_ms)),
        check_finite: false,
        unhealthy_threshold: 0,
        autoscale: ffdl_sched::AutoscaleConfig::default(),
        brownout: brownout_on.then(|| ffdl_sched::BrownoutConfig {
            target_delay: std::time::Duration::from_millis(target_delay_ms),
            seed,
            ..Default::default()
        }),
        breaker: ffdl_sched::BreakerConfig::default(),
    };
    let sched = ffdl_sched::Scheduler::start(&store, &specs, &config)?;
    let plans: Vec<ffdl_sched::OpenLoopPlan> = (0..tenants)
        .map(|_| ffdl_sched::OpenLoopPlan {
            rate_rps,
            samples: samples.to_vec(),
        })
        .collect();
    // --chaos SEED (with --brownout on) arms a single deterministic
    // overload spike: the open-loop driver superposes 4x arrivals onto
    // tenant t0 for the middle third of the run, which is what pushes
    // the brownout controller down the ladder.
    let spike_ms = duration_ms / 3;
    if chaos {
        ffdl::fault::arm(ffdl::fault::FaultPlan {
            seed: chaos_seed,
            overload_budget: 1,
            overload_factor: 4.0,
            overload_spike: std::time::Duration::from_millis(spike_ms),
            rate: 1.0,
            ..Default::default()
        });
    }
    let summary = ffdl_sched::run_open_loop(
        &sched,
        &plans,
        std::time::Duration::from_millis(duration_ms),
        seed,
    )?;
    let fault_summary = chaos.then(ffdl::fault::disarm);
    let report = sched.finish()?;
    fs::remove_dir_all(&store_dir).ok();

    let mut out = String::new();
    writeln!(
        out,
        "serve-bench[sched]: {dataset} / {arch_label} / {tenants} tenants, \
         open-loop {rate_rps} rps/tenant x {duration_ms} ms, slo {slo_ms} ms, \
         workers {workers}->{max_workers}",
    )
    .expect("string write");
    for (i, spec) in specs.iter().enumerate() {
        let stat = report.serve.tenants.iter().find(|t| t.tenant == spec.name);
        let (p99, slo) = stat.map_or((0.0, 1.0), |s| (s.p99_us, s.slo_attainment));
        writeln!(
            out,
            "tenant {}: weight {} class {}, generated {}, rejected {}, p99 {:.0} µs, slo-attainment {:.4}",
            spec.name, spec.weight, spec.class, summary.generated[i], summary.rejected[i], p99, slo,
        )
        .expect("string write");
    }
    writeln!(
        out,
        "autoscale: {} scale-ups, {} scale-downs, peak {} workers",
        report.scale_ups, report.scale_downs, report.peak_workers,
    )
    .expect("string write");
    if let Some(note) = &ladder_note {
        writeln!(out, "ladder: {note}, target delay {target_delay_ms} ms").expect("string write");
    }
    for stat in &report.brownout {
        writeln!(
            out,
            "brownout: {} peak level {}, {} transitions, final level {}",
            stat.tenant,
            stat.peak_level,
            stat.events.len(),
            stat.final_level,
        )
        .expect("string write");
    }
    if let Some(fs) = &fault_summary {
        writeln!(
            out,
            "chaos: seed {chaos_seed}, {} overload spike(s) (4x arrivals into t0 for {spike_ms} ms)",
            fs.overload_spikes,
        )
        .expect("string write");
    }
    out.push_str(&report.serve.table());
    if metrics {
        let mut snapshot = ffdl::telemetry::global().snapshot();
        snapshot.merge(&report.serve.telemetry);
        writeln!(out).expect("string write");
        out.push_str(&snapshot.to_text());
    }
    Ok(out)
}

/// The `--stream` arm of `serve-bench`: a block-circulant GRU sized to
/// the dataset is published into a throwaway registry and served
/// statefully by `ffdl-stream` — `--sessions` sticky sessions, each
/// stepped `--steps-per-session` times, submissions interleaved across
/// sessions so worker queues mix several streams at once.
///
/// The digest folds every answered step's predicted label in
/// (session, step) order; per-session hidden state means each step
/// depends only on its own session's token prefix, so the digest is
/// identical for any `--workers` count under the same seed.
fn serve_bench_stream(
    flags: &Flags,
    dataset: &str,
    samples: &[ffdl::tensor::Tensor],
    width: usize,
    workers: usize,
    seed: u64,
) -> Result<String, CliError> {
    let metrics = flags.get_bool("metrics")?;
    let sessions = flags.get_num("sessions", 8u64)?;
    let steps = flags.get_num("steps-per-session", 32usize)?;
    let queue_depth = flags.get_num("queue-depth", 256usize)?;
    let deadline_ms = flags.get_num("deadline-ms", 0u64)?;
    if sessions == 0 || steps == 0 {
        return Err(CliError(
            "flags --sessions and --steps-per-session must be >= 1".into(),
        ));
    }

    // The recurrent counterpart of the paper architectures: one
    // block-circulant GRU over the flattened pixels, stepped per token.
    let arch = format!("input {width}\ncirculant_gru 32 block=8\nfc 10\nsoftmax\n");
    let network = parse_architecture(&arch, seed)?.network;

    let store_dir = std::env::temp_dir().join(format!(
        "ffdl-stream-bench-store-{}-{}",
        std::process::id(),
        seed,
    ));
    let _ = fs::remove_dir_all(&store_dir);
    let store = ModelStore::open(&store_dir)?;
    store.publish("bench", &network, "gru32")?;

    let config = ffdl_stream::StreamConfig {
        workers,
        queue_depth,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        ..Default::default()
    };
    let server = ffdl_stream::StreamServer::start_from_store(&store, "bench", &config)?;
    for session in 0..sessions {
        server.open_session(session)?;
    }
    // id encodes (session, step) so the digest can walk submission
    // order after the fact. The sample pool is cycled with a per-session
    // stride so different sessions see different token sequences.
    for step in 0..steps {
        for session in 0..sessions {
            let id = session * steps as u64 + step as u64;
            let sample = &samples[(session as usize * 7 + step) % samples.len()];
            loop {
                match server.step(session, id, sample.clone()) {
                    Ok(()) => break,
                    Err(ffdl_stream::StreamError::QueueFull(_)) => std::thread::yield_now(),
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }
    for session in 0..sessions {
        server.close_session(session)?;
    }
    let report = server.finish()?;
    fs::remove_dir_all(&store_dir).ok();

    let by_id: HashMap<u64, usize> = report
        .serve
        .responses
        .iter()
        .map(|r| (r.id, r.prediction.label))
        .collect();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for session in 0..sessions {
        for step in 0..steps {
            if let Some(label) = by_id.get(&(session * steps as u64 + step as u64)) {
                digest = (digest ^ *label as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }

    let mut out = String::new();
    writeln!(
        out,
        "serve-bench[stream]: {dataset} / gru32 / {sessions} sessions x {steps} steps, \
         {workers} workers, depth {queue_depth}, {} rejections",
        report.serve.queue_full_rejections,
    )
    .expect("string write");
    writeln!(out, "prediction digest: {digest:016x}").expect("string write");
    writeln!(
        out,
        "stream: {} opened, {} evicted, {} quarantined, {} steps answered, {} expired",
        report.sessions_opened,
        report.sessions_evicted,
        report.sessions_quarantined,
        report.steps,
        report.serve.expired,
    )
    .expect("string write");
    out.push_str(&report.table());
    if metrics {
        let mut snapshot = ffdl::telemetry::global().snapshot();
        snapshot.merge(&report.serve.telemetry);
        writeln!(out).expect("string write");
        out.push_str(&snapshot.to_text());
    }
    Ok(out)
}

/// Renders one model's manifest as the table printed by `model list`.
fn model_table(name: &str, versions: &[ffdl_registry::ModelVersion]) -> String {
    let active = versions.last().map_or(0, |v| v.generation);
    let mut out = String::new();
    writeln!(
        out,
        "model {name} ({} generations, active {active})",
        versions.len()
    )
    .expect("string write");
    writeln!(
        out,
        "  {:>4} {:<12} {:>10} {:<16} provenance",
        "gen", "arch", "bytes", "fnv1a"
    )
    .expect("string write");
    for v in versions {
        let provenance = match v.rollback_of {
            Some(g) => format!("rollback of {g}"),
            None => "-".to_string(),
        };
        writeln!(
            out,
            "  {:>4} {:<12} {:>10} {:016x} {}",
            v.generation, v.arch, v.bytes, v.checksum, provenance
        )
        .expect("string write");
    }
    out
}

/// `ffdl model publish`: build a network from an architecture file (and
/// optionally a trained parameters file), then publish it as the next
/// generation in a [`ModelStore`].
fn cmd_model_publish(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["store", "name", "arch", "params", "seed", "label"])?;
    let store = ModelStore::open(flags.require("store")?)?;
    let name = flags.require("name")?;
    let arch_path = flags.require("arch")?;
    let seed = flags.get_num("seed", 42u64)?;

    let arch_text = fs::read_to_string(arch_path)?;
    let mut net = parse_architecture(&arch_text, seed)?.network;
    if let Some(p) = flags.get("params") {
        let params = fs::read(p)?;
        read_parameters_into(&mut net, &params[..])?;
    }
    // The manifest's arch label shares the model-name character set;
    // default to the architecture file's stem, sanitized.
    let label = match flags.get("label") {
        Some(l) => l.to_string(),
        None => {
            let stem = std::path::Path::new(arch_path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("custom");
            let clean: String = stem
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                        c
                    } else {
                        '-'
                    }
                })
                .collect();
            if clean.is_empty() { "custom".into() } else { clean }
        }
    };
    let v = store.publish(name, &net, &label)?;
    Ok(format!(
        "published {name} generation {}: arch {}, {} bytes, fnv1a {:016x}\nstore: {}",
        v.generation,
        v.arch,
        v.bytes,
        v.checksum,
        store.root().display(),
    ))
}

/// `ffdl model list`: one model's generation table, or a summary of
/// every model in the store.
fn cmd_model_list(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["store", "name"])?;
    let store = ModelStore::open(flags.require("store")?)?;
    if let Some(name) = flags.get("name") {
        return Ok(model_table(name, &store.list(name)?));
    }
    let names = store.models()?;
    if names.is_empty() {
        return Ok(format!("no models in {}", store.root().display()));
    }
    let mut out = String::new();
    for name in names {
        let versions = store.list(&name)?;
        let active = versions.last().map_or(0, |v| v.generation);
        let arch = versions.last().map_or("-", |v| v.arch.as_str());
        writeln!(
            out,
            "{name}: {} generations, active {active} (arch {arch})",
            versions.len()
        )
        .expect("string write");
    }
    Ok(out)
}

/// `ffdl model rollback`: republish an earlier generation's bytes as the
/// new active generation (`--to N` picks the target; the default is the
/// generation before the active one).
fn cmd_model_rollback(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["store", "name", "to"])?;
    let store = ModelStore::open(flags.require("store")?)?;
    let name = flags.require("name")?;
    let to = match flags.get("to") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            CliError(format!("flag --to: cannot parse {v:?}"))
        })?),
    };
    let v = store.rollback(name, to)?;
    let target = v.rollback_of.expect("rollback always records its target");
    Ok(format!(
        "rolled {name} back to generation {target}'s bytes: new active generation {} (fnv1a {:016x})",
        v.generation, v.checksum,
    ))
}

/// `ffdl model quantize`: load a generation (active by default, `--from
/// GEN` otherwise), quantize every spectral layer to `--bits` fixed
/// point with `ffdl-quant`, and publish the result as the next
/// generation — the mixed-precision registry state the serve pool
/// A/B-swaps across. `--out <file>` additionally writes the quantized
/// wire bytes (a version-3 model file) to disk.
fn cmd_model_quantize(flags: &Flags) -> Result<String, CliError> {
    flags.expect_only(&["store", "name", "bits", "from", "out"])?;
    let store = ModelStore::open(flags.require("store")?)?;
    let name = flags.require("name")?;
    let bits_raw = flags.get_num("bits", 16u32)?;
    let bits = ffdl::core::QuantBits::from_bits(bits_raw).ok_or_else(|| {
        CliError(format!("flag --bits: expected 8 | 12 | 16, got {bits_raw}"))
    })?;
    let from = match flags.get("from") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            CliError(format!("flag --from: cannot parse {v:?}"))
        })?),
    };

    let registry = ffdl::core::full_registry();
    let (parent_net, parent) = store.load(name, from, &registry)?;
    let quantized = ffdl_quant::quantize_network(&parent_net, bits)?;
    let f32_bytes = ffdl_quant::model_bytes(&parent_net)?;
    let label = format!("{}-{bits}", parent.arch);
    let v = store.publish(name, &quantized, &label)?;
    if let Some(path) = flags.get("out") {
        let mut buf = Vec::new();
        ffdl::nn::save_network(&quantized, &mut buf)?;
        fs::write(path, &buf)?;
    }
    Ok(format!(
        "quantized {name} generation {} ({}) to {bits}:          published generation {} ({} bytes, {:.1}% of the {f32_bytes}-byte f32 parent)
         store: {}",
        parent.generation,
        parent.arch,
        v.generation,
        v.bytes,
        v.bytes as f64 * 100.0 / f32_bytes as f64,
        store.root().display(),
    ))
}

/// `ffdl model <publish|list|rollback|quantize>`: the versioned model
/// store.
///
/// Unlike the flat commands this one takes an action word before its
/// flags, so it receives the raw argument tail.
///
/// # Errors
///
/// Returns [`CliError`] for a missing/unknown action or any store
/// failure.
pub fn cmd_model(args: &[String]) -> Result<String, CliError> {
    const ACTIONS: &str = "publish, list, rollback, quantize";
    let (action, rest) = args.split_first().ok_or_else(|| {
        CliError(format!("model: missing action (expected one of: {ACTIONS})"))
    })?;
    let flags = Flags::parse(rest)?;
    match action.as_str() {
        "publish" => cmd_model_publish(&flags),
        "list" => cmd_model_list(&flags),
        "rollback" => cmd_model_rollback(&flags),
        "quantize" => cmd_model_quantize(&flags),
        other => Err(CliError(format!(
            "unknown model action {other:?} (expected one of: {ACTIONS})"
        ))),
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "ffdl — FFT-based block-circulant deep learning (Lin et al., DATE 2018)\n\
     \n\
     usage:\n\
       ffdl train      --arch <file> --out <params.ffdp> [--dataset mnist16|mnist11|cifar|cifar16]\n\
                       [--samples N] [--epochs N] [--batch N] [--lr F] [--seed N]\n\
       ffdl infer      --arch <file> --params <file> --inputs <csv>\n\
                       [--platform nexus5|xu3|honor6x] [--impl java|cpp] [--metrics on]\n\
       ffdl inspect    --arch <file> [--params <file>]\n\
       ffdl gen-inputs --out <csv> [--dataset mnist16|...] [--samples N] [--seed N]\n\
       ffdl serve-bench [--workers N] [--batch N] [--requests N] [--dataset mnist16|mnist11]\n\
                       [--wait-us N] [--queue-depth N] [--seed N] [--metrics on]\n\
                       [--swap-every N] [--chaos SEED] [--deadline-ms N]\n\
                       [--quantized 8|12|16]\n\
                       [--tenants N] [--tenant-weights 8,1] [--tenant-classes high,normal]\n\
                       [--rate-rps F] [--rate-limit F] [--slo-ms N] [--duration-ms N]\n\
                       [--max-workers N]\n\
                       [--brownout on] [--ladder f32,int16,int8] [--target-delay-ms N]\n\
                       [--stream on] [--sessions N] [--steps-per-session M]\n\
       ffdl model publish  --store <dir> --name <model> --arch <file>\n\
                       [--params <file>] [--seed N] [--label <arch-label>]\n\
       ffdl model list     --store <dir> [--name <model>]\n\
       ffdl model rollback --store <dir> --name <model> [--to GEN]\n\
       ffdl model quantize --store <dir> --name <model> [--bits 8|12|16]\n\
                       [--from GEN] [--out <file>]\n\
     \n\
     --metrics on enables the ffdl-telemetry registry for the run and\n\
     appends a metrics table (counters, gauges, latency histograms) to\n\
     the command's output.\n\
     \n\
     model publish/list/rollback manage a versioned, checksummed model\n\
     store (ffdl-registry); serve-bench --swap-every N hot-swaps the\n\
     running pool onto a freshly published generation every N requests.\n\
     \n\
     model quantize republishes a generation with every spectral layer\n\
     quantized to --bits fixed point (ffdl-quant, wire format v3); the\n\
     serve pool hot-swaps between f32 and quantized generations like any\n\
     others. serve-bench --quantized BITS serves the quantized form and\n\
     prints its byte and top-1-agreement cost next to the digest.\n\
     \n\
     serve-bench --deadline-ms N sheds requests that wait in the queue\n\
     past their deadline (typed failures, counted in the summary).\n\
     --chaos SEED arms the deterministic fault injector (ffdl-fault)\n\
     for the run: one worker panic, one latency spike, one NaN\n\
     activation and one bit flip on registry reads — same seed, same\n\
     faults, and the summary reports what fired.\n\
     \n\
     serve-bench --tenants N runs the multi-tenant scheduler\n\
     (ffdl-sched): N tenants with per-tenant weights, priority classes\n\
     and optional --rate-limit admission budgets share an autoscaled\n\
     pool (--workers to --max-workers), loaded open-loop with seeded\n\
     Poisson arrivals at --rate-rps per tenant for --duration-ms; the\n\
     report breaks out p50/p99 and SLO attainment (vs --slo-ms) per\n\
     tenant.\n\
     \n\
     serve-bench --tenants N --brownout on enables closed-loop graceful\n\
     degradation (ffdl-brownout): a pre-published precision ladder\n\
     (--ladder, default f32,int16,int8) is walked down under sustained\n\
     queue delay above --target-delay-ms and back up with hysteresis,\n\
     shedding at enqueue while pressure persists; circuit breakers hold\n\
     repeatedly-quarantined rungs out until a half-open probe passes.\n\
     Adding --chaos SEED arms one deterministic overload spike (4x\n\
     arrivals into tenant t0 for a third of the run).\n\
     \n\
     serve-bench --stream serves a block-circulant GRU statefully\n\
     (ffdl-stream): --sessions sticky sessions, each stepped\n\
     --steps-per-session times with per-session hidden state carried\n\
     across requests. The prediction digest is identical for any\n\
     --workers count — streams never share or lose state.\n"
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError(usage().to_string()))?;
    // `model` takes an action word before its flags; every other command
    // is flags-only.
    if cmd == "model" {
        return cmd_model(rest);
    }
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "train" => cmd_train(&flags),
        "infer" => cmd_infer(&flags),
        "inspect" => cmd_inspect(&flags),
        "gen-inputs" => cmd_gen_inputs(&flags),
        "serve-bench" => cmd_serve_bench(&flags),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        // Mirror Flags::expect_only: name the offender, list what exists.
        other => Err(CliError(format!(
            "unknown command {other:?} (expected one of: train, infer, inspect, \
             gen-inputs, serve-bench, model, help)\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Flags::parse(&args).unwrap()
    }

    #[test]
    fn flags_parse_and_lookup() {
        let f = flags(&[("arch", "a.txt"), ("samples", "10")]);
        assert_eq!(f.require("arch").unwrap(), "a.txt");
        assert_eq!(f.get_num("samples", 0usize).unwrap(), 10);
        assert_eq!(f.get_num("epochs", 5usize).unwrap(), 5);
        assert!(f.require("missing").is_err());
        assert!(f.get_num::<usize>("arch", 0).is_err());
    }

    #[test]
    fn flags_reject_malformed() {
        assert!(Flags::parse(&["oops".into()]).is_err());
        assert!(Flags::parse(&["--dangling".into()]).is_err());
        assert!(Flags::parse(&["--a".into(), "1".into(), "--a".into(), "2".into()]).is_err());
    }

    #[test]
    fn dataset_and_platform_resolution() {
        assert_eq!(load_dataset("mnist16", 10, 0).unwrap().sample_shape(), &[256]);
        assert_eq!(load_dataset("mnist11", 10, 0).unwrap().sample_shape(), &[121]);
        assert_eq!(
            load_dataset("cifar", 10, 0).unwrap().sample_shape(),
            &[3, 32, 32]
        );
        assert!(load_dataset("imagenet", 10, 0).is_err());
        assert_eq!(platform_by_name("xu3").unwrap().name, "Odroid XU3");
        assert!(platform_by_name("iphone").is_err());
        assert_eq!(implementation_by_name("java").unwrap(), Implementation::Java);
        assert!(implementation_by_name("rust").is_err());
    }

    #[test]
    fn end_to_end_train_inspect_infer() {
        let dir = std::env::temp_dir().join(format!("ffdl-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let arch = dir.join("net.arch");
        let params = dir.join("weights.ffdp");
        let inputs = dir.join("test.csv");
        fs::write(&arch, "input 121\ncirculant_fc 32 block=16\nrelu\nfc 10\nsoftmax\n").unwrap();

        let out = cmd_train(&flags(&[
            ("arch", arch.to_str().unwrap()),
            ("out", params.to_str().unwrap()),
            ("dataset", "mnist11"),
            ("samples", "120"),
            ("epochs", "6"),
            ("lr", "0.01"),
        ]))
        .unwrap();
        assert!(out.contains("accuracy"), "{out}");
        assert!(params.exists());

        let out = cmd_gen_inputs(&flags(&[
            ("out", inputs.to_str().unwrap()),
            ("dataset", "mnist11"),
            ("samples", "20"),
        ]))
        .unwrap();
        assert!(out.contains("20"), "{out}");

        let out = cmd_inspect(&flags(&[
            ("arch", arch.to_str().unwrap()),
            ("params", params.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(out.contains("circulant_dense"), "{out}");
        assert!(out.contains("compression"), "{out}");

        let out = cmd_infer(&flags(&[
            ("arch", arch.to_str().unwrap()),
            ("params", params.to_str().unwrap()),
            ("inputs", inputs.to_str().unwrap()),
            ("platform", "honor6x"),
            ("impl", "cpp"),
        ]))
        .unwrap();
        assert!(out.contains("accuracy"), "{out}");
        assert!(out.contains("projected embedded runtime"), "{out}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flags_are_named() {
        let f = flags(&[("arch", "a.txt"), ("epoch", "3")]);
        let err = f.expect_only(&["arch", "epochs"]).unwrap_err();
        assert!(err.0.contains("--epoch"), "{err}");
        assert!(err.0.contains("--epochs"), "{err}");
        // Wired into commands: a typo'd flag fails fast with its name.
        let err = cmd_inspect(&flags(&[("arch", "a.txt"), ("prams", "w")])).unwrap_err();
        assert!(err.0.contains("unknown flag --prams"), "{err}");
        assert!(f.expect_only(&["arch", "epoch"]).is_ok());
    }

    #[test]
    fn serve_bench_runs_and_is_deterministic_across_workers() {
        let digest_line = |workers: &str| {
            let out = cmd_serve_bench(&flags(&[
                ("workers", workers),
                ("batch", "8"),
                ("requests", "48"),
                ("dataset", "mnist11"),
                ("seed", "5"),
            ]))
            .unwrap();
            assert!(out.contains("serve stats"), "{out}");
            assert!(out.contains("throughput"), "{out}");
            assert!(out.contains("p99"), "{out}");
            out.lines()
                .find(|l| l.starts_with("prediction digest"))
                .expect("digest line")
                .to_string()
        };
        assert_eq!(digest_line("1"), digest_line("3"));

        let err = cmd_serve_bench(&flags(&[("dataset", "cifar")])).unwrap_err();
        assert!(err.0.contains("unknown serve dataset"), "{err}");
        let err = cmd_serve_bench(&flags(&[("requests", "0")])).unwrap_err();
        assert!(err.0.contains("--requests"), "{err}");
    }

    #[test]
    fn serve_bench_stream_is_deterministic_across_workers() {
        let run = |workers: &str| {
            let out = cmd_serve_bench(&flags(&[
                ("stream", "on"),
                ("sessions", "4"),
                ("steps-per-session", "6"),
                ("workers", workers),
                ("dataset", "mnist11"),
                ("seed", "9"),
            ]))
            .unwrap();
            assert!(out.contains("serve-bench[stream]"), "{out}");
            assert!(out.contains("stream: 4 opened"), "{out}");
            assert!(out.contains("steps answered"), "{out}");
            assert!(out.contains("stream stats"), "{out}");
            out.lines()
                .find(|l| l.starts_with("prediction digest"))
                .expect("digest line")
                .to_string()
        };
        // Sticky per-session state: the digest cannot depend on worker
        // count or cross-session interleaving.
        assert_eq!(run("1"), run("3"));
    }

    #[test]
    fn serve_bench_stream_rejects_incompatible_modes_and_bad_counts() {
        let err = cmd_serve_bench(&flags(&[("stream", "on"), ("tenants", "2")])).unwrap_err();
        assert!(err.0.contains("--stream cannot be combined"), "{err}");
        let err = cmd_serve_bench(&flags(&[("stream", "on"), ("chaos", "7")])).unwrap_err();
        assert!(err.0.contains("--stream cannot be combined"), "{err}");
        let err = cmd_serve_bench(&flags(&[("stream", "on"), ("sessions", "0")])).unwrap_err();
        assert!(err.0.contains("--sessions"), "{err}");
    }

    #[test]
    fn bool_flags_parse_strictly() {
        assert!(!flags(&[]).get_bool("metrics").unwrap());
        assert!(flags(&[("metrics", "on")]).get_bool("metrics").unwrap());
        assert!(flags(&[("metrics", "1")]).get_bool("metrics").unwrap());
        assert!(!flags(&[("metrics", "off")]).get_bool("metrics").unwrap());
        assert!(flags(&[("metrics", "maybe")]).get_bool("metrics").is_err());
    }

    #[test]
    fn metrics_flag_appends_telemetry_tables() {
        // serve-bench --metrics: the merged table carries serving,
        // FFT-plan-cache and per-layer metrics.
        let out = cmd_serve_bench(&flags(&[
            ("workers", "2"),
            ("batch", "8"),
            ("requests", "48"),
            ("dataset", "mnist11"),
            ("seed", "5"),
            ("metrics", "on"),
        ]))
        .unwrap();
        for needle in [
            "telemetry (",
            "ffdl.serve.requests",
            "ffdl.serve.batch_size",
            "ffdl.serve.rejections",
            "ffdl.serve.queue_wait_ns",
            "ffdl.fft.plan_cache.miss",
            "ffdl.nn.forward_ns",
            "ffdl.deploy.predict_ns",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        assert!(out.contains("rejections"), "{out}");

        // Without the flag: no metrics table.
        let quiet = cmd_serve_bench(&flags(&[
            ("requests", "8"),
            ("dataset", "mnist11"),
            ("seed", "5"),
        ]))
        .unwrap();
        assert!(!quiet.contains("telemetry ("), "{quiet}");

        // infer --metrics: the global registry table is appended.
        let dir = std::env::temp_dir().join(format!("ffdl-cli-metrics-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let arch = dir.join("net.arch");
        let params = dir.join("weights.ffdp");
        let inputs = dir.join("test.csv");
        fs::write(&arch, "input 121\ncirculant_fc 16 block=8\nrelu\nfc 10\nsoftmax\n").unwrap();
        cmd_train(&flags(&[
            ("arch", arch.to_str().unwrap()),
            ("out", params.to_str().unwrap()),
            ("dataset", "mnist11"),
            ("samples", "60"),
            ("epochs", "1"),
        ]))
        .unwrap();
        cmd_gen_inputs(&flags(&[
            ("out", inputs.to_str().unwrap()),
            ("dataset", "mnist11"),
            ("samples", "8"),
        ]))
        .unwrap();
        let out = cmd_infer(&flags(&[
            ("arch", arch.to_str().unwrap()),
            ("params", params.to_str().unwrap()),
            ("inputs", inputs.to_str().unwrap()),
            ("metrics", "on"),
        ]))
        .unwrap();
        for needle in ["telemetry (", "ffdl.deploy.predict_ns", "ffdl.deploy.predictions"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dispatches_and_reports_unknown() {
        assert!(run(&[]).is_err());
        assert!(run(&["help".into()]).unwrap().contains("usage"));
        let err = run(&["frobnicate".into()]).unwrap_err();
        assert!(err.0.contains("unknown command"));
        // The error names every available subcommand, like expect_only
        // does for flags.
        for name in ["train", "infer", "inspect", "gen-inputs", "serve-bench", "model", "help"] {
            assert!(err.0.contains(name), "missing {name} in:\n{err}");
        }
        let err = run(&["train".into()]).unwrap_err();
        assert!(err.0.contains("--arch"));
    }

    #[test]
    fn model_lifecycle_publish_list_rollback() {
        let dir = std::env::temp_dir().join(format!("ffdl-cli-model-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let arch = dir.join("net.arch");
        let store = dir.join("store");
        let store_s = store.to_str().unwrap();
        fs::write(&arch, "input 8\ncirculant_fc 8 block=4\nrelu\nfc 3\nsoftmax\n").unwrap();

        // publish twice (different seeds), through the top-level dispatcher
        let out = run(&[
            "model".into(), "publish".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
            "--arch".into(), arch.to_str().unwrap().into(),
            "--seed".into(), "1".into(),
        ])
        .unwrap();
        assert!(out.contains("generation 1"), "{out}");
        assert!(out.contains("arch net"), "{out}"); // label defaults to the file stem
        let out = run(&[
            "model".into(), "publish".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
            "--arch".into(), arch.to_str().unwrap().into(),
            "--seed".into(), "2".into(),
            "--label".into(), "toy".into(),
        ])
        .unwrap();
        assert!(out.contains("generation 2"), "{out}");

        // list: per-model table and store summary
        let out = run(&[
            "model".into(), "list".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
        ])
        .unwrap();
        assert!(out.contains("2 generations, active 2"), "{out}");
        assert!(out.contains("fnv1a"), "{out}");
        let out = run(&["model".into(), "list".into(), "--store".into(), store_s.into()])
            .unwrap();
        assert!(out.contains("demo: 2 generations"), "{out}");

        // rollback: generation 1's bytes become generation 3
        let out = run(&[
            "model".into(), "rollback".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
        ])
        .unwrap();
        assert!(out.contains("generation 1's bytes"), "{out}");
        assert!(out.contains("new active generation 3"), "{out}");
        let out = run(&[
            "model".into(), "list".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
        ])
        .unwrap();
        assert!(out.contains("rollback of 1"), "{out}");

        // failure modes keep their names
        let err = run(&["model".into()]).unwrap_err();
        assert!(err.0.contains("missing action"), "{err}");
        let err = run(&["model".into(), "destroy".into()]).unwrap_err();
        assert!(err.0.contains("unknown model action"), "{err}");
        assert!(err.0.contains("publish, list, rollback"), "{err}");
        let err = run(&[
            "model".into(), "list".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "ghost".into(),
        ])
        .unwrap_err();
        assert!(err.0.contains("ghost"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_quantize_publishes_mixed_precision_generation() {
        let dir = std::env::temp_dir().join(format!("ffdl-cli-quant-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let arch = dir.join("net.arch");
        let store = dir.join("store");
        let store_s = store.to_str().unwrap();
        let out_file = dir.join("quantized.ffdm");
        fs::write(&arch, "input 32\ncirculant_fc 16 block=8\nrelu\nfc 4\nsoftmax\n").unwrap();

        run(&[
            "model".into(), "publish".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
            "--arch".into(), arch.to_str().unwrap().into(),
            "--seed".into(), "1".into(),
        ])
        .unwrap();
        let out = run(&[
            "model".into(), "quantize".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
            "--bits".into(), "16".into(),
            "--out".into(), out_file.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(out.contains("to int16"), "{out}");
        assert!(out.contains("published generation 2"), "{out}");
        // The written file is a version-3 model the full registry reads back.
        let bytes = fs::read(&out_file).unwrap();
        assert_eq!(bytes[4], 3, "expected a v3 file");
        let net = ffdl::nn::load_network(&bytes[..], &ffdl::core::full_registry()).unwrap();
        assert_eq!(net.layers()[0].type_tag(), "quantized_spectral_dense");
        // Both precisions coexist as generations of one model.
        let out = run(&[
            "model".into(), "list".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
        ])
        .unwrap();
        assert!(out.contains("net-int16"), "{out}");
        assert!(out.contains("2 generations, active 2"), "{out}");

        // Re-quantizing the quantized generation is a named error.
        let err = run(&[
            "model".into(), "quantize".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
        ])
        .unwrap_err();
        assert!(err.0.contains("already quantized"), "{err}");
        let err = run(&[
            "model".into(), "quantize".into(),
            "--store".into(), store_s.into(),
            "--name".into(), "demo".into(),
            "--bits".into(), "7".into(),
        ])
        .unwrap_err();
        assert!(err.0.contains("--bits"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_bench_quantized_reports_agreement() {
        let out = cmd_serve_bench(&flags(&[
            ("workers", "2"),
            ("batch", "8"),
            ("requests", "48"),
            ("dataset", "mnist11"),
            ("seed", "5"),
            ("quantized", "16"),
        ]))
        .unwrap();
        assert!(out.contains("quantized: int16"), "{out}");
        assert!(out.contains("top-1 agreement"), "{out}");
        assert!(out.contains("serve stats"), "{out}");

        let err = cmd_serve_bench(&flags(&[
            ("dataset", "mnist11"),
            ("quantized", "9"),
        ]))
        .unwrap_err();
        assert!(err.0.contains("--quantized"), "{err}");
    }

    #[test]
    fn serve_bench_swap_every_reports_generations() {
        let out = cmd_serve_bench(&flags(&[
            ("workers", "2"),
            ("batch", "4"),
            ("requests", "48"),
            ("dataset", "mnist11"),
            ("seed", "11"),
            ("swap-every", "16"),
        ]))
        .unwrap();
        // 48 requests / swap every 16 → swaps at i = 16 and 32.
        assert!(out.contains("hot-swap: 2 registry-mediated swaps"), "{out}");
        assert!(out.contains("final generation 3"), "{out}");
        assert!(out.contains("model generation"), "{out}");
        assert!(out.contains("serve stats"), "{out}");
    }
}
