//! Average pooling — companion to max pooling for CONV stacks.

use crate::error::NnError;
use crate::layer::{Layer, OpCost};
use crate::scratch::Scratch;
use crate::wire;
use ffdl_tensor::Tensor;

/// Average pooling over square windows: input `[batch, C, H, W]` →
/// output `[batch, C, H', W']` with `H' = (H − k)/s + 1`.
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_in_shape: Option<Vec<usize>>,
    last_out_elems: usize,
}

impl AvgPool2d {
    /// Non-overlapping average pooling (`stride == kernel`).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        Self::with_stride(kernel, kernel)
    }

    /// Average pooling with an explicit stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn with_stride(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0, "pooling kernel must be positive");
        assert!(stride > 0, "pooling stride must be positive");
        Self {
            kernel,
            stride,
            cached_in_shape: None,
            last_out_elems: 0,
        }
    }

    /// Pooling window side.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Pooling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    fn out_extent(&self, n: usize) -> Option<usize> {
        if n < self.kernel {
            None
        } else {
            Some((n - self.kernel) / self.stride + 1)
        }
    }
}

impl Layer for AvgPool2d {
    fn type_tag(&self) -> &'static str {
        "avgpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.ndim() != 4 {
            return Err(NnError::BadInput {
                layer: "avgpool2d".into(),
                message: format!("expected [batch, C, H, W], got {:?}", input.shape()),
            });
        }
        let (b, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = match (self.out_extent(h), self.out_extent(w)) {
            (Some(oh), Some(ow)) => (oh, ow),
            _ => {
                return Err(NnError::BadInput {
                    layer: "avgpool2d".into(),
                    message: format!("window {} exceeds spatial size {h}×{w}", self.kernel),
                })
            }
        };
        let x = input.as_slice();
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Vec::with_capacity(b * c * oh * ow);
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += x[plane
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx];
                            }
                        }
                        out.push(acc * inv);
                    }
                }
            }
        }
        self.last_out_elems = out.len() / b.max(1);
        self.cached_in_shape = Some(input.shape().to_vec());
        Ok(Tensor::from_vec(out, &[b, c, oh, ow])?)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        if input.ndim() != 4 {
            return Err(NnError::BadInput {
                layer: "avgpool2d".into(),
                message: format!("expected [batch, C, H, W], got {:?}", input.shape()),
            });
        }
        let (b, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = match (self.out_extent(h), self.out_extent(w)) {
            (Some(oh), Some(ow)) => (oh, ow),
            _ => {
                return Err(NnError::BadInput {
                    layer: "avgpool2d".into(),
                    message: format!("window {} exceeds spatial size {h}×{w}", self.kernel),
                })
            }
        };
        let mut out = scratch.take(&[b, c, oh, ow]);
        let x = input.as_slice();
        let dst = out.as_mut_slice();
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut o = 0;
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += x[plane
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx];
                            }
                        }
                        dst[o] = acc * inv;
                        o += 1;
                    }
                }
            }
        }
        self.last_out_elems = c * oh * ow;
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            kernel: self.kernel,
            stride: self.stride,
            cached_in_shape: None,
            last_out_elems: self.last_out_elems,
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let in_shape = self
            .cached_in_shape
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache("avgpool2d".into()))?;
        let (b, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let oh = self.out_extent(h).expect("validated in forward");
        let ow = self.out_extent(w).expect("validated in forward");
        if grad_output.shape() != [b, c, oh, ow] {
            return Err(NnError::BadInput {
                layer: "avgpool2d".into(),
                message: format!(
                    "expected gradient [{b}, {c}, {oh}, {ow}], got {:?}",
                    grad_output.shape()
                ),
            });
        }
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut grad_in = Tensor::zeros(in_shape);
        let gi = grad_in.as_mut_slice();
        let g = grad_output.as_slice();
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                let gplane = (bi * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let v = g[gplane + oy * ow + ox] * inv;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                gi[plane
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx] += v;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn op_cost(&self) -> OpCost {
        OpCost {
            adds: (self.last_out_elems * self.kernel * self.kernel) as u64,
            mults: self.last_out_elems as u64,
            act_traffic: 2 * self.last_out_elems as u64,
            ..OpCost::default()
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::write_u32(&mut buf, self.kernel as u32).expect("vec write is infallible");
        wire::write_u32(&mut buf, self.stride as u32).expect("vec write is infallible");
        buf
    }
}

/// Reconstructs an [`AvgPool2d`] from its config blob.
///
/// # Errors
///
/// Returns [`NnError::Io`]/[`NnError::ModelFormat`] on malformed config.
pub fn avgpool2d_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let kernel = wire::read_u32(&mut config)? as usize;
    let stride = wire::read_u32(&mut config)? as usize;
    if kernel == 0 || stride == 0 {
        return Err(NnError::ModelFormat(
            "avgpool2d kernel/stride must be positive".into(),
        ));
    }
    Ok(Box::new(AvgPool2d::with_stride(kernel, stride)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[3.5, 5.5, 4.75, 4.5]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
        let _ = pool.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gi = pool.backward(&g).unwrap();
        assert_eq!(gi.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradient_check() {
        let mut pool = AvgPool2d::with_stride(2, 1);
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| (i as f32 * 0.37).sin());
        let y = pool.forward(&x).unwrap();
        let ones = Tensor::ones(y.shape());
        let gi = pool.backward(&ones).unwrap();
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let num = (pool.forward(&xp).unwrap().sum() - y.sum()) / eps;
            assert!((num - gi.as_slice()[i]).abs() < 1e-2, "d[{i}]");
        }
    }

    #[test]
    fn constant_image_invariant() {
        let mut pool = AvgPool2d::new(3);
        let x = Tensor::filled(&[2, 2, 6, 6], 2.5);
        let y = pool.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn validates() {
        let mut pool = AvgPool2d::new(5);
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
        assert!(pool.forward(&Tensor::zeros(&[1, 3, 3])).is_err());
        assert!(matches!(
            pool.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::NoForwardCache(_))
        ));
        let mut pool = AvgPool2d::new(2);
        let _ = pool.forward(&Tensor::zeros(&[1, 1, 4, 4])).unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn config_roundtrip() {
        let pool = AvgPool2d::with_stride(3, 2);
        let rebuilt = avgpool2d_from_config(&pool.config_bytes()).unwrap();
        assert_eq!(rebuilt.type_tag(), "avgpool2d");
        assert!(avgpool2d_from_config(&[0u8; 8]).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_kernel_panics() {
        let _ = AvgPool2d::new(0);
    }
}
