//! The dense (uncompressed) convolutional layer of Eqn. 5, computed via
//! the im2col lowering of Fig. 3: `Y = X·F` with
//! `X ∈ ℝ^{(H−r+1)(W−r+1) × Cr²}` and `F ∈ ℝ^{Cr² × P}`.

use crate::error::NnError;
use crate::layer::{check_features, Layer, OpCost, ParamRef};
use crate::scratch::Scratch;
use crate::wire;
use ffdl_tensor::{
    col2im, filters_to_matrix, filters_to_matrix_into, im2col, im2col_into, matrix_to_filters,
    ConvGeometry, Init, Tensor,
};
use ffdl_rng::Rng;

/// A 2-D convolutional layer: input `[batch, C, H, W]` →
/// output `[batch, P, H_out, W_out]`.
///
/// Filters are stored as `[P, C, r, r]`; the forward pass lowers each
/// sample with [`im2col`] and multiplies by the `[Cr², P]` filter matrix,
/// exactly the software reformulation the paper describes for its OpenCV
/// implementation (§IV-B, Fig. 3).
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    in_h: usize,
    in_w: usize,
    filters: Tensor,      // [P, C, r, r]
    bias: Tensor,         // [P]
    filters_grad: Tensor, // [P, C, r, r]
    bias_grad: Tensor,    // [P]
    /// Cached per-sample im2col matrices from the last forward pass.
    cached_cols: Vec<Tensor>,
}

impl Conv2d {
    /// Creates a convolutional layer with He-normal filters and zero
    /// biases, for inputs of spatial size `in_h × in_w`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] when the kernel does not fit the input.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        geom: ConvGeometry,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        geom.output_extent(in_h)?;
        geom.output_extent(in_w)?;
        let fan_in = in_channels * geom.kernel * geom.kernel;
        let filters = Init::HeNormal.sample(
            &[out_channels, in_channels, geom.kernel, geom.kernel],
            fan_in,
            out_channels,
            rng,
        );
        Ok(Self {
            in_channels,
            out_channels,
            geom,
            in_h,
            in_w,
            filters_grad: Tensor::zeros(&[out_channels, in_channels, geom.kernel, geom.kernel]),
            bias_grad: Tensor::zeros(&[out_channels]),
            filters,
            bias: Tensor::zeros(&[out_channels]),
            cached_cols: Vec::new(),
        })
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.geom
            .output_extent(self.in_h)
            .expect("validated at construction")
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.geom
            .output_extent(self.in_w)
            .expect("validated at construction")
    }

    /// Convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// The filter bank (`[P, C, r, r]`).
    pub fn filters(&self) -> &Tensor {
        &self.filters
    }
}

impl Layer for Conv2d {
    fn type_tag(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        check_features(
            "conv2d",
            input,
            4,
            &[self.in_channels, self.in_h, self.in_w],
        )?;
        let batch = input.shape()[0];
        let (oh, ow) = (self.out_h(), self.out_w());
        let fmat = filters_to_matrix(&self.filters)?; // [Cr², P]
        let plane = self.in_channels * self.in_h * self.in_w;
        let mut out = Vec::with_capacity(batch * self.out_channels * oh * ow);
        self.cached_cols.clear();

        for s in 0..batch {
            let sample = Tensor::from_vec(
                input.as_slice()[s * plane..(s + 1) * plane].to_vec(),
                &[self.in_channels, self.in_h, self.in_w],
            )?;
            let cols = im2col(&sample, self.geom)?; // [oh·ow, Cr²]
            let y = cols.matmul(&fmat)?; // [oh·ow, P]
            // Transpose to [P, oh, ow] layout with bias.
            for p in 0..self.out_channels {
                let b = self.bias.as_slice()[p];
                for pix in 0..oh * ow {
                    out.push(y.at(&[pix, p]) + b);
                }
            }
            self.cached_cols.push(cols);
        }
        Ok(Tensor::from_vec(
            out,
            &[batch, self.out_channels, oh, ow],
        )?)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        check_features(
            "conv2d",
            input,
            4,
            &[self.in_channels, self.in_h, self.in_w],
        )?;
        let batch = input.shape()[0];
        let (oh, ow) = (self.out_h(), self.out_w());
        let cr2 = self.in_channels * self.geom.kernel * self.geom.kernel;
        let plane = self.in_channels * self.in_h * self.in_w;
        let plane_out = self.out_channels * oh * ow;

        let mut fmat = scratch.take(&[cr2, self.out_channels]);
        filters_to_matrix_into(&self.filters, &mut fmat)?;
        let mut out = scratch.take(&[batch, self.out_channels, oh, ow]);
        let mut sample = scratch.take(&[self.in_channels, self.in_h, self.in_w]);
        let mut cols = scratch.take(&[oh * ow, cr2]);
        let mut y = scratch.take(&[oh * ow, self.out_channels]);

        for s in 0..batch {
            sample
                .as_mut_slice()
                .copy_from_slice(&input.as_slice()[s * plane..(s + 1) * plane]);
            im2col_into(&sample, self.geom, &mut cols)?;
            cols.matmul_into(&fmat, &mut y)?;
            // Transpose [oh·ow, P] → [P, oh, ow] with bias.
            let dst = &mut out.as_mut_slice()[s * plane_out..(s + 1) * plane_out];
            let ys = y.as_slice();
            for p in 0..self.out_channels {
                let b = self.bias.as_slice()[p];
                for pix in 0..oh * ow {
                    dst[p * oh * ow + pix] = ys[pix * self.out_channels + p] + b;
                }
            }
        }
        scratch.recycle(fmat);
        scratch.recycle(sample);
        scratch.recycle(cols);
        scratch.recycle(y);
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            geom: self.geom,
            in_h: self.in_h,
            in_w: self.in_w,
            filters: self.filters.clone(),
            bias: self.bias.clone(),
            filters_grad: self.filters_grad.clone(),
            bias_grad: self.bias_grad.clone(),
            cached_cols: Vec::new(),
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_cols.is_empty() {
            return Err(NnError::NoForwardCache("conv2d".into()));
        }
        let (oh, ow) = (self.out_h(), self.out_w());
        check_features("conv2d", grad_output, 4, &[self.out_channels, oh, ow])?;
        let batch = grad_output.shape()[0];
        if batch != self.cached_cols.len() {
            return Err(NnError::BadInput {
                layer: "conv2d".into(),
                message: format!(
                    "gradient batch {batch} does not match cached batch {}",
                    self.cached_cols.len()
                ),
            });
        }

        let fmat = filters_to_matrix(&self.filters)?; // [Cr², P]
        let mut fmat_grad = Tensor::zeros(fmat.shape());
        let mut bias_grad = vec![0.0f32; self.out_channels];
        let plane_out = self.out_channels * oh * ow;
        let mut grad_input =
            Vec::with_capacity(batch * self.in_channels * self.in_h * self.in_w);

        for (s, cols) in self.cached_cols.iter().enumerate() {
            // Reassemble g as [oh·ow, P] from [P, oh, ow].
            let gslice = &grad_output.as_slice()[s * plane_out..(s + 1) * plane_out];
            let mut g = vec![0.0f32; oh * ow * self.out_channels];
            for p in 0..self.out_channels {
                for pix in 0..oh * ow {
                    let v = gslice[p * oh * ow + pix];
                    g[pix * self.out_channels + p] = v;
                    bias_grad[p] += v;
                }
            }
            let g = Tensor::from_vec(g, &[oh * ow, self.out_channels])?;
            // dF_mat += colsᵀ·g; dcols = g·F_matᵀ.
            fmat_grad = fmat_grad.add(&cols.transpose()?.matmul(&g)?)?;
            let dcols = g.matmul(&fmat.transpose()?)?;
            let dx = col2im(&dcols, self.in_channels, self.in_h, self.in_w, self.geom)?;
            grad_input.extend_from_slice(dx.as_slice());
        }

        self.filters_grad = matrix_to_filters(&fmat_grad, self.in_channels, self.geom.kernel)?;
        self.bias_grad = Tensor::from_slice(&bias_grad);
        Ok(Tensor::from_vec(
            grad_input,
            &[batch, self.in_channels, self.in_h, self.in_w],
        )?)
    }

    fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "filters",
                value: &mut self.filters,
                grad: &mut self.filters_grad,
            },
            ParamRef {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.filters.len() + self.bias.len()
    }

    fn op_cost(&self) -> OpCost {
        // O(W·H·r²·C·P) MACs — the complexity the paper quotes for the
        // uncompressed CONV layer.
        let (oh, ow) = (self.out_h(), self.out_w());
        let macs = (oh * ow * self.geom.kernel * self.geom.kernel * self.in_channels
            * self.out_channels) as u64;
        OpCost {
            mults: macs,
            adds: macs,
            nonlin: 0,
            param_reads: self.param_count() as u64,
            act_traffic: (self.in_channels * self.in_h * self.in_w
                + self.out_channels * oh * ow) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in [
            self.in_channels,
            self.out_channels,
            self.in_h,
            self.in_w,
            self.geom.kernel,
            self.geom.stride,
            self.geom.pad,
        ] {
            wire::write_u32(&mut buf, v as u32).expect("vec write is infallible");
        }
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        vec![&self.filters, &self.bias]
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.filters.shape()
            || params[1].shape() != self.bias.shape()
        {
            return Err(NnError::ModelFormat(
                "conv2d parameter shapes do not match".into(),
            ));
        }
        self.filters = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }
}

/// Reconstructs a [`Conv2d`] from its config blob (model-format loader).
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn conv2d_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let mut vals = [0usize; 7];
    for v in &mut vals {
        *v = wire::read_u32(&mut config)? as usize;
    }
    let [cin, cout, h, w, k, s, p] = vals;
    let geom = ConvGeometry {
        kernel: k,
        stride: s,
        pad: p,
    };
    // Deterministic zero-seeded construction; params are loaded afterwards.
    let mut rng = ffdl_rng::rngs::mock::StepRng::new(1, 1);
    let layer = Conv2d::new(cin, cout, h, w, geom, &mut rng)?;
    Ok(Box::new(layer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_tensor::conv2d_direct;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let geom = ConvGeometry::valid(3);
        let mut layer = Conv2d::new(2, 3, 6, 5, geom, &mut rng()).unwrap();
        let x = Tensor::from_fn(&[1, 2, 6, 5], |i| ((i * 7 + 1) % 13) as f32 * 0.1);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 3, 4, 3]);

        let sample = Tensor::from_vec(x.as_slice().to_vec(), &[2, 6, 5]).unwrap();
        let reference = conv2d_direct(&sample, layer.filters(), geom).unwrap();
        for (a, b) in y.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn forward_with_padding_and_stride() {
        let geom = ConvGeometry {
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let mut layer = Conv2d::new(1, 2, 8, 8, geom, &mut rng()).unwrap();
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 9) as f32 - 4.0);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 2, 4, 4]);
    }

    #[test]
    fn bias_shifts_output() {
        let geom = ConvGeometry::valid(1);
        let mut layer = Conv2d::new(1, 1, 2, 2, geom, &mut rng()).unwrap();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y0 = layer.forward(&x).unwrap();
        layer.parameters()[1].value.as_mut_slice()[0] = 2.5;
        let y1 = layer.forward(&x).unwrap();
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            assert!((b - a - 2.5).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_check_small() {
        let geom = ConvGeometry::valid(2);
        let mut layer = Conv2d::new(1, 2, 3, 3, geom, &mut rng()).unwrap();
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| (i as f32 * 0.3).sin());

        let loss = |layer: &mut Conv2d, x: &Tensor| -> f32 {
            let y = layer.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        let y = layer.forward(&x).unwrap();
        let grad_in = layer.backward(&y).unwrap();
        let fg = layer.filters_grad.clone();
        let bg = layer.bias_grad.clone();

        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = grad_in.as_slice()[i];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dx[{i}]: {num} vs {ana}");
        }
        for i in 0..fg.len() {
            let orig = layer.filters.as_slice()[i];
            layer.filters.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.filters.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.filters.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = fg.as_slice()[i];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dF[{i}]: {num} vs {ana}");
        }
        for i in 0..bg.len() {
            let orig = layer.bias.as_slice()[i];
            layer.bias.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = bg.as_slice()[i];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "db[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let geom = ConvGeometry::valid(3);
        let mut layer = Conv2d::new(2, 3, 6, 6, geom, &mut rng()).unwrap();
        assert!(layer.forward(&Tensor::zeros(&[1, 3, 6, 6])).is_err());
        assert!(layer.forward(&Tensor::zeros(&[2, 6, 6])).is_err());
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 3, 4, 4])),
            Err(NnError::NoForwardCache(_))
        ));
        assert!(Conv2d::new(1, 1, 2, 2, ConvGeometry::valid(5), &mut rng()).is_err());
    }

    #[test]
    fn op_cost_matches_formula() {
        let geom = ConvGeometry::valid(3);
        let layer = Conv2d::new(4, 8, 10, 10, geom, &mut rng()).unwrap();
        // oh=ow=8 → 8·8·9·4·8 = 18432 MACs.
        assert_eq!(layer.op_cost().mults, 18432);
    }

    #[test]
    fn config_roundtrip() {
        let geom = ConvGeometry {
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let layer = Conv2d::new(3, 5, 9, 7, geom, &mut rng()).unwrap();
        let rebuilt = conv2d_from_config(&layer.config_bytes()).unwrap();
        assert_eq!(rebuilt.type_tag(), "conv2d");
        assert_eq!(rebuilt.param_count(), layer.param_count());
    }

    #[test]
    fn load_params_roundtrip() {
        let geom = ConvGeometry::valid(2);
        let mut a = Conv2d::new(1, 2, 4, 4, geom, &mut rng()).unwrap();
        let mut b = conv2d_from_config(&a.config_bytes()).unwrap();
        let params: Vec<Tensor> = a.param_tensors().into_iter().cloned().collect();
        b.load_params(&params).unwrap();
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32 * 0.1);
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
        assert!(b.load_params(&[Tensor::zeros(&[1])]).is_err());
    }
}
