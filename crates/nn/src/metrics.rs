//! Evaluation metrics: confusion matrix and derived per-class statistics.

use crate::error::NnError;

/// A `classes × classes` confusion matrix: `counts[actual][predicted]`.
///
/// # Examples
///
/// ```
/// use ffdl_nn::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0);
/// cm.record(0, 1); // one class-0 sample predicted as class 1
/// cm.record(1, 1);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel prediction/label slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on length mismatch or out-of-range
    /// classes.
    pub fn from_predictions(
        predictions: &[usize],
        labels: &[usize],
        classes: usize,
    ) -> Result<Self, NnError> {
        if predictions.len() != labels.len() {
            return Err(NnError::BadInput {
                layer: "confusion_matrix".into(),
                message: format!(
                    "{} predictions for {} labels",
                    predictions.len(),
                    labels.len()
                ),
            });
        }
        let mut cm = Self::new(classes);
        for (&p, &l) in predictions.iter().zip(labels) {
            if p >= classes || l >= classes {
                return Err(NnError::BadInput {
                    layer: "confusion_matrix".into(),
                    message: format!("class index out of range: pred {p}, label {l}"),
                });
            }
            cm.record(l, p);
        }
        Ok(cm)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.classes && predicted < self.classes);
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: `TP / (TP + FP)`; `None` when the class
    /// was never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let predicted: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / predicted as f64)
        }
    }

    /// Recall of one class: `TP / (TP + FN)`; `None` when the class never
    /// occurred.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let actual: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / actual as f64)
        }
    }

    /// Macro-averaged F1 over classes that occurred.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.classes {
            if let (Some(p), Some(r)) = (self.precision(c), self.recall(c)) {
                if p + r > 0.0 {
                    sum += 2.0 * p * r / (p + r);
                }
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actual\\pred")?;
        for p in 0..self.classes {
            write!(f, " {p:>6}")?;
        }
        writeln!(f)?;
        for a in 0..self.classes {
            write!(f, "{a:>11}")?;
            for p in 0..self.classes {
                write!(f, " {:>6}", self.count(a, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // actual 0: 3 correct, 1 as class 1; actual 1: 2 correct.
        ConfusionMatrix::from_predictions(&[0, 0, 0, 1, 1, 1], &[0, 0, 0, 0, 1, 1], 2).unwrap()
    }

    #[test]
    fn counts_and_accuracy() {
        let cm = sample();
        assert_eq!(cm.count(0, 0), 3);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.total(), 6);
        assert!((cm.accuracy() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = sample();
        // class 0: TP 3, FP 0 → precision 1; FN 1 → recall 3/4.
        assert!((cm.precision(0).unwrap() - 1.0).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 0.75).abs() < 1e-12);
        // class 1: TP 2, FP 1 → precision 2/3; FN 0 → recall 1.
        assert!((cm.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1).unwrap() - 1.0).abs() < 1e-12);
        let f1_0 = 2.0 * 0.75 / 1.75;
        let f1_1 = 2.0 * (2.0 / 3.0) / (2.0 / 3.0 + 1.0);
        assert!((cm.macro_f1() - (f1_0 + f1_1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_classes_are_none() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert!(cm.precision(2).is_none());
        assert!(cm.recall(2).is_none());
        assert_eq!(ConfusionMatrix::new(2).accuracy(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(ConfusionMatrix::from_predictions(&[0], &[0, 1], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[5], &[0], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0], &[5], 2).is_err());
    }

    #[test]
    #[should_panic(expected = "class")]
    fn zero_classes_panics() {
        let _ = ConfusionMatrix::new(0);
    }

    #[test]
    fn display_renders_grid() {
        let s = format!("{}", sample());
        assert!(s.contains("actual"));
        assert!(s.lines().count() >= 3);
    }
}
