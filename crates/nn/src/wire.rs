//! Little-endian wire helpers for the binary model format.
//!
//! The paper's deployment pipeline (Fig. 4) reads "a file that contains
//! trained weights and biases"; this module defines the primitive
//! encoding shared by the model writer, the parameters parser and layer
//! config blobs.

use crate::error::NnError;
use ffdl_tensor::Tensor;
use std::io::{Read, Write};

/// FNV-1a 64-bit offset basis.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest of `bytes` — the workspace's in-house integrity
/// checksum (zero dependencies, byte-order independent, and cheap enough
/// to run on every model load).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV1A_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV1A_PRIME);
    }
    h
}

/// A [`Write`] adapter that folds every byte it forwards into a running
/// FNV-1a digest. `save_network` streams the model through one of these
/// so the checksum trailer never needs a second pass over the payload.
pub struct Fnv1aWriter<W> {
    inner: W,
    digest: u64,
}

impl<W: Write> Fnv1aWriter<W> {
    /// Wraps `inner` with a fresh digest.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            digest: FNV1A_OFFSET,
        }
    }

    /// The digest over everything written so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Unwraps, returning the underlying writer (digest bytes written to
    /// it afterwards are *not* hashed — that is the point: the trailer
    /// covers the payload, not itself).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for Fnv1aWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.digest = (self.digest ^ b as u64).wrapping_mul(FNV1A_PRIME);
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The [`Read`] counterpart of [`Fnv1aWriter`]: hashes every byte it
/// hands out, so `load_network` can verify the trailer after parsing
/// without buffering the whole file.
pub struct Fnv1aReader<R> {
    inner: R,
    digest: u64,
}

impl<R: Read> Fnv1aReader<R> {
    /// Wraps `inner` with a fresh digest.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            digest: FNV1A_OFFSET,
        }
    }

    /// The digest over everything read so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Unwraps, returning the underlying reader (trailer bytes read from
    /// it afterwards are not hashed).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for Fnv1aReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.digest = (self.digest ^ b as u64).wrapping_mul(FNV1A_PRIME);
        }
        Ok(n)
    }
}

/// Scheme tag for [`QuantPayload`]: symmetric fixed point, one scale
/// per output block, `value = level · scale`.
pub const QUANT_SCHEME_SYMMETRIC: u32 = 1;

/// Quantization sidecar for one layer in a version-3 model file: the
/// fixed-point weight levels and their block scales, kept out of the
/// generic f32 tensor path so the stored bytes stay narrow (2 bytes per
/// level for int16/int12, 1 byte for int8, instead of 4 for `f32`).
///
/// Layers opt in via [`Layer::quant_payload`](crate::Layer::quant_payload)
/// / [`Layer::load_quant_payload`](crate::Layer::load_quant_payload);
/// the writer emits one header entry per opted-in layer and bumps the
/// file version to 3.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantPayload {
    /// Quantization scheme ([`QUANT_SCHEME_SYMMETRIC`]).
    pub scheme: u32,
    /// Effective bits per level (8, 12 or 16).
    pub bits: u32,
    /// Per-output-block scales.
    pub scales: Vec<f32>,
    /// Interleaved re/im fixed-point levels for every stored spectrum.
    pub levels: Vec<i16>,
}

/// Maps a truncated read inside the v3 quantization header to a *typed*
/// [`NnError::ModelFormat`] naming the missing section — a cut-off
/// header should read as "this file is malformed here", not as a
/// generic EOF.
pub fn quant_section<T>(res: Result<T, NnError>, section: &str) -> Result<T, NnError> {
    match res {
        Err(NnError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(NnError::ModelFormat(format!(
                "truncated v3 quantization header: missing {section}"
            )))
        }
        other => other,
    }
}

/// Writes one v3 quantization-header entry:
/// `layer_index, scheme, bits, n_scales, scales…, n_levels, levels…`.
/// Levels are 1 byte each for 8-bit payloads, little-endian `i16`
/// otherwise.
pub fn write_quant_entry<W: Write>(
    w: &mut W,
    layer_index: u32,
    p: &QuantPayload,
) -> Result<(), NnError> {
    write_u32(w, layer_index)?;
    write_u32(w, p.scheme)?;
    write_u32(w, p.bits)?;
    write_u32(w, p.scales.len() as u32)?;
    for &s in &p.scales {
        write_f32(w, s)?;
    }
    write_u32(w, p.levels.len() as u32)?;
    if p.bits <= 8 {
        for &l in &p.levels {
            w.write_all(&[(l as i8) as u8])?;
        }
    } else {
        for &l in &p.levels {
            w.write_all(&l.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads one entry written by [`write_quant_entry`], returning the layer
/// index it applies to. Truncation anywhere inside the entry yields a
/// typed [`NnError::ModelFormat`] naming the missing section.
pub fn read_quant_entry<R: Read>(r: &mut R) -> Result<(u32, QuantPayload), NnError> {
    let layer_index = quant_section(read_u32(r), "layer index")?;
    let scheme = quant_section(read_u32(r), "scheme")?;
    if scheme != QUANT_SCHEME_SYMMETRIC {
        return Err(NnError::ModelFormat(format!(
            "unknown quantization scheme {scheme}"
        )));
    }
    let bits = quant_section(read_u32(r), "bits")?;
    if !(2..=16).contains(&bits) {
        return Err(NnError::ModelFormat(format!(
            "quantization width {bits} bits outside the supported 2..=16"
        )));
    }
    let n_scales = quant_section(read_u32(r), "scale count")? as usize;
    if n_scales > 1 << 20 {
        return Err(NnError::ModelFormat(format!(
            "scale count {n_scales} exceeds sanity bound"
        )));
    }
    let mut scales = Vec::with_capacity(n_scales);
    for _ in 0..n_scales {
        scales.push(quant_section(read_f32(r), "scales")?);
    }
    let n_levels = quant_section(read_u32(r), "level count")? as usize;
    if n_levels > 1 << 28 {
        return Err(NnError::ModelFormat(format!(
            "level count {n_levels} exceeds sanity bound"
        )));
    }
    let mut levels = Vec::with_capacity(n_levels);
    if bits <= 8 {
        let mut buf = [0u8; 1];
        for _ in 0..n_levels {
            quant_section(r.read_exact(&mut buf).map_err(NnError::Io), "levels")?;
            levels.push(buf[0] as i8 as i16);
        }
    } else {
        let mut buf = [0u8; 2];
        for _ in 0..n_levels {
            quant_section(r.read_exact(&mut buf).map_err(NnError::Io), "levels")?;
            levels.push(i16::from_le_bytes(buf));
        }
    }
    Ok((
        layer_index,
        QuantPayload {
            scheme,
            bits,
            scales,
            levels,
        },
    ))
}

/// Writes a `u32` in little-endian order.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), NnError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Reads a little-endian `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, NnError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes an `f32` in little-endian order.
pub fn write_f32<W: Write>(w: &mut W, v: f32) -> Result<(), NnError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Reads a little-endian `f32`.
pub fn read_f32<R: Read>(r: &mut R) -> Result<f32, NnError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> Result<(), NnError> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string (capped at 1 MiB to bound memory
/// on corrupt files).
pub fn read_string<R: Read>(r: &mut R) -> Result<String, NnError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(NnError::ModelFormat(format!(
            "string length {len} exceeds sanity bound"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| NnError::ModelFormat("string is not UTF-8".into()))
}

/// Writes a tensor as `ndim, dims…, f32 data`.
pub fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> Result<(), NnError> {
    write_u32(w, t.ndim() as u32)?;
    for &d in t.shape() {
        write_u32(w, d as u32)?;
    }
    for &v in t.as_slice() {
        write_f32(w, v)?;
    }
    Ok(())
}

/// Reads a tensor written by [`write_tensor`] (element count capped at
/// 2²⁸ to bound memory on corrupt files).
pub fn read_tensor<R: Read>(r: &mut R) -> Result<Tensor, NnError> {
    let ndim = read_u32(r)? as usize;
    if ndim > 8 {
        return Err(NnError::ModelFormat(format!(
            "tensor rank {ndim} exceeds sanity bound"
        )));
    }
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(read_u32(r)? as usize);
    }
    let n: usize = shape.iter().product();
    if n > 1 << 28 {
        return Err(NnError::ModelFormat(format!(
            "tensor with {n} elements exceeds sanity bound"
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f32(r)?);
    }
    Tensor::from_vec(data, &shape).map_err(|e| NnError::ModelFormat(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        assert_eq!(read_u32(&mut Cursor::new(buf)).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn f32_roundtrip() {
        let mut buf = Vec::new();
        write_f32(&mut buf, -1.25e-3).unwrap();
        assert_eq!(read_f32(&mut Cursor::new(buf)).unwrap(), -1.25e-3);
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "block-circulant ◉").unwrap();
        assert_eq!(
            read_string(&mut Cursor::new(buf)).unwrap(),
            "block-circulant ◉"
        );
    }

    #[test]
    fn string_rejects_giant_length() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert!(matches!(
            read_string(&mut Cursor::new(buf)),
            Err(NnError::ModelFormat(_))
        ));
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32 * 0.5);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tensor_rejects_absurd_rank() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 99).unwrap();
        assert!(matches!(
            read_tensor(&mut Cursor::new(buf)),
            Err(NnError::ModelFormat(_))
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hashing_writer_and_reader_agree_with_oneshot() {
        let payload = b"block-circulant weights".to_vec();
        let mut w = Fnv1aWriter::new(Vec::new());
        w.write_all(&payload).unwrap();
        assert_eq!(w.digest(), fnv1a(&payload));
        let buf = w.into_inner();
        assert_eq!(buf, payload);

        let mut r = Fnv1aReader::new(Cursor::new(buf));
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(r.digest(), fnv1a(&payload));
        assert_eq!(back, payload);
    }

    fn payload(bits: u32) -> QuantPayload {
        QuantPayload {
            scheme: QUANT_SCHEME_SYMMETRIC,
            bits,
            scales: vec![0.25, 0.5, 0.125],
            levels: (-6..6).map(|l| l * 10).collect(),
        }
    }

    #[test]
    fn quant_entry_roundtrip_all_widths() {
        for bits in [8u32, 12, 16] {
            let p = payload(bits);
            let mut buf = Vec::new();
            write_quant_entry(&mut buf, 7, &p).unwrap();
            let (idx, back) = read_quant_entry(&mut Cursor::new(buf)).unwrap();
            assert_eq!(idx, 7);
            assert_eq!(back, p, "width {bits}");
        }
    }

    #[test]
    fn quant_entry_int8_levels_are_single_bytes() {
        let mut wide = Vec::new();
        write_quant_entry(&mut wide, 0, &payload(16)).unwrap();
        let mut narrow = Vec::new();
        write_quant_entry(&mut narrow, 0, &payload(8)).unwrap();
        assert_eq!(wide.len() - narrow.len(), payload(8).levels.len());
    }

    #[test]
    fn truncated_quant_entry_names_missing_section() {
        let p = payload(16);
        let mut full = Vec::new();
        write_quant_entry(&mut full, 3, &p).unwrap();
        // Cut points inside each section of the entry, with the section
        // name the error must carry.
        for (keep, section) in [
            (2, "layer index"),
            (6, "scheme"),
            (10, "bits"),
            (14, "scale count"),
            (18, "scales"),
            (16 + 12 + 2, "level count"),
            (16 + 12 + 4 + 3, "levels"),
        ] {
            let cut = full[..keep].to_vec();
            match read_quant_entry(&mut Cursor::new(cut)) {
                Err(NnError::ModelFormat(msg)) => {
                    assert!(
                        msg.contains("truncated v3 quantization header")
                            && msg.contains(section),
                        "cut at {keep}: {msg}"
                    );
                }
                other => panic!("cut at {keep}: expected ModelFormat, got {other:?}"),
            }
        }
    }

    #[test]
    fn quant_entry_rejects_unknown_scheme_and_width() {
        let mut p = payload(16);
        p.scheme = 9;
        let mut buf = Vec::new();
        write_quant_entry(&mut buf, 0, &p).unwrap();
        assert!(matches!(
            read_quant_entry(&mut Cursor::new(buf)),
            Err(NnError::ModelFormat(msg)) if msg.contains("scheme")
        ));

        let mut p = payload(16);
        p.bits = 64;
        let mut buf = Vec::new();
        write_quant_entry(&mut buf, 0, &p).unwrap();
        assert!(matches!(
            read_quant_entry(&mut Cursor::new(buf)),
            Err(NnError::ModelFormat(msg)) if msg.contains("64 bits")
        ));
    }

    #[test]
    fn truncated_input_is_io_error() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2).unwrap(); // claims rank 2 then stops
        assert!(matches!(
            read_tensor(&mut Cursor::new(buf)),
            Err(NnError::Io(_))
        ));
    }
}
