//! Little-endian wire helpers for the binary model format.
//!
//! The paper's deployment pipeline (Fig. 4) reads "a file that contains
//! trained weights and biases"; this module defines the primitive
//! encoding shared by the model writer, the parameters parser and layer
//! config blobs.

use crate::error::NnError;
use ffdl_tensor::Tensor;
use std::io::{Read, Write};

/// Writes a `u32` in little-endian order.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), NnError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Reads a little-endian `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, NnError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes an `f32` in little-endian order.
pub fn write_f32<W: Write>(w: &mut W, v: f32) -> Result<(), NnError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Reads a little-endian `f32`.
pub fn read_f32<R: Read>(r: &mut R) -> Result<f32, NnError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> Result<(), NnError> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string (capped at 1 MiB to bound memory
/// on corrupt files).
pub fn read_string<R: Read>(r: &mut R) -> Result<String, NnError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(NnError::ModelFormat(format!(
            "string length {len} exceeds sanity bound"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| NnError::ModelFormat("string is not UTF-8".into()))
}

/// Writes a tensor as `ndim, dims…, f32 data`.
pub fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> Result<(), NnError> {
    write_u32(w, t.ndim() as u32)?;
    for &d in t.shape() {
        write_u32(w, d as u32)?;
    }
    for &v in t.as_slice() {
        write_f32(w, v)?;
    }
    Ok(())
}

/// Reads a tensor written by [`write_tensor`] (element count capped at
/// 2²⁸ to bound memory on corrupt files).
pub fn read_tensor<R: Read>(r: &mut R) -> Result<Tensor, NnError> {
    let ndim = read_u32(r)? as usize;
    if ndim > 8 {
        return Err(NnError::ModelFormat(format!(
            "tensor rank {ndim} exceeds sanity bound"
        )));
    }
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(read_u32(r)? as usize);
    }
    let n: usize = shape.iter().product();
    if n > 1 << 28 {
        return Err(NnError::ModelFormat(format!(
            "tensor with {n} elements exceeds sanity bound"
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f32(r)?);
    }
    Tensor::from_vec(data, &shape).map_err(|e| NnError::ModelFormat(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        assert_eq!(read_u32(&mut Cursor::new(buf)).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn f32_roundtrip() {
        let mut buf = Vec::new();
        write_f32(&mut buf, -1.25e-3).unwrap();
        assert_eq!(read_f32(&mut Cursor::new(buf)).unwrap(), -1.25e-3);
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "block-circulant ◉").unwrap();
        assert_eq!(
            read_string(&mut Cursor::new(buf)).unwrap(),
            "block-circulant ◉"
        );
    }

    #[test]
    fn string_rejects_giant_length() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert!(matches!(
            read_string(&mut Cursor::new(buf)),
            Err(NnError::ModelFormat(_))
        ));
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32 * 0.5);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tensor_rejects_absurd_rank() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 99).unwrap();
        assert!(matches!(
            read_tensor(&mut Cursor::new(buf)),
            Err(NnError::ModelFormat(_))
        ));
    }

    #[test]
    fn truncated_input_is_io_error() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2).unwrap(); // claims rank 2 then stops
        assert!(matches!(
            read_tensor(&mut Cursor::new(buf)),
            Err(NnError::Io(_))
        ));
    }
}
