//! Softmax output layer (the paper's classification head) and the
//! combined softmax + cross-entropy loss used for training.

use crate::error::NnError;
use crate::layer::{Layer, OpCost};
use crate::scratch::Scratch;
use ffdl_tensor::Tensor;

/// Numerically-stable row-wise softmax of a `[batch, classes]` tensor.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor, NnError> {
    if logits.ndim() != 2 {
        return Err(NnError::BadInput {
            layer: "softmax".into(),
            message: format!("expected [batch, classes], got {:?}", logits.shape()),
        });
    }
    let mut out = logits.clone();
    normalize_rows(&mut out);
    Ok(out)
}

/// In-place row normalization shared by [`softmax_rows`] and the
/// allocation-free inference path.
fn normalize_rows(out: &mut Tensor) {
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Softmax as a network layer — used at inference time so the deployment
/// engine emits probabilities, matching the paper's "softmax layer ... of
/// 10 neurons representing the ten possible predictions".
///
/// During training, prefer feeding raw logits to
/// [`SoftmaxCrossEntropy`](crate::SoftmaxCrossEntropy), whose combined
/// gradient is simpler and better conditioned.
#[derive(Debug, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Softmax {
    fn type_tag(&self) -> &'static str {
        "softmax"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = softmax_rows(input)?;
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        if input.ndim() != 2 {
            return Err(NnError::BadInput {
                layer: "softmax".into(),
                message: format!("expected [batch, classes], got {:?}", input.shape()),
            });
        }
        let mut out = scratch.take(input.shape());
        out.as_mut_slice().copy_from_slice(input.as_slice());
        normalize_rows(&mut out);
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            cached_output: None,
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache("softmax".into()))?;
        if grad_output.shape() != y.shape() {
            return Err(NnError::BadInput {
                layer: "softmax".into(),
                message: format!(
                    "gradient shape {:?} does not match output {:?}",
                    grad_output.shape(),
                    y.shape()
                ),
            });
        }
        // dL/dx_i = y_i · (g_i − Σ_j g_j y_j) per row (softmax Jacobian).
        let mut grad_in = Tensor::zeros(y.shape());
        for r in 0..y.rows() {
            let yr = y.row(r);
            let gr = grad_output.row(r);
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            for (o, (&yi, &gi)) in grad_in.row_mut(r).iter_mut().zip(yr.iter().zip(gr)) {
                *o = yi * (gi - dot);
            }
        }
        Ok(grad_in)
    }

    fn op_cost(&self) -> OpCost {
        let n = self
            .cached_output
            .as_ref()
            .map(|t| t.cols() as u64)
            .unwrap_or(0);
        OpCost {
            nonlin: 2 * n, // exp + normalize
            adds: n,
            act_traffic: 2 * n,
            ..OpCost::default()
        }
    }
}

/// Reconstructs a [`Softmax`] (it has no config).
///
/// # Errors
///
/// Never fails; the signature matches the layer-registry convention.
pub fn softmax_from_config(_config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    Ok(Box::new(Softmax::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = Tensor::from_vec(vec![1001.0, 1002.0, 1003.0], &[1, 3]).unwrap();
        let pa = softmax_rows(&a).unwrap();
        let pb = softmax_rows(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn monotone_in_logits() {
        let logits = Tensor::from_vec(vec![0.0, 1.0, -2.0], &[1, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        assert!(p.as_slice()[1] > p.as_slice()[0]);
        assert!(p.as_slice()[0] > p.as_slice()[2]);
    }

    #[test]
    fn layer_backward_jacobian_check() {
        let mut layer = Softmax::new();
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.9, 0.1], &[1, 4]).unwrap();
        let _y = layer.forward(&x).unwrap();
        // Loss = Σ c_i y_i with arbitrary coefficients.
        let coeff = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.5], &[1, 4]).unwrap();
        let gi = layer.backward(&coeff).unwrap();
        let eps = 1e-3f32;
        let loss = |layer: &mut Softmax, x: &Tensor| {
            let y = layer.forward(x).unwrap();
            y.as_slice()
                .iter()
                .zip(coeff.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            assert!(
                (num - gi.as_slice()[i]).abs() < 1e-3,
                "d[{i}]: {num} vs {}",
                gi.as_slice()[i]
            );
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(softmax_rows(&Tensor::zeros(&[3])).is_err());
        let mut layer = Softmax::new();
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::NoForwardCache(_))
        ));
        let _ = layer.forward(&Tensor::zeros(&[1, 3])).unwrap();
        assert!(layer.backward(&Tensor::zeros(&[1, 4])).is_err());
    }

    #[test]
    fn from_config_and_cost() {
        let l = softmax_from_config(&[]).unwrap();
        assert_eq!(l.type_tag(), "softmax");
        let mut layer = Softmax::new();
        let _ = layer.forward(&Tensor::zeros(&[2, 10])).unwrap();
        assert_eq!(layer.op_cost().nonlin, 20);
    }
}
