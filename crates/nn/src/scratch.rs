//! Reusable forward-pass workspace for the serving hot path.
//!
//! [`Scratch`] is a free-list of [`Tensor`]s a worker threads through
//! [`Network::forward_batch_with`](crate::Network::forward_batch_with):
//! every intermediate activation is drawn from the pool and recycled
//! after the next layer consumes it, so once each call site has claimed
//! a buffer of its steady-state size, a forward pass performs **zero
//! heap allocations**. The pool leans on the tensor's copy-on-write
//! storage: a recycled tensor whose buffer is still shared (e.g. a
//! reshape alias of a live response) is simply skipped by
//! [`Scratch::take`] until its co-owner drops.

use ffdl_tensor::Tensor;

/// Tensors retained per pool; forward passes cycle a handful of
/// activation buffers, so anything beyond this is a leak signal and is
/// dropped instead of hoarded.
const MAX_POOLED: usize = 64;

/// A pool of recyclable tensors for allocation-free forward passes.
///
/// Not thread-safe by design: each serving worker owns one `Scratch`
/// next to its own network clone, mirroring the share-nothing layout of
/// the worker pool.
#[derive(Default)]
pub struct Scratch {
    free: Vec<Tensor>,
}

impl Scratch {
    /// An empty pool (buffers are claimed lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zeroed tensor of `shape`, reusing a pooled buffer
    /// when a uniquely-owned one is available — preferring the smallest
    /// that already fits so big buffers stay with big call sites.
    pub fn take(&mut self, shape: &[usize]) -> Tensor {
        let need: usize = shape.iter().product();
        let mut pick: Option<usize> = None;
        for (i, t) in self.free.iter().enumerate() {
            if !t.is_unique() {
                continue; // buffer still shared with a live tensor
            }
            let cap = t.len();
            match pick {
                None => pick = Some(i),
                Some(j) => {
                    let best = self.free[j].len();
                    let fits = cap >= need;
                    let best_fits = best >= need;
                    // A fitting buffer beats a non-fitting one; among
                    // fitting buffers prefer the smallest, among
                    // non-fitting ones the largest (least to grow).
                    let better = if fits {
                        !best_fits || cap < best
                    } else {
                        !best_fits && cap > best
                    };
                    if better {
                        pick = Some(i);
                    }
                }
            }
        }
        match pick {
            Some(i) => {
                let mut t = self.free.swap_remove(i);
                t.reuse_as(shape);
                t
            }
            None => Tensor::zeros(shape),
        }
    }

    /// Returns a tensor to the pool for later reuse.
    pub fn recycle(&mut self, t: Tensor) {
        if self.free.len() < MAX_POOLED {
            self.free.push(t);
        }
    }

    /// Number of tensors currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_recycled_buffer() {
        let mut s = Scratch::new();
        let a = s.take(&[4, 4]);
        assert_eq!(a.shape(), &[4, 4]);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
        s.recycle(a);
        assert_eq!(s.pooled(), 1);
        let b = s.take(&[2, 8]); // same element count: buffer reused
        assert_eq!(b.shape(), &[2, 8]);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn take_skips_shared_buffers() {
        let mut s = Scratch::new();
        let a = s.take(&[4]);
        let alias = a.clone();
        s.recycle(a);
        let b = s.take(&[4]);
        assert!(!b.shares_buffer(&alias)); // pooled-but-shared skipped
        drop(alias);
        s.recycle(b);
        assert_eq!(s.pooled(), 2);
        let c = s.take(&[4]);
        // One of the two pooled buffers is unique again and gets reused.
        assert_eq!(s.pooled(), 1);
        drop(c);
    }

    #[test]
    fn take_prefers_smallest_fitting_buffer() {
        let mut s = Scratch::new();
        s.recycle(Tensor::zeros(&[100]));
        s.recycle(Tensor::zeros(&[8]));
        s.recycle(Tensor::zeros(&[2]));
        let t = s.take(&[6]);
        assert_eq!(t.len(), 6);
        // The 8-element buffer was picked; 100 and 2 remain.
        let lens: Vec<usize> = (0..2).map(|_| s.take(&[1]).len()).collect();
        assert!(lens.contains(&1));
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn zeroed_after_reuse() {
        let mut s = Scratch::new();
        let mut a = s.take(&[3]);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        s.recycle(a);
        let b = s.take(&[3]);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }
}
