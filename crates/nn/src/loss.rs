//! Training losses.

use crate::error::NnError;
use crate::softmax::softmax_rows;
use ffdl_tensor::Tensor;

/// Combined softmax + cross-entropy loss over integer class labels.
///
/// Takes raw logits `[batch, classes]`; returns the mean loss and the
/// gradient with respect to the logits, `(softmax(x) − onehot(y)) / batch`.
/// Fusing the two avoids the ill-conditioned softmax Jacobian.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes `(mean loss, dL/dlogits)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `logits` is not
    /// `[batch, classes]`, the label count differs from the batch size, or
    /// a label is out of range.
    pub fn compute(&self, logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
        if logits.ndim() != 2 {
            return Err(NnError::BadInput {
                layer: "softmax_cross_entropy".into(),
                message: format!("expected [batch, classes], got {:?}", logits.shape()),
            });
        }
        let (batch, classes) = (logits.rows(), logits.cols());
        if labels.len() != batch {
            return Err(NnError::BadInput {
                layer: "softmax_cross_entropy".into(),
                message: format!("{} labels for batch of {batch}", labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(NnError::BadInput {
                layer: "softmax_cross_entropy".into(),
                message: format!("label {bad} out of range for {classes} classes"),
            });
        }
        if batch == 0 {
            return Err(NnError::BadInput {
                layer: "softmax_cross_entropy".into(),
                message: "empty batch".into(),
            });
        }

        let probs = softmax_rows(logits)?;
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        let inv_batch = 1.0 / batch as f32;
        for (r, &label) in labels.iter().enumerate() {
            let p = probs.at(&[r, label]).max(1e-12);
            loss -= p.ln();
            let row = grad.row_mut(r);
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_batch;
            }
        }
        Ok((loss * inv_batch, grad))
    }
}

/// Mean-squared-error loss against a target tensor of the same shape.
///
/// Returns `(mean loss, dL/dpred)`. Used by regression-style tests and
/// gradient checks.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanSquaredError;

impl MeanSquaredError {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes `(mean loss, gradient)` where
    /// `loss = mean((pred − target)²) / 2`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] on shape mismatch.
    pub fn compute(&self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), NnError> {
        let diff = pred.sub(target)?;
        let n = diff.len().max(1) as f32;
        let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / (2.0 * n);
        let grad = diff.scale(1.0 / n);
        Ok((loss, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]).unwrap();
        let (loss, _) = SoftmaxCrossEntropy::new().compute(&logits, &[0]).unwrap();
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn uniform_prediction_loss_is_ln_classes() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 3, 5, 9])
            .unwrap();
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], &[1, 3]).unwrap();
        let (_, grad) = SoftmaxCrossEntropy::new().compute(&logits, &[1]).unwrap();
        let probs = softmax_rows(&logits).unwrap();
        assert!((grad.as_slice()[0] - probs.as_slice()[0]).abs() < 1e-6);
        assert!((grad.as_slice()[1] - (probs.as_slice()[1] - 1.0)).abs() < 1e-6);
        // Gradient rows sum to ~0.
        let s: f32 = grad.as_slice().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn gradient_check_cross_entropy() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.0, 0.5, -0.1], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let loss_fn = SoftmaxCrossEntropy::new();
        let (_, grad) = loss_fn.compute(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (loss_fn.compute(&lp, &labels).unwrap().0
                - loss_fn.compute(&lm, &labels).unwrap().0)
                / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[i]).abs() < 1e-3,
                "d[{i}]: {num} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn validates_labels_and_shapes() {
        let ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[2, 3]);
        assert!(ce.compute(&logits, &[0]).is_err()); // wrong count
        assert!(ce.compute(&logits, &[0, 3]).is_err()); // out of range
        assert!(ce.compute(&Tensor::zeros(&[3]), &[0]).is_err()); // rank
        assert!(ce.compute(&Tensor::zeros(&[0, 3]), &[]).is_err()); // empty
    }

    #[test]
    fn mse_basics() {
        let mse = MeanSquaredError::new();
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 2.0]);
        let (loss, grad) = mse.compute(&pred, &target).unwrap();
        assert!((loss - 0.25).abs() < 1e-6); // (1 + 0)/(2·2)
        assert_eq!(grad.as_slice(), &[0.5, 0.0]);
        assert!(mse.compute(&pred, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn mse_gradient_check() {
        let mse = MeanSquaredError::new();
        let pred = Tensor::from_slice(&[0.3, -0.9, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0, 1.0]);
        let (_, grad) = mse.compute(&pred, &target).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut pp = pred.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = pred.clone();
            pm.as_mut_slice()[i] -= eps;
            let num = (mse.compute(&pp, &target).unwrap().0
                - mse.compute(&pm, &target).unwrap().0)
                / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-4);
        }
    }
}
