//! The sequential [`Network`] container: forward/backward across layers,
//! a mini-batch training step, and accuracy evaluation.

use crate::error::NnError;
use crate::layer::{Layer, OpCost, ParamRef};
use crate::loss::SoftmaxCrossEntropy;
use crate::optimizer::Sgd;
use crate::scratch::Scratch;
use ffdl_tensor::Tensor;

/// A feed-forward stack of [`Layer`]s executed in order.
///
/// # Examples
///
/// ```
/// use ffdl_nn::{Dense, Network, Relu, Sgd, SoftmaxCrossEntropy};
/// use ffdl_tensor::Tensor;
/// use ffdl_rng::SeedableRng;
///
/// let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(0);
/// let mut net = Network::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 3, &mut rng));
///
/// let x = Tensor::zeros(&[2, 4]);
/// let logits = net.forward(&x)?;
/// assert_eq!(logits.shape(), &[2, 3]);
///
/// let mut opt = Sgd::with_momentum(0.001, 0.9); // the paper's setting
/// let loss = net.train_batch(&x, &[0, 2], &SoftmaxCrossEntropy::new(), &mut opt)?;
/// assert!(loss.is_finite());
/// # Ok::<(), ffdl_nn::NnError>(())
/// ```
#[derive(Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer (used by the model loader and the
    /// architecture parser).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Removes and returns the last layer, if any.
    ///
    /// Training code uses this to detach a trailing inference-time
    /// `softmax` so the fused [`SoftmaxCrossEntropy`] loss sees raw
    /// logits (applying softmax twice flattens gradients), reattaching it
    /// afterwards.
    pub fn pop_layer(&mut self) -> Option<Box<dyn Layer>> {
        self.layers.pop()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs the full forward pass.
    ///
    /// When global telemetry is enabled (`ffdl_telemetry::enabled()`),
    /// each layer's wall time lands in a
    /// `ffdl.nn.layer_forward_ns.<type_tag>` histogram and the pass
    /// itself in `ffdl.nn.forward_ns` — the per-stage profile CirCNN's
    /// FFT → elementwise → IFFT pipeline analysis rests on. Disabled
    /// (the default), the cost is one relaxed bool load.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (shape mismatch etc.).
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if ffdl_telemetry::enabled() {
            return self.forward_instrumented(input);
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// The telemetry-on forward path: identical computation, plus one
    /// span per layer and one for the whole pass, recorded into the
    /// global registry.
    fn forward_instrumented(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let whole = ffdl_telemetry::span("ffdl.nn.forward_ns");
        let mut x = input.clone();
        for layer in &mut self.layers {
            let span =
                ffdl_telemetry::span(&format!("ffdl.nn.layer_forward_ns.{}", layer.type_tag()));
            x = layer.forward(&x)?;
            drop(span);
        }
        drop(whole);
        Ok(x)
    }

    /// Runs one forward pass over a coalesced batch of per-sample
    /// tensors: the samples are stacked into a single `[n, d…]` tensor
    /// and pushed through the layer stack **once**, so per-call costs
    /// (weight-spectrum FFTs in circulant layers, per-layer dispatch,
    /// activation allocation) are paid per batch instead of per sample.
    /// This is the kernel-level half of the serving runtime's dynamic
    /// batcher.
    ///
    /// Row `r` of the output corresponds to `samples[r]`, bit-identically
    /// to running [`Network::forward`] on that sample alone (all layers
    /// process batch rows independently).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `samples` is empty or the
    /// sample shapes disagree; propagates layer errors.
    pub fn forward_batch(&mut self, samples: &[&Tensor]) -> Result<Tensor, NnError> {
        let stacked = Tensor::stack(samples).map_err(|e| NnError::BadInput {
            layer: "network".into(),
            message: format!("forward_batch: {e}"),
        })?;
        self.forward(&stacked)
    }

    /// Allocation-recycling variant of [`Network::forward_batch`]: stacks
    /// the samples into a scratch-owned tensor and threads every
    /// intermediate activation through `scratch`, recycling each layer's
    /// input as soon as the layer has produced its output. After a warmup
    /// call the steady state performs **zero per-request heap
    /// allocations** for layers whose `forward_infer` is allocation-free
    /// (all built-in layers on power-of-two FFT blocks).
    ///
    /// The result tensor is owned by the caller; recycle it back into
    /// `scratch` when done to keep the pool warm.
    ///
    /// Outputs are bit-identical to [`Network::forward_batch`] (and hence
    /// to per-row [`Network::forward`]): `forward_infer` runs the same
    /// arithmetic in the same order, it only skips backward caches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `samples` is empty or the
    /// sample shapes disagree; propagates layer errors.
    pub fn forward_batch_with(
        &mut self,
        samples: &[&Tensor],
        scratch: &mut Scratch,
    ) -> Result<Tensor, NnError> {
        let mut x = scratch.take(&[0]);
        if let Err(e) = Tensor::stack_into(samples, &mut x) {
            scratch.recycle(x);
            return Err(NnError::BadInput {
                layer: "network".into(),
                message: format!("forward_batch: {e}"),
            });
        }
        // Same instrumentation as Network::forward when telemetry is
        // on; disabled (the serving steady state) this is one relaxed
        // bool load and no allocation.
        let telemetry_on = ffdl_telemetry::enabled();
        let whole = telemetry_on.then(|| ffdl_telemetry::span("ffdl.nn.forward_ns"));
        for layer in &mut self.layers {
            let span = telemetry_on.then(|| {
                ffdl_telemetry::span(&format!("ffdl.nn.layer_forward_ns.{}", layer.type_tag()))
            });
            let result = layer.forward_infer(&x, scratch);
            drop(span);
            match result {
                Ok(y) => {
                    scratch.recycle(x);
                    x = y;
                }
                Err(e) => {
                    scratch.recycle(x);
                    return Err(e);
                }
            }
        }
        drop(whole);
        Ok(x)
    }

    /// Runs the full backward pass, returning the gradient with respect to
    /// the network input.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; in particular
    /// [`NnError::NoForwardCache`] when called before [`Network::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All trainable parameters, layer by layer, in a stable order.
    pub fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .collect()
    }

    /// One SGD step on a mini-batch: forward, loss, backward, update.
    /// Returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_batch(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        loss: &SoftmaxCrossEntropy,
        optimizer: &mut Sgd,
    ) -> Result<f32, NnError> {
        let logits = self.forward(inputs)?;
        let (loss_value, grad) = loss.compute(&logits, labels)?;
        self.backward(&grad)?;
        optimizer.step(&mut self.parameters());
        Ok(loss_value)
    }

    /// Predicted class per sample: row-wise argmax of the network output.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; the output must be `[batch, classes]`.
    pub fn predict(&mut self, inputs: &Tensor) -> Result<Vec<usize>, NnError> {
        let logits = self.forward(inputs)?;
        if logits.ndim() != 2 {
            return Err(NnError::BadInput {
                layer: "network".into(),
                message: format!("predict needs [batch, classes] output, got {:?}", logits.shape()),
            });
        }
        Ok((0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Classification accuracy on a labelled batch, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors and label-count mismatches.
    pub fn accuracy(&mut self, inputs: &Tensor, labels: &[usize]) -> Result<f32, NnError> {
        let preds = self.predict(inputs)?;
        if preds.len() != labels.len() {
            return Err(NnError::BadInput {
                layer: "network".into(),
                message: format!("{} predictions for {} labels", preds.len(), labels.len()),
            });
        }
        if labels.is_empty() {
            return Ok(0.0);
        }
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f32 / labels.len() as f32)
    }

    /// Total stored parameters across all layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total parameters an uncompressed network of the same architecture
    /// would store.
    pub fn logical_param_count(&self) -> usize {
        self.layers.iter().map(|l| l.logical_param_count()).sum()
    }

    /// Storage compression ratio `logical / stored` (1.0 for an
    /// uncompressed network; ≥ 1 when block-circulant layers are present).
    pub fn compression_ratio(&self) -> f32 {
        let stored = self.param_count();
        if stored == 0 {
            return 1.0;
        }
        self.logical_param_count() as f32 / stored as f32
    }

    /// Aggregate single-sample forward cost (for the platform model).
    ///
    /// Layer costs reflect the most recent forward pass for layers whose
    /// cost depends on activation sizes; run one forward first.
    pub fn op_cost(&self) -> OpCost {
        self.layers
            .iter()
            .map(|l| l.op_cost())
            .fold(OpCost::default(), OpCost::combine)
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tags: Vec<&str> = self.layers.iter().map(|l| l.type_tag()).collect();
        f.debug_struct("Network")
            .field("layers", &tags)
            .field("params", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn xor_net(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new();
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(16, 2, &mut rng));
        net
    }

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0],
            &[4, 2],
        )
        .unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn forward_shapes_flow() {
        let mut net = xor_net(3);
        let y = net.forward(&Tensor::zeros(&[5, 2])).unwrap();
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn learns_xor() {
        let mut net = xor_net(1);
        let (x, labels) = xor_data();
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            last = net.train_batch(&x, &labels, &loss, &mut opt).unwrap();
        }
        assert!(last < 0.05, "final loss {last}");
        assert_eq!(net.accuracy(&x, &labels).unwrap(), 1.0);
    }

    #[test]
    fn training_reduces_loss_monotonically_in_aggregate() {
        let mut net = xor_net(2);
        let (x, labels) = xor_data();
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let first = net.train_batch(&x, &labels, &loss, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..100 {
            last = net.train_batch(&x, &labels, &loss, &mut opt).unwrap();
        }
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn predict_and_accuracy() {
        let mut net = xor_net(4);
        let (x, labels) = xor_data();
        let preds = net.predict(&x).unwrap();
        assert_eq!(preds.len(), 4);
        let acc = net.accuracy(&x, &labels).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(net.accuracy(&x, &[0]).is_err());
    }

    #[test]
    fn forward_batch_with_matches_plain_forward() {
        let mut net = xor_net(10);
        let (x, _) = xor_data();
        let rows: Vec<Tensor> = (0..4).map(|r| Tensor::from_slice(x.row(r))).collect();
        let refs: Vec<&Tensor> = rows.iter().collect();
        let expected = net.forward(&x).unwrap();

        let mut scratch = Scratch::new();
        let warm = net.forward_batch_with(&refs, &mut scratch).unwrap();
        assert_eq!(warm.shape(), expected.shape());
        assert_eq!(warm.as_slice(), expected.as_slice());
        scratch.recycle(warm);

        // Steady state: buffers come back from the pool, results identical.
        let again = net.forward_batch_with(&refs, &mut scratch).unwrap();
        assert_eq!(again.as_slice(), expected.as_slice());
        assert!(scratch.pooled() > 0, "intermediates were not recycled");

        assert!(net
            .forward_batch_with(&[], &mut scratch)
            .is_err());
    }

    #[test]
    fn param_counts_aggregate() {
        let net = xor_net(5);
        // 2·16+16 + 16·2+2 = 48 + 34 = 82.
        assert_eq!(net.param_count(), 82);
        assert_eq!(net.logical_param_count(), 82);
        assert_eq!(net.compression_ratio(), 1.0);
    }

    #[test]
    fn parameters_enumerates_all() {
        let mut net = xor_net(6);
        assert_eq!(net.parameters().len(), 4); // 2 dense layers × (w, b)
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Network::new();
        assert!(net.is_empty());
        let x = Tensor::from_slice(&[1.0, 2.0]).reshape(&[1, 2]).unwrap();
        let y = net.forward(&x).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
        assert_eq!(net.compression_ratio(), 1.0);
    }

    #[test]
    fn debug_lists_layers() {
        let net = xor_net(7);
        let s = format!("{net:?}");
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
    }

    #[test]
    fn instrumented_forward_records_per_layer_spans() {
        let mut net = xor_net(9);
        let counts = || {
            let snap = ffdl_telemetry::global().snapshot();
            (
                snap.histogram("ffdl.nn.layer_forward_ns.dense")
                    .map(|h| h.count())
                    .unwrap_or(0),
                snap.histogram("ffdl.nn.layer_forward_ns.relu")
                    .map(|h| h.count())
                    .unwrap_or(0),
                snap.histogram("ffdl.nn.forward_ns")
                    .map(|h| h.count())
                    .unwrap_or(0),
            )
        };
        let (d0, r0, f0) = counts();
        ffdl_telemetry::set_enabled(true);
        let y = net.forward(&Tensor::zeros(&[3, 2])).unwrap();
        ffdl_telemetry::set_enabled(false);
        assert_eq!(y.shape(), &[3, 2]); // instrumented path computes the same
        let (d1, r1, f1) = counts();
        // Global counters are monotone; concurrent tests only add.
        assert!(d1 >= d0 + 2, "dense spans {d0} -> {d1}");
        assert!(r1 > r0, "relu spans {r0} -> {r1}");
        assert!(f1 > f0, "forward spans {f0} -> {f1}");
    }

    #[test]
    fn op_cost_aggregates_after_forward() {
        let mut net = xor_net(8);
        let _ = net.forward(&Tensor::zeros(&[1, 2])).unwrap();
        let c = net.op_cost();
        assert_eq!(c.mults, (2 * 16 + 16 * 2) as u64);
        assert!(c.nonlin >= 16);
    }
}
