//! Stochastic gradient descent with momentum — the optimizer the paper
//! trains with ("both the original and compressed models are trained with
//! learning rate 0.001 and momentum 0.9", §V-C).

use crate::layer::ParamRef;
use ffdl_tensor::Tensor;

/// SGD with classical (heavy-ball) momentum:
/// `v ← µ·v − η·g`, `w ← w + v`.
///
/// Velocity buffers are allocated lazily on the first step and matched to
/// parameters positionally, so the same optimizer instance must always be
/// stepped with the same parameter list (the [`Network`](crate::Network)
/// guarantees this).
#[derive(Debug)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD (no momentum).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive.
    pub fn new(learning_rate: f32) -> Self {
        Self::with_momentum(learning_rate, 0.0)
    }

    /// Creates SGD with momentum. The paper's setting is
    /// `Sgd::with_momentum(0.001, 0.9)`.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite/positive or `momentum` is
    /// outside `[0, 1)`.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive, got {learning_rate}"
        );
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        Self {
            learning_rate,
            momentum,
            velocities: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Replaces the learning rate (for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies one update step to the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list's shapes change between steps (a
    /// programming error in the caller).
    pub fn step(&mut self, params: &mut [ParamRef<'_>]) {
        if self.velocities.len() < params.len() {
            for p in params[self.velocities.len()..].iter() {
                self.velocities.push(Tensor::zeros(p.value.shape()));
            }
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocities) {
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter {} changed shape between optimizer steps",
                p.name
            );
            if self.momentum == 0.0 {
                p.value
                    .axpy(-self.learning_rate, p.grad)
                    .expect("grad shape matches param shape");
            } else {
                let mu = self.momentum;
                let lr = self.learning_rate;
                for ((vi, &gi), wi) in v
                    .as_mut_slice()
                    .iter_mut()
                    .zip(p.grad.as_slice())
                    .zip(p.value.as_mut_slice())
                {
                    *vi = mu * *vi - lr * gi;
                    *wi += *vi;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut w = Tensor::from_slice(&[1.0, 2.0]);
        let mut g = Tensor::from_slice(&[10.0, -10.0]);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [ParamRef {
            name: "w",
            value: &mut w,
            grad: &mut g,
        }]);
        assert_eq!(w.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut w = Tensor::from_slice(&[0.0]);
        let mut g = Tensor::from_slice(&[1.0]);
        let mut opt = Sgd::with_momentum(0.1, 0.5);
        // Step 1: v = −0.1, w = −0.1.
        opt.step(&mut [ParamRef {
            name: "w",
            value: &mut w,
            grad: &mut g,
        }]);
        assert!((w.as_slice()[0] + 0.1).abs() < 1e-7);
        // Step 2: v = 0.5·(−0.1) − 0.1 = −0.15, w = −0.25.
        opt.step(&mut [ParamRef {
            name: "w",
            value: &mut w,
            grad: &mut g,
        }]);
        assert!((w.as_slice()[0] + 0.25).abs() < 1e-7);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        // Minimize f(w) = w²/2 (gradient w): must converge to 0.
        let mut w = Tensor::from_slice(&[5.0]);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..200 {
            let mut g = w.clone();
            opt.step(&mut [ParamRef {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }]);
        }
        assert!(w.as_slice()[0].abs() < 1e-3, "w = {}", w.as_slice()[0]);
    }

    #[test]
    fn multiple_params_tracked_independently() {
        let mut w1 = Tensor::from_slice(&[1.0]);
        let mut w2 = Tensor::from_slice(&[1.0, 1.0]);
        let mut g1 = Tensor::from_slice(&[1.0]);
        let mut g2 = Tensor::from_slice(&[0.0, 2.0]);
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        opt.step(&mut [
            ParamRef {
                name: "w1",
                value: &mut w1,
                grad: &mut g1,
            },
            ParamRef {
                name: "w2",
                value: &mut w2,
                grad: &mut g2,
            },
        ]);
        assert!((w1.as_slice()[0] - 0.5).abs() < 1e-7);
        assert_eq!(w2.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn accessors_and_decay() {
        let mut opt = Sgd::with_momentum(0.01, 0.9);
        assert_eq!(opt.learning_rate(), 0.01);
        assert_eq!(opt.momentum(), 0.9);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_momentum_one() {
        let _ = Sgd::with_momentum(0.1, 1.0);
    }
}
