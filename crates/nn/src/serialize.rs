//! Binary model format and the layer registry.
//!
//! This is the "file that contains trained weights and biases" of the
//! paper's Fig. 4 pipeline. The format is self-describing:
//!
//! ```text
//! magic  "FFDL"            4 bytes
//! version u32              currently 2
//! n_layers u32
//! per layer:
//!   tag      length-prefixed UTF-8 (e.g. "dense", "circulant_dense")
//!   config   length-prefixed blob  (layer-specific geometry)
//!   n_params u32
//!   params   tensors (rank, dims…, f32 data)
//! trailer  u64 little-endian FNV-1a digest of every preceding byte
//! ```
//!
//! The trailer (format version 2) makes corruption a *typed* error:
//! [`load_network`] hashes the stream as it parses and compares against
//! the stored digest, so a bit-flipped weight file fails with
//! [`NnError::ModelFormat`] naming the expected and actual digests
//! instead of silently loading garbage weights. This is the integrity
//! guarantee the model registry (`ffdl-registry`) builds on.
//!
//! Loading needs a [`LayerRegistry`] mapping tags to constructors, so
//! downstream crates (notably `ffdl-core`'s block-circulant layers) can
//! register their own layer types without this crate knowing about them.

use crate::activation::{Relu, Sigmoid, Tanh};
use crate::avgpool::avgpool2d_from_config;
use crate::conv::conv2d_from_config;
use crate::dense::dense_from_config;
use crate::error::NnError;
use crate::flatten::flatten_from_config;
use crate::layer::Layer;
use crate::network::Network;
use crate::pool::maxpool2d_from_config;
use crate::softmax::softmax_from_config;
use crate::wire;
use std::collections::HashMap;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"FFDL";
const VERSION: u32 = 2;

/// Constructor signature stored in the registry: builds an un-parameterized
/// layer from its config blob (parameters are loaded separately).
pub type LayerBuilder = fn(&[u8]) -> Result<Box<dyn Layer>, NnError>;

/// Maps layer type tags to constructors for model loading.
pub struct LayerRegistry {
    builders: HashMap<String, LayerBuilder>,
}

impl LayerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            builders: HashMap::new(),
        }
    }

    /// A registry pre-populated with every layer type this crate defines
    /// (`dense`, `conv2d`, `relu`, `sigmoid`, `tanh`, `maxpool2d`,
    /// `avgpool2d`, `flatten`, `softmax`).
    pub fn with_builtin_layers() -> Self {
        let mut r = Self::new();
        r.register("dense", dense_from_config);
        r.register("conv2d", conv2d_from_config);
        r.register("maxpool2d", maxpool2d_from_config);
        r.register("avgpool2d", avgpool2d_from_config);
        r.register("flatten", flatten_from_config);
        r.register("softmax", softmax_from_config);
        r.register("relu", |_| Ok(Box::new(Relu::new())));
        r.register("sigmoid", |_| Ok(Box::new(Sigmoid::new())));
        r.register("tanh", |_| Ok(Box::new(Tanh::new())));
        r
    }

    /// Registers (or replaces) a builder for a tag.
    pub fn register(&mut self, tag: &str, builder: LayerBuilder) {
        self.builders.insert(tag.to_string(), builder);
    }

    /// Looks up a builder.
    pub fn builder(&self, tag: &str) -> Option<LayerBuilder> {
        self.builders.get(tag).copied()
    }

    /// Number of registered tags.
    pub fn len(&self) -> usize {
        self.builders.len()
    }

    /// `true` when no tags are registered.
    pub fn is_empty(&self) -> bool {
        self.builders.is_empty()
    }
}

impl Default for LayerRegistry {
    fn default() -> Self {
        Self::with_builtin_layers()
    }
}

/// Writes a network (architecture + parameters) to `writer`.
///
/// A `&mut` reference can be passed for `writer`.
///
/// The payload is streamed through an FNV-1a hasher and an 8-byte
/// little-endian digest trailer is appended, so [`load_network`] can
/// detect corruption without a second pass.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn save_network<W: Write>(network: &Network, writer: W) -> Result<(), NnError> {
    let mut writer = wire::Fnv1aWriter::new(writer);
    writer.write_all(MAGIC)?;
    wire::write_u32(&mut writer, VERSION)?;
    wire::write_u32(&mut writer, network.len() as u32)?;
    for layer in network.layers() {
        wire::write_string(&mut writer, layer.type_tag())?;
        let config = layer.config_bytes();
        wire::write_u32(&mut writer, config.len() as u32)?;
        writer.write_all(&config)?;
        let params = layer.param_tensors();
        wire::write_u32(&mut writer, params.len() as u32)?;
        for p in params {
            wire::write_tensor(&mut writer, p)?;
        }
    }
    let digest = writer.digest();
    writer.into_inner().write_all(&digest.to_le_bytes())?;
    Ok(())
}

/// Reads a network written by [`save_network`], resolving layer types
/// through `registry`.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`] on a bad magic/version/structure or
/// a checksum-trailer mismatch (naming the expected and actual FNV-1a
/// digests), [`NnError::UnknownLayerTag`] for unregistered layers, and
/// [`NnError::Io`] on truncated input.
pub fn load_network<R: Read>(reader: R, registry: &LayerRegistry) -> Result<Network, NnError> {
    let mut reader = wire::Fnv1aReader::new(reader);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::ModelFormat(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = wire::read_u32(&mut reader)?;
    if version != VERSION {
        return Err(NnError::ModelFormat(format!(
            "unsupported version {version}, expected {VERSION}"
        )));
    }
    let n_layers = wire::read_u32(&mut reader)? as usize;
    if n_layers > 10_000 {
        return Err(NnError::ModelFormat(format!(
            "layer count {n_layers} exceeds sanity bound"
        )));
    }
    let mut network = Network::new();
    for _ in 0..n_layers {
        let tag = wire::read_string(&mut reader)?;
        let config_len = wire::read_u32(&mut reader)? as usize;
        if config_len > 1 << 20 {
            return Err(NnError::ModelFormat(format!(
                "config blob of {config_len} bytes exceeds sanity bound"
            )));
        }
        let mut config = vec![0u8; config_len];
        reader.read_exact(&mut config)?;
        let n_params = wire::read_u32(&mut reader)? as usize;
        if n_params > 64 {
            return Err(NnError::ModelFormat(format!(
                "parameter count {n_params} exceeds sanity bound"
            )));
        }
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(wire::read_tensor(&mut reader)?);
        }
        let builder = registry
            .builder(&tag)
            .ok_or_else(|| NnError::UnknownLayerTag(tag.clone()))?;
        let mut layer = builder(&config)?;
        layer.load_params(&params)?;
        network.push_boxed(layer);
    }
    let actual = reader.digest();
    let mut trailer = [0u8; 8];
    reader.into_inner().read_exact(&mut trailer)?;
    let expected = u64::from_le_bytes(trailer);
    if expected != actual {
        return Err(NnError::ModelFormat(format!(
            "checksum mismatch: trailer expects fnv1a {expected:016x}, payload hashes to {actual:016x}"
        )));
    }
    Ok(network)
}

/// Clones a network for serving: each layer is copied via its
/// [`Layer::clone_layer`] fast path when it has one — a structural
/// clone whose parameter tensors *share* the original's buffers
/// (copy-on-write, so a later parameter write on either side detaches a
/// private copy) — making the whole clone O(layers) pointer bumps with
/// no serialization. Layers without a fast path fall back to a
/// per-layer wire round-trip through `registry`, preserving the old
/// validation semantics: a layer type the registry cannot rebuild fails
/// the clone with [`NnError::UnknownLayerTag`].
///
/// The clone starts with empty forward caches and is safe to run on
/// another thread — this is how the serving runtime gives each worker
/// its own copy of the model. For a clone with *independent* parameter
/// allocations (training, optimizer state), use [`deep_clone_network`].
///
/// # Errors
///
/// Returns [`NnError::UnknownLayerTag`] when a fallback layer type is
/// not in `registry`, and propagates format errors (which indicate a
/// bug in a layer's `config_bytes`/`load_params` pair rather than a
/// user input condition).
pub fn clone_network(network: &Network, registry: &LayerRegistry) -> Result<Network, NnError> {
    let mut clone = Network::new();
    for layer in network.layers() {
        let copied = match layer.clone_layer() {
            Some(copied) => copied,
            None => clone_layer_via_wire(layer.as_ref(), registry)?,
        };
        clone.push_boxed(copied);
    }
    Ok(clone)
}

/// Wire-format fallback for one layer: serialize tag + config + params,
/// rebuild through the registry.
fn clone_layer_via_wire(
    layer: &dyn Layer,
    registry: &LayerRegistry,
) -> Result<Box<dyn Layer>, NnError> {
    let builder = registry
        .builder(layer.type_tag())
        .ok_or_else(|| NnError::UnknownLayerTag(layer.type_tag().to_string()))?;
    let mut rebuilt = builder(&layer.config_bytes())?;
    let params: Vec<_> = layer.param_tensors().into_iter().cloned().collect();
    rebuilt.load_params(&params)?;
    Ok(rebuilt)
}

/// Deep-copies a network by round-tripping it through the wire format:
/// every layer is serialized (tag + config + parameters) and rebuilt
/// through `registry`, so the clone owns **fresh parameter
/// allocations** that share nothing with the original — the right
/// clone for training and optimizer use, and a full end-to-end exercise
/// of the model format (what [`clone_network`] did before it grew the
/// shared-parameter fast path).
///
/// # Errors
///
/// Returns [`NnError::UnknownLayerTag`] when a layer type is not in
/// `registry`, and propagates format errors.
pub fn deep_clone_network(network: &Network, registry: &LayerRegistry) -> Result<Network, NnError> {
    let mut buf = Vec::new();
    save_network(network, &mut buf)?;
    load_network(&buf[..], registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::flatten::Flatten;
    use crate::pool::MaxPool2d;
    use crate::softmax::Softmax;
    use ffdl_tensor::{ConvGeometry, Tensor};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;
    use std::io::Cursor;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    fn roundtrip(net: &Network) -> Network {
        let mut buf = Vec::new();
        save_network(net, &mut buf).unwrap();
        load_network(Cursor::new(buf), &LayerRegistry::with_builtin_layers()).unwrap()
    }

    #[test]
    fn dense_network_roundtrip_preserves_outputs() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Dense::new(6, 10, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(10, 3, &mut rng));
        net.push(Softmax::new());

        let mut loaded = roundtrip(&net);
        let x = Tensor::from_fn(&[2, 6], |i| (i as f32 * 0.37).sin());
        let y1 = net.forward(&x).unwrap();
        let y2 = loaded.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
        assert_eq!(loaded.param_count(), net.param_count());
    }

    #[test]
    fn conv_network_roundtrip() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Conv2d::new(1, 4, 8, 8, ConvGeometry::valid(3), &mut rng).unwrap());
        net.push(Relu::new());
        net.push(MaxPool2d::new(2));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 3 * 3, 2, &mut rng));

        let mut loaded = roundtrip(&net);
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 7) as f32 * 0.1);
        let y1 = net.forward(&x).unwrap();
        let y2 = loaded.forward(&x).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = load_network(Cursor::new(buf), &LayerRegistry::default()).unwrap_err();
        assert!(matches!(err, NnError::ModelFormat(_)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        wire::write_u32(&mut buf, 999).unwrap();
        wire::write_u32(&mut buf, 0).unwrap();
        assert!(matches!(
            load_network(Cursor::new(buf), &LayerRegistry::default()),
            Err(NnError::ModelFormat(_))
        ));
    }

    #[test]
    fn unknown_tag_is_reported() {
        let mut net = Network::new();
        net.push(Relu::new());
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let empty = LayerRegistry::new();
        assert!(matches!(
            load_network(Cursor::new(buf), &empty),
            Err(NnError::UnknownLayerTag(tag)) if tag == "relu"
        ));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let mut net = Network::new();
        net.push(Dense::new(4, 4, &mut rng()));
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            load_network(Cursor::new(buf), &LayerRegistry::default()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn bit_flip_corruption_is_a_named_checksum_mismatch() {
        let mut net = Network::new();
        net.push(Dense::new(4, 4, &mut rng()));
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();

        // Flip one bit in the middle of the weight payload (past the
        // header, before the trailer) — the classic silent-garbage case.
        let victim = buf.len() / 2;
        buf[victim] ^= 0x10;
        let err =
            load_network(Cursor::new(&buf), &LayerRegistry::with_builtin_layers()).unwrap_err();
        match err {
            NnError::ModelFormat(msg) => {
                assert!(msg.contains("checksum mismatch"), "{msg}");
                // Both digests are named so operators can compare files.
                assert!(msg.contains("fnv1a"), "{msg}");
            }
            other => panic!("expected ModelFormat, got {other:?}"),
        }

        // Flipping a trailer bit is caught the same way.
        buf[victim] ^= 0x10; // restore payload
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            load_network(Cursor::new(&buf), &LayerRegistry::with_builtin_layers()),
            Err(NnError::ModelFormat(_))
        ));

        // And the pristine file still loads.
        buf[last] ^= 0x01;
        assert!(load_network(Cursor::new(&buf), &LayerRegistry::with_builtin_layers()).is_ok());
    }

    #[test]
    fn missing_trailer_is_io_error() {
        let net = Network::new();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        buf.truncate(buf.len() - 8); // drop the whole trailer
        assert!(matches!(
            load_network(Cursor::new(buf), &LayerRegistry::default()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn clone_network_is_independent_and_identical() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Dense::new(5, 7, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(7, 3, &mut rng));

        let mut cloned = clone_network(&net, &LayerRegistry::with_builtin_layers()).unwrap();
        let x = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.21).cos());
        let y1 = net.forward(&x).unwrap();
        let y2 = cloned.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());

        // Mutating the clone's parameters must not touch the original
        // (copy-on-write detaches the shared buffers on first write).
        for p in cloned.parameters() {
            p.value.map_inplace(|v| v + 1.0);
        }
        let y3 = net.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y3.as_slice());

        // Built-in layers clone structurally, so even an empty registry
        // suffices for them.
        assert!(clone_network(&net, &LayerRegistry::new()).is_ok());
    }

    /// A layer without a `clone_layer` fast path: `clone_network` must
    /// fall back to the wire round-trip and fail typed when the
    /// registry cannot rebuild the tag.
    #[test]
    fn clone_network_falls_back_to_registry_for_foreign_layers() {
        struct Foreign;
        impl Layer for Foreign {
            fn type_tag(&self) -> &'static str {
                "test_foreign"
            }
            fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
                Ok(input.clone())
            }
            fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
                Ok(grad.clone())
            }
        }
        let mut net = Network::new();
        net.push(Foreign);
        assert!(matches!(
            clone_network(&net, &LayerRegistry::with_builtin_layers()),
            Err(NnError::UnknownLayerTag(tag)) if tag == "test_foreign"
        ));
        let mut registry = LayerRegistry::with_builtin_layers();
        registry.register("test_foreign", |_| Ok(Box::new(Foreign)));
        let cloned = clone_network(&net, &registry).unwrap();
        assert_eq!(cloned.layers()[0].type_tag(), "test_foreign");
    }

    #[test]
    fn deep_clone_owns_independent_buffers() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Dense::new(3, 4, &mut rng));
        let deep = deep_clone_network(&net, &LayerRegistry::with_builtin_layers()).unwrap();
        let shared = clone_network(&net, &LayerRegistry::with_builtin_layers()).unwrap();
        let orig = net.layers()[0].param_tensors();
        assert!(!deep.layers()[0].param_tensors()[0].shares_buffer(orig[0]));
        assert!(shared.layers()[0].param_tensors()[0].shares_buffer(orig[0]));
        assert!(matches!(
            deep_clone_network(&net, &LayerRegistry::new()),
            Err(NnError::UnknownLayerTag(_))
        ));
    }

    #[test]
    fn registry_basics() {
        let r = LayerRegistry::with_builtin_layers();
        assert!(r.builder("dense").is_some());
        assert!(r.builder("nope").is_none());
        assert_eq!(r.len(), 9);
        assert!(!r.is_empty());
        assert!(LayerRegistry::new().is_empty());
    }

    #[test]
    fn empty_network_roundtrip() {
        let net = Network::new();
        let loaded = roundtrip(&net);
        assert!(loaded.is_empty());
    }
}
