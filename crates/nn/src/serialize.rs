//! Binary model format and the layer registry.
//!
//! This is the "file that contains trained weights and biases" of the
//! paper's Fig. 4 pipeline. The format is self-describing:
//!
//! ```text
//! magic  "FFDL"            4 bytes
//! version u32              2 (f32 only) or 3 (quantized layers present)
//! n_layers u32
//! v3 only — quantization header:
//!   n_entries u32          one entry per quantized layer
//!   per entry:
//!     layer_index u32
//!     scheme u32           1 = symmetric fixed point, per-block scale
//!     bits u32             effective bits per level (8/12/16)
//!     n_scales u32, scales f32…
//!     n_levels u32, levels (1 byte each for int8, i16 LE otherwise)
//! per layer:
//!   tag      length-prefixed UTF-8 (e.g. "dense", "circulant_dense")
//!   config   length-prefixed blob  (layer-specific geometry)
//!   n_params u32
//!   params   tensors (rank, dims…, f32 data)
//! trailer  u64 little-endian FNV-1a digest of every preceding byte
//! ```
//!
//! Version 3 exists so quantized spectra travel as narrow integers: the
//! header carries each quantized layer's levels + block scales
//! (`wire::QuantPayload`), keeping those bytes out of the 4-byte-f32
//! tensor path. The writer only bumps to 3 when at least one layer
//! returns [`Layer::quant_payload`]; all-f32 networks keep producing
//! byte-identical version-2 files, and the loader accepts both.
//! Truncation inside the quantization header is a typed
//! [`NnError::ModelFormat`] naming the missing section (see
//! `wire::quant_section`), not a bare EOF.
//!
//! The trailer (since format version 2) makes corruption a *typed* error:
//! [`load_network`] hashes the stream as it parses and compares against
//! the stored digest, so a bit-flipped weight file fails with
//! [`NnError::ModelFormat`] naming the expected and actual digests
//! instead of silently loading garbage weights. This is the integrity
//! guarantee the model registry (`ffdl-registry`) builds on.
//!
//! Loading needs a [`LayerRegistry`] mapping tags to constructors, so
//! downstream crates (notably `ffdl-core`'s block-circulant layers) can
//! register their own layer types without this crate knowing about them.

use crate::activation::{Relu, Sigmoid, Tanh};
use crate::avgpool::avgpool2d_from_config;
use crate::conv::conv2d_from_config;
use crate::dense::dense_from_config;
use crate::error::NnError;
use crate::flatten::flatten_from_config;
use crate::layer::Layer;
use crate::network::Network;
use crate::pool::maxpool2d_from_config;
use crate::softmax::softmax_from_config;
use crate::wire;
use std::collections::HashMap;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"FFDL";
/// Written for all-f32 networks (and the floor the loader accepts).
const VERSION: u32 = 2;
/// Written when at least one layer carries a quantization payload.
const VERSION_QUANT: u32 = 3;

/// Constructor signature stored in the registry: builds an un-parameterized
/// layer from its config blob (parameters are loaded separately).
pub type LayerBuilder = fn(&[u8]) -> Result<Box<dyn Layer>, NnError>;

/// Maps layer type tags to constructors for model loading.
pub struct LayerRegistry {
    builders: HashMap<String, LayerBuilder>,
}

impl LayerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            builders: HashMap::new(),
        }
    }

    /// A registry pre-populated with every layer type this crate defines
    /// (`dense`, `conv2d`, `relu`, `sigmoid`, `tanh`, `maxpool2d`,
    /// `avgpool2d`, `flatten`, `softmax`).
    pub fn with_builtin_layers() -> Self {
        let mut r = Self::new();
        r.register("dense", dense_from_config);
        r.register("conv2d", conv2d_from_config);
        r.register("maxpool2d", maxpool2d_from_config);
        r.register("avgpool2d", avgpool2d_from_config);
        r.register("flatten", flatten_from_config);
        r.register("softmax", softmax_from_config);
        r.register("relu", |_| Ok(Box::new(Relu::new())));
        r.register("sigmoid", |_| Ok(Box::new(Sigmoid::new())));
        r.register("tanh", |_| Ok(Box::new(Tanh::new())));
        r
    }

    /// Registers (or replaces) a builder for a tag.
    pub fn register(&mut self, tag: &str, builder: LayerBuilder) {
        self.builders.insert(tag.to_string(), builder);
    }

    /// Looks up a builder.
    pub fn builder(&self, tag: &str) -> Option<LayerBuilder> {
        self.builders.get(tag).copied()
    }

    /// Number of registered tags.
    pub fn len(&self) -> usize {
        self.builders.len()
    }

    /// `true` when no tags are registered.
    pub fn is_empty(&self) -> bool {
        self.builders.is_empty()
    }
}

impl Default for LayerRegistry {
    fn default() -> Self {
        Self::with_builtin_layers()
    }
}

/// Writes a network (architecture + parameters) to `writer`.
///
/// A `&mut` reference can be passed for `writer`.
///
/// The payload is streamed through an FNV-1a hasher and an 8-byte
/// little-endian digest trailer is appended, so [`load_network`] can
/// detect corruption without a second pass.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn save_network<W: Write>(network: &Network, writer: W) -> Result<(), NnError> {
    let quant: Vec<(u32, wire::QuantPayload)> = network
        .layers()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.quant_payload().map(|p| (i as u32, p)))
        .collect();
    let mut writer = wire::Fnv1aWriter::new(writer);
    writer.write_all(MAGIC)?;
    let version = if quant.is_empty() {
        VERSION
    } else {
        VERSION_QUANT
    };
    wire::write_u32(&mut writer, version)?;
    wire::write_u32(&mut writer, network.len() as u32)?;
    if version == VERSION_QUANT {
        wire::write_u32(&mut writer, quant.len() as u32)?;
        for (layer_index, payload) in &quant {
            wire::write_quant_entry(&mut writer, *layer_index, payload)?;
        }
    }
    for layer in network.layers() {
        wire::write_string(&mut writer, layer.type_tag())?;
        let config = layer.config_bytes();
        wire::write_u32(&mut writer, config.len() as u32)?;
        writer.write_all(&config)?;
        let params = layer.param_tensors();
        wire::write_u32(&mut writer, params.len() as u32)?;
        for p in params {
            wire::write_tensor(&mut writer, p)?;
        }
    }
    let digest = writer.digest();
    writer.into_inner().write_all(&digest.to_le_bytes())?;
    Ok(())
}

/// Reads a network written by [`save_network`], resolving layer types
/// through `registry`.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`] on a bad magic/version/structure or
/// a checksum-trailer mismatch (naming the expected and actual FNV-1a
/// digests), [`NnError::UnknownLayerTag`] for unregistered layers, and
/// [`NnError::Io`] on truncated input.
pub fn load_network<R: Read>(reader: R, registry: &LayerRegistry) -> Result<Network, NnError> {
    let mut reader = wire::Fnv1aReader::new(reader);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::ModelFormat(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = wire::read_u32(&mut reader)?;
    if version != VERSION && version != VERSION_QUANT {
        return Err(NnError::ModelFormat(format!(
            "unsupported version {version}, expected {VERSION} or {VERSION_QUANT}"
        )));
    }
    let n_layers = wire::read_u32(&mut reader)? as usize;
    if n_layers > 10_000 {
        return Err(NnError::ModelFormat(format!(
            "layer count {n_layers} exceeds sanity bound"
        )));
    }
    let mut quant: Vec<(u32, wire::QuantPayload)> = Vec::new();
    if version == VERSION_QUANT {
        let n_entries = wire::quant_section(wire::read_u32(&mut reader), "entry count")? as usize;
        if n_entries > n_layers {
            return Err(NnError::ModelFormat(format!(
                "quantization header claims {n_entries} entries for {n_layers} layers"
            )));
        }
        for _ in 0..n_entries {
            let (layer_index, payload) = wire::read_quant_entry(&mut reader)?;
            if layer_index as usize >= n_layers {
                return Err(NnError::ModelFormat(format!(
                    "quantization entry targets layer {layer_index} of {n_layers}"
                )));
            }
            if quant.iter().any(|(i, _)| *i == layer_index) {
                return Err(NnError::ModelFormat(format!(
                    "duplicate quantization entry for layer {layer_index}"
                )));
            }
            quant.push((layer_index, payload));
        }
    }
    let mut network = Network::new();
    for layer_index in 0..n_layers {
        let tag = wire::read_string(&mut reader)?;
        let config_len = wire::read_u32(&mut reader)? as usize;
        if config_len > 1 << 20 {
            return Err(NnError::ModelFormat(format!(
                "config blob of {config_len} bytes exceeds sanity bound"
            )));
        }
        let mut config = vec![0u8; config_len];
        reader.read_exact(&mut config)?;
        let n_params = wire::read_u32(&mut reader)? as usize;
        if n_params > 64 {
            return Err(NnError::ModelFormat(format!(
                "parameter count {n_params} exceeds sanity bound"
            )));
        }
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(wire::read_tensor(&mut reader)?);
        }
        let builder = registry
            .builder(&tag)
            .ok_or_else(|| NnError::UnknownLayerTag(tag.clone()))?;
        let mut layer = builder(&config)?;
        layer.load_params(&params)?;
        if let Some((_, payload)) = quant.iter().find(|(i, _)| *i as usize == layer_index) {
            layer.load_quant_payload(payload)?;
        }
        network.push_boxed(layer);
    }
    let actual = reader.digest();
    let mut trailer = [0u8; 8];
    reader.into_inner().read_exact(&mut trailer)?;
    let expected = u64::from_le_bytes(trailer);
    if expected != actual {
        return Err(NnError::ModelFormat(format!(
            "checksum mismatch: trailer expects fnv1a {expected:016x}, payload hashes to {actual:016x}"
        )));
    }
    Ok(network)
}

/// Clones a network for serving: each layer is copied via its
/// [`Layer::clone_layer`] fast path when it has one — a structural
/// clone whose parameter tensors *share* the original's buffers
/// (copy-on-write, so a later parameter write on either side detaches a
/// private copy) — making the whole clone O(layers) pointer bumps with
/// no serialization. Layers without a fast path fall back to a
/// per-layer wire round-trip through `registry`, preserving the old
/// validation semantics: a layer type the registry cannot rebuild fails
/// the clone with [`NnError::UnknownLayerTag`].
///
/// The clone starts with empty forward caches and is safe to run on
/// another thread — this is how the serving runtime gives each worker
/// its own copy of the model. For a clone with *independent* parameter
/// allocations (training, optimizer state), use [`deep_clone_network`].
///
/// # Errors
///
/// Returns [`NnError::UnknownLayerTag`] when a fallback layer type is
/// not in `registry`, and propagates format errors (which indicate a
/// bug in a layer's `config_bytes`/`load_params` pair rather than a
/// user input condition).
pub fn clone_network(network: &Network, registry: &LayerRegistry) -> Result<Network, NnError> {
    let mut clone = Network::new();
    for layer in network.layers() {
        let copied = match layer.clone_layer() {
            Some(copied) => copied,
            None => clone_layer_via_wire(layer.as_ref(), registry)?,
        };
        clone.push_boxed(copied);
    }
    Ok(clone)
}

/// Wire-format fallback for one layer: serialize tag + config + params,
/// rebuild through the registry.
fn clone_layer_via_wire(
    layer: &dyn Layer,
    registry: &LayerRegistry,
) -> Result<Box<dyn Layer>, NnError> {
    let builder = registry
        .builder(layer.type_tag())
        .ok_or_else(|| NnError::UnknownLayerTag(layer.type_tag().to_string()))?;
    let mut rebuilt = builder(&layer.config_bytes())?;
    let params: Vec<_> = layer.param_tensors().into_iter().cloned().collect();
    rebuilt.load_params(&params)?;
    Ok(rebuilt)
}

/// Deep-copies a network by round-tripping it through the wire format:
/// every layer is serialized (tag + config + parameters) and rebuilt
/// through `registry`, so the clone owns **fresh parameter
/// allocations** that share nothing with the original — the right
/// clone for training and optimizer use, and a full end-to-end exercise
/// of the model format (what [`clone_network`] did before it grew the
/// shared-parameter fast path).
///
/// # Errors
///
/// Returns [`NnError::UnknownLayerTag`] when a layer type is not in
/// `registry`, and propagates format errors.
pub fn deep_clone_network(network: &Network, registry: &LayerRegistry) -> Result<Network, NnError> {
    let mut buf = Vec::new();
    save_network(network, &mut buf)?;
    load_network(&buf[..], registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::flatten::Flatten;
    use crate::pool::MaxPool2d;
    use crate::softmax::Softmax;
    use ffdl_tensor::{ConvGeometry, Tensor};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;
    use std::io::Cursor;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    fn roundtrip(net: &Network) -> Network {
        let mut buf = Vec::new();
        save_network(net, &mut buf).unwrap();
        load_network(Cursor::new(buf), &LayerRegistry::with_builtin_layers()).unwrap()
    }

    #[test]
    fn dense_network_roundtrip_preserves_outputs() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Dense::new(6, 10, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(10, 3, &mut rng));
        net.push(Softmax::new());

        let mut loaded = roundtrip(&net);
        let x = Tensor::from_fn(&[2, 6], |i| (i as f32 * 0.37).sin());
        let y1 = net.forward(&x).unwrap();
        let y2 = loaded.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
        assert_eq!(loaded.param_count(), net.param_count());
    }

    #[test]
    fn conv_network_roundtrip() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Conv2d::new(1, 4, 8, 8, ConvGeometry::valid(3), &mut rng).unwrap());
        net.push(Relu::new());
        net.push(MaxPool2d::new(2));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 3 * 3, 2, &mut rng));

        let mut loaded = roundtrip(&net);
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 7) as f32 * 0.1);
        let y1 = net.forward(&x).unwrap();
        let y2 = loaded.forward(&x).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = load_network(Cursor::new(buf), &LayerRegistry::default()).unwrap_err();
        assert!(matches!(err, NnError::ModelFormat(_)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        wire::write_u32(&mut buf, 999).unwrap();
        wire::write_u32(&mut buf, 0).unwrap();
        assert!(matches!(
            load_network(Cursor::new(buf), &LayerRegistry::default()),
            Err(NnError::ModelFormat(_))
        ));
    }

    #[test]
    fn unknown_tag_is_reported() {
        let mut net = Network::new();
        net.push(Relu::new());
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let empty = LayerRegistry::new();
        assert!(matches!(
            load_network(Cursor::new(buf), &empty),
            Err(NnError::UnknownLayerTag(tag)) if tag == "relu"
        ));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let mut net = Network::new();
        net.push(Dense::new(4, 4, &mut rng()));
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            load_network(Cursor::new(buf), &LayerRegistry::default()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn bit_flip_corruption_is_a_named_checksum_mismatch() {
        let mut net = Network::new();
        net.push(Dense::new(4, 4, &mut rng()));
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();

        // Flip one bit in the middle of the weight payload (past the
        // header, before the trailer) — the classic silent-garbage case.
        let victim = buf.len() / 2;
        buf[victim] ^= 0x10;
        let err =
            load_network(Cursor::new(&buf), &LayerRegistry::with_builtin_layers()).unwrap_err();
        match err {
            NnError::ModelFormat(msg) => {
                assert!(msg.contains("checksum mismatch"), "{msg}");
                // Both digests are named so operators can compare files.
                assert!(msg.contains("fnv1a"), "{msg}");
            }
            other => panic!("expected ModelFormat, got {other:?}"),
        }

        // Flipping a trailer bit is caught the same way.
        buf[victim] ^= 0x10; // restore payload
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            load_network(Cursor::new(&buf), &LayerRegistry::with_builtin_layers()),
            Err(NnError::ModelFormat(_))
        ));

        // And the pristine file still loads.
        buf[last] ^= 0x01;
        assert!(load_network(Cursor::new(&buf), &LayerRegistry::with_builtin_layers()).is_ok());
    }

    /// Minimal quantized layer exercising the v3 path without the core
    /// crate's spectral machinery: a bias through the tensor path, the
    /// levels + scales through the quantization header.
    struct QuantStub {
        bias: Tensor,
        payload: wire::QuantPayload,
    }

    impl QuantStub {
        fn example() -> Self {
            Self {
                bias: Tensor::from_fn(&[4], |i| i as f32 * 0.5 - 1.0),
                payload: wire::QuantPayload {
                    scheme: wire::QUANT_SCHEME_SYMMETRIC,
                    bits: 16,
                    scales: vec![0.5, 0.25],
                    levels: (-8..8).map(|l| l * 100).collect(),
                },
            }
        }

        fn empty() -> Self {
            Self {
                bias: Tensor::zeros(&[4]),
                payload: wire::QuantPayload {
                    scheme: wire::QUANT_SCHEME_SYMMETRIC,
                    bits: 16,
                    scales: Vec::new(),
                    levels: Vec::new(),
                },
            }
        }
    }

    impl Layer for QuantStub {
        fn type_tag(&self) -> &'static str {
            "test_quant_stub"
        }
        fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
            Ok(input.clone())
        }
        fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
            Ok(grad.clone())
        }
        fn param_tensors(&self) -> Vec<&Tensor> {
            vec![&self.bias]
        }
        fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
            self.bias = params[0].clone();
            Ok(())
        }
        fn quant_payload(&self) -> Option<wire::QuantPayload> {
            Some(self.payload.clone())
        }
        fn load_quant_payload(&mut self, payload: &wire::QuantPayload) -> Result<(), NnError> {
            self.payload = payload.clone();
            Ok(())
        }
    }

    fn quant_registry() -> LayerRegistry {
        let mut r = LayerRegistry::with_builtin_layers();
        r.register("test_quant_stub", |_| Ok(Box::new(QuantStub::empty())));
        r
    }

    fn quant_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(4, 4, &mut rng()));
        net.push(QuantStub::example());
        net
    }

    #[test]
    fn all_f32_networks_still_write_version_2() {
        let mut net = Network::new();
        net.push(Dense::new(4, 4, &mut rng()));
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        assert_eq!(buf[4], 2, "f32-only model must stay version 2");
    }

    #[test]
    fn v3_roundtrip_restores_quant_payload() {
        let net = quant_net();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        assert_eq!(buf[4], 3, "quantized layer must bump the version");

        let loaded = load_network(Cursor::new(&buf), &quant_registry()).unwrap();
        assert_eq!(loaded.len(), 2);
        let want = QuantStub::example();
        assert_eq!(
            loaded.layers()[1].quant_payload().unwrap(),
            want.payload,
            "levels + scales survive the round trip"
        );
        assert_eq!(
            loaded.layers()[1].param_tensors()[0].as_slice(),
            want.bias.as_slice()
        );
    }

    #[test]
    fn truncated_v3_quant_header_names_missing_section() {
        let net = quant_net();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        // magic(4) version(4) n_layers(4) | n_entries(4) | layer_index(4)
        // scheme(4) bits(4) n_scales(4) scales… — cut inside each.
        for (keep, section) in [(14, "entry count"), (18, "layer index"), (34, "scales")] {
            let cut = buf[..keep].to_vec();
            match load_network(Cursor::new(cut), &quant_registry()) {
                Err(NnError::ModelFormat(msg)) => assert!(
                    msg.contains("truncated v3 quantization header") && msg.contains(section),
                    "cut at {keep}: {msg}"
                ),
                other => panic!("cut at {keep}: expected ModelFormat, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_in_v3_scales_is_a_named_checksum_mismatch() {
        let net = quant_net();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        // First scale starts after magic(4) version(4) n_layers(4)
        // n_entries(4) layer_index(4) scheme(4) bits(4) n_scales(4) = 32.
        // A flipped scale bit still parses as a valid f32, so only the
        // trailer can catch it — the v2 guarantee must extend to the
        // quantization header bytes.
        buf[33] ^= 0x40;
        match load_network(Cursor::new(&buf), &quant_registry()) {
            Err(NnError::ModelFormat(msg)) => {
                assert!(msg.contains("checksum mismatch"), "{msg}");
                assert!(msg.contains("fnv1a"), "{msg}");
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // Restored, the file loads again.
        buf[33] ^= 0x40;
        assert!(load_network(Cursor::new(&buf), &quant_registry()).is_ok());
    }

    #[test]
    fn quant_entry_for_f32_layer_is_rejected() {
        // Hand-craft a v3 file whose single entry targets a dense layer.
        let mut net = Network::new();
        net.push(Dense::new(2, 2, &mut rng()));
        let mut v2 = Vec::new();
        save_network(&net, &mut v2).unwrap();

        let mut buf = Vec::new();
        let mut w = wire::Fnv1aWriter::new(&mut buf);
        w.write_all(MAGIC).unwrap();
        wire::write_u32(&mut w, 3).unwrap();
        wire::write_u32(&mut w, 1).unwrap(); // n_layers
        wire::write_u32(&mut w, 1).unwrap(); // n_entries
        wire::write_quant_entry(
            &mut w,
            0,
            &wire::QuantPayload {
                scheme: wire::QUANT_SCHEME_SYMMETRIC,
                bits: 16,
                scales: vec![1.0],
                levels: vec![1, 2],
            },
        )
        .unwrap();
        // Layer body: copy the dense layer's body bytes from the v2 file
        // (skip magic+version+n_layers, drop the trailer).
        w.write_all(&v2[12..v2.len() - 8]).unwrap();
        let digest = w.digest();
        let _ = w.into_inner();
        buf.extend_from_slice(&digest.to_le_bytes());

        match load_network(Cursor::new(buf), &LayerRegistry::with_builtin_layers()) {
            Err(NnError::ModelFormat(msg)) => {
                assert!(msg.contains("does not accept a quantization payload"), "{msg}")
            }
            other => panic!("expected ModelFormat, got {other:?}"),
        }
    }

    #[test]
    fn missing_trailer_is_io_error() {
        let net = Network::new();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        buf.truncate(buf.len() - 8); // drop the whole trailer
        assert!(matches!(
            load_network(Cursor::new(buf), &LayerRegistry::default()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn clone_network_is_independent_and_identical() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Dense::new(5, 7, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(7, 3, &mut rng));

        let mut cloned = clone_network(&net, &LayerRegistry::with_builtin_layers()).unwrap();
        let x = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.21).cos());
        let y1 = net.forward(&x).unwrap();
        let y2 = cloned.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());

        // Mutating the clone's parameters must not touch the original
        // (copy-on-write detaches the shared buffers on first write).
        for p in cloned.parameters() {
            p.value.map_inplace(|v| v + 1.0);
        }
        let y3 = net.forward(&x).unwrap();
        assert_eq!(y1.as_slice(), y3.as_slice());

        // Built-in layers clone structurally, so even an empty registry
        // suffices for them.
        assert!(clone_network(&net, &LayerRegistry::new()).is_ok());
    }

    /// A layer without a `clone_layer` fast path: `clone_network` must
    /// fall back to the wire round-trip and fail typed when the
    /// registry cannot rebuild the tag.
    #[test]
    fn clone_network_falls_back_to_registry_for_foreign_layers() {
        struct Foreign;
        impl Layer for Foreign {
            fn type_tag(&self) -> &'static str {
                "test_foreign"
            }
            fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
                Ok(input.clone())
            }
            fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
                Ok(grad.clone())
            }
        }
        let mut net = Network::new();
        net.push(Foreign);
        assert!(matches!(
            clone_network(&net, &LayerRegistry::with_builtin_layers()),
            Err(NnError::UnknownLayerTag(tag)) if tag == "test_foreign"
        ));
        let mut registry = LayerRegistry::with_builtin_layers();
        registry.register("test_foreign", |_| Ok(Box::new(Foreign)));
        let cloned = clone_network(&net, &registry).unwrap();
        assert_eq!(cloned.layers()[0].type_tag(), "test_foreign");
    }

    #[test]
    fn deep_clone_owns_independent_buffers() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Dense::new(3, 4, &mut rng));
        let deep = deep_clone_network(&net, &LayerRegistry::with_builtin_layers()).unwrap();
        let shared = clone_network(&net, &LayerRegistry::with_builtin_layers()).unwrap();
        let orig = net.layers()[0].param_tensors();
        assert!(!deep.layers()[0].param_tensors()[0].shares_buffer(orig[0]));
        assert!(shared.layers()[0].param_tensors()[0].shares_buffer(orig[0]));
        assert!(matches!(
            deep_clone_network(&net, &LayerRegistry::new()),
            Err(NnError::UnknownLayerTag(_))
        ));
    }

    #[test]
    fn registry_basics() {
        let r = LayerRegistry::with_builtin_layers();
        assert!(r.builder("dense").is_some());
        assert!(r.builder("nope").is_none());
        assert_eq!(r.len(), 9);
        assert!(!r.is_empty());
        assert!(LayerRegistry::new().is_empty());
    }

    #[test]
    fn empty_network_roundtrip() {
        let net = Network::new();
        let loaded = roundtrip(&net);
        assert!(loaded.is_empty());
    }
}
