//! The dense (uncompressed) fully-connected layer — the `O(n²)` baseline
//! of §III-A: `y = ψ(Wᵀx + θ)` with an explicit `m×n` weight matrix.
//! (Activations are separate layers; this computes the affine part.)

use crate::error::NnError;
use crate::layer::{check_features, Layer, OpCost, ParamRef};
use crate::scratch::Scratch;
use crate::wire;
use ffdl_tensor::{Init, Tensor};
use ffdl_rng::Rng;

/// A fully-connected affine layer: input `[batch, in_dim]` →
/// output `[batch, out_dim]`, computing `y = x·W + b` with
/// `W ∈ ℝ^{in×out}`.
///
/// # Examples
///
/// ```
/// use ffdl_nn::{Dense, Layer};
/// use ffdl_tensor::Tensor;
/// use ffdl_rng::SeedableRng;
///
/// let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(1);
/// let mut layer = Dense::new(4, 2, &mut rng);
/// let x = Tensor::zeros(&[3, 4]);
/// let y = layer.forward(&x)?;
/// assert_eq!(y.shape(), &[3, 2]);
/// # Ok::<(), ffdl_nn::NnError>(())
/// ```
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weight: Tensor,      // [in, out]
    bias: Tensor,        // [out]
    weight_grad: Tensor, // [in, out]
    bias_grad: Tensor,   // [out]
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero biases.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let weight = Init::XavierUniform.sample(&[in_dim, out_dim], in_dim, out_dim, rng);
        Self::with_params(weight, Tensor::zeros(&[out_dim]))
            .expect("shapes are consistent by construction")
    }

    /// Creates a dense layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `weight` is not rank 2 or `bias`
    /// does not match the output dimension.
    pub fn with_params(weight: Tensor, bias: Tensor) -> Result<Self, NnError> {
        if weight.ndim() != 2 {
            return Err(NnError::BadInput {
                layer: "dense".into(),
                message: format!("weight must be rank 2, got {:?}", weight.shape()),
            });
        }
        let (in_dim, out_dim) = (weight.rows(), weight.cols());
        if bias.shape() != [out_dim] {
            return Err(NnError::BadInput {
                layer: "dense".into(),
                message: format!(
                    "bias shape {:?} does not match output dim {out_dim}",
                    bias.shape()
                ),
            });
        }
        Ok(Self {
            in_dim,
            out_dim,
            weight_grad: Tensor::zeros(&[in_dim, out_dim]),
            bias_grad: Tensor::zeros(&[out_dim]),
            weight,
            bias,
            cached_input: None,
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight matrix (`[in, out]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector (`[out]`).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn type_tag(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        check_features("dense", input, 2, &[self.in_dim])?;
        let mut out = input.matmul(&self.weight)?;
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(self.bias.as_slice()) {
                *o += b;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        check_features("dense", input, 2, &[self.in_dim])?;
        let mut out = scratch.take(&[input.rows(), self.out_dim]);
        input.matmul_into(&self.weight, &mut out)?;
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(self.bias.as_slice()) {
                *o += b;
            }
        }
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            weight_grad: self.weight_grad.clone(),
            bias_grad: self.bias_grad.clone(),
            cached_input: None,
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache("dense".into()))?;
        check_features("dense", grad_output, 2, &[self.out_dim])?;
        if grad_output.rows() != input.rows() {
            return Err(NnError::BadInput {
                layer: "dense".into(),
                message: format!(
                    "gradient batch {} does not match cached input batch {}",
                    grad_output.rows(),
                    input.rows()
                ),
            });
        }
        // dW = xᵀ·g, db = Σ_batch g, dx = g·Wᵀ.
        self.weight_grad = input.transpose()?.matmul(grad_output)?;
        self.bias_grad = grad_output.sum_rows()?;
        let grad_input = grad_output.matmul(&self.weight.transpose()?)?;
        Ok(grad_input)
    }

    fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "weight",
                value: &mut self.weight,
                grad: &mut self.weight_grad,
            },
            ParamRef {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn op_cost(&self) -> OpCost {
        let mn = (self.in_dim * self.out_dim) as u64;
        OpCost {
            mults: mn,
            adds: mn, // MAC accumulate + bias
            nonlin: 0,
            param_reads: mn + self.out_dim as u64,
            act_traffic: (self.in_dim + self.out_dim) as u64,
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::write_u32(&mut buf, self.in_dim as u32).expect("vec write is infallible");
        wire::write_u32(&mut buf, self.out_dim as u32).expect("vec write is infallible");
        buf
    }

    fn param_tensors(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != [self.in_dim, self.out_dim]
            || params[1].shape() != [self.out_dim]
        {
            return Err(NnError::ModelFormat(format!(
                "dense({}, {}) cannot load parameters with shapes {:?}",
                self.in_dim,
                self.out_dim,
                params.iter().map(|t| t.shape().to_vec()).collect::<Vec<_>>()
            )));
        }
        self.weight = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }
}

/// Reconstructs a [`Dense`] from its config blob (model-format loader).
///
/// # Errors
///
/// Returns [`NnError::ModelFormat`]/[`NnError::Io`] on malformed config.
pub fn dense_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let in_dim = wire::read_u32(&mut config)? as usize;
    let out_dim = wire::read_u32(&mut config)? as usize;
    let layer = Dense::with_params(Tensor::zeros(&[in_dim, out_dim]), Tensor::zeros(&[out_dim]))?;
    Ok(Box::new(layer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let b = Tensor::from_slice(&[0.5, -0.5]);
        let mut layer = Dense::with_params(w, b).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]).unwrap();
        let y = layer.forward(&x).unwrap();
        // y = [1·1 + 0·3 + (−1)·5 + 0.5, 1·2 + 0·4 + (−1)·6 − 0.5]
        assert_eq!(y.as_slice(), &[-3.5, -4.5]);
    }

    #[test]
    fn forward_batched() {
        let mut layer = Dense::new(4, 3, &mut rng());
        let x = Tensor::from_fn(&[5, 4], |i| i as f32 * 0.1);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), &[5, 3]);
        // Row independence: forwarding a single row gives the same result.
        let row0 = Tensor::from_vec(x.row(0).to_vec(), &[1, 4]).unwrap();
        let y0 = layer.forward(&row0).unwrap();
        for (a, b) in y0.as_slice().iter().zip(y.row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let mut layer = Dense::new(4, 3, &mut rng());
        assert!(layer.forward(&Tensor::zeros(&[2, 5])).is_err());
        assert!(layer.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut layer = Dense::new(2, 2, &mut rng());
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn gradient_check_weights_and_input() {
        // Finite-difference check of dW, db, dx on a small layer.
        let mut layer = Dense::new(3, 2, &mut rng());
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2, 0.5, -0.4], &[2, 3]).unwrap();
        // Loss = sum(y²)/2 → dL/dy = y.
        let y = layer.forward(&x).unwrap();
        let grad_in = layer.backward(&y).unwrap();

        let eps = 1e-3f32;
        let loss = |layer: &mut Dense, x: &Tensor| -> f32 {
            let y = layer.forward(x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // dL/dx numeric:
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = grad_in.as_slice()[i];
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "dx[{i}]: {num} vs {ana}");
        }

        // Restore cache for parameter grads, then perturb weights.
        let y = layer.forward(&x).unwrap();
        let _ = layer.backward(&y).unwrap();
        let analytic_wg = layer.weight_grad.clone();
        let analytic_bg = layer.bias_grad.clone();
        for i in 0..analytic_wg.len() {
            let orig = layer.weight.as_slice()[i];
            layer.weight.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.weight.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.weight.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = analytic_wg.as_slice()[i];
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "dW[{i}]: {num} vs {ana}");
        }
        for i in 0..analytic_bg.len() {
            let orig = layer.bias.as_slice()[i];
            layer.bias.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = analytic_bg.as_slice()[i];
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "db[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    fn parameters_and_counts() {
        let mut layer = Dense::new(10, 4, &mut rng());
        assert_eq!(layer.param_count(), 44);
        assert_eq!(layer.logical_param_count(), 44);
        let params = layer.parameters();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, "weight");
        assert_eq!(params[0].value.shape(), &[10, 4]);
    }

    #[test]
    fn op_cost_scales_with_size() {
        let layer = Dense::new(100, 50, &mut rng());
        let c = layer.op_cost();
        assert_eq!(c.mults, 5000);
        assert!(c.param_reads >= 5000);
    }

    #[test]
    fn config_roundtrip() {
        let layer = Dense::new(7, 3, &mut rng());
        let cfg = layer.config_bytes();
        let rebuilt = dense_from_config(&cfg).unwrap();
        assert_eq!(rebuilt.type_tag(), "dense");
        assert_eq!(rebuilt.param_count(), layer.param_count());
    }

    #[test]
    fn load_params_validates() {
        let mut layer = Dense::new(3, 2, &mut rng());
        let good = vec![Tensor::zeros(&[3, 2]), Tensor::zeros(&[2])];
        assert!(layer.load_params(&good).is_ok());
        let bad = vec![Tensor::zeros(&[2, 3]), Tensor::zeros(&[2])];
        assert!(layer.load_params(&bad).is_err());
        assert!(layer.load_params(&[]).is_err());
    }

    #[test]
    fn with_params_validates() {
        assert!(Dense::with_params(Tensor::zeros(&[4]), Tensor::zeros(&[4])).is_err());
        assert!(Dense::with_params(Tensor::zeros(&[4, 2]), Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn gradient_batch_mismatch_detected() {
        let mut layer = Dense::new(3, 2, &mut rng());
        let _ = layer.forward(&Tensor::zeros(&[2, 3])).unwrap();
        assert!(layer.backward(&Tensor::zeros(&[5, 2])).is_err());
    }
}
