//! Elementwise activation layers: ReLU (the paper's stated choice),
//! plus sigmoid and tanh for completeness.

use crate::error::NnError;
use crate::layer::{Layer, OpCost};
use crate::scratch::Scratch;
use ffdl_tensor::Tensor;

macro_rules! activation_layer {
    (
        $(#[$meta:meta])*
        $name:ident, $tag:literal, $fwd:expr, $grad_from_in_out:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            cached: Option<(Tensor, Tensor)>, // (input, output)
            last_size: usize,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self::default()
            }
        }

        impl Layer for $name {
            fn type_tag(&self) -> &'static str {
                $tag
            }

            fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
                let fwd: fn(f32) -> f32 = $fwd;
                let out = input.map(fwd);
                self.last_size = if input.ndim() > 0 {
                    input.len() / input.shape()[0].max(1)
                } else {
                    0
                };
                self.cached = Some((input.clone(), out.clone()));
                Ok(out)
            }

            fn forward_infer(
                &mut self,
                input: &Tensor,
                scratch: &mut Scratch,
            ) -> Result<Tensor, NnError> {
                let fwd: fn(f32) -> f32 = $fwd;
                let mut out = scratch.take(input.shape());
                for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                    *o = fwd(v);
                }
                self.last_size = if input.ndim() > 0 {
                    input.len() / input.shape()[0].max(1)
                } else {
                    0
                };
                Ok(out)
            }

            fn clone_layer(&self) -> Option<Box<dyn Layer>> {
                Some(Box::new(Self {
                    cached: None,
                    last_size: self.last_size,
                }))
            }

            fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
                let (input, output) = self
                    .cached
                    .as_ref()
                    .ok_or_else(|| NnError::NoForwardCache($tag.into()))?;
                if grad_output.shape() != input.shape() {
                    return Err(NnError::BadInput {
                        layer: $tag.into(),
                        message: format!(
                            "gradient shape {:?} does not match activation shape {:?}",
                            grad_output.shape(),
                            input.shape()
                        ),
                    });
                }
                let local: fn(f32, f32) -> f32 = $grad_from_in_out;
                let grad_local = input.zip_map(output, local)?;
                Ok(grad_output.mul(&grad_local)?)
            }

            fn op_cost(&self) -> OpCost {
                OpCost {
                    nonlin: self.last_size as u64,
                    act_traffic: 2 * self.last_size as u64,
                    ..OpCost::default()
                }
            }
        }
    };
}

activation_layer!(
    /// Rectified Linear Unit: `ψ(x) = max(0, x)` — "the most widely
    /// utilized activation function in DNNs" (§III-A).
    Relu,
    "relu",
    |x| x.max(0.0),
    |x, _y| if x > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Logistic sigmoid `ψ(x) = 1 / (1 + e^{-x})`.
    Sigmoid,
    "sigmoid",
    |x| 1.0 / (1.0 + (-x).exp()),
    |_x, y| y * (1.0 - y)
);

activation_layer!(
    /// Hyperbolic tangent.
    Tanh,
    "tanh",
    |x| x.tanh(),
    |_x, y| 1.0 - y * y
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -0.5], &[2, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[1, 2]).unwrap();
        let _ = l.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![5.0, 7.0], &[1, 2]).unwrap();
        let gi = l.backward(&g).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 7.0]);
    }

    #[test]
    fn sigmoid_midpoint_and_gradient() {
        let mut l = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.0], &[1, 1]).unwrap();
        let y = l.forward(&x).unwrap();
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
        let g = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        let gi = l.backward(&g).unwrap();
        assert!((gi.as_slice()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut l = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.8, 1.2], &[1, 3]).unwrap();
        let y = l.forward(&x).unwrap();
        // loss = sum(y), dL/dy = 1 → gi = 1 - tanh².
        let ones = Tensor::ones(&[1, 3]);
        let gi = l.backward(&ones).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num =
                (l.forward(&xp).unwrap().sum() - l.forward(&xm).unwrap().sum()) / (2.0 * eps);
            assert!((num - gi.as_slice()[i]).abs() < 1e-2);
        }
        let _ = y;
    }

    #[test]
    fn backward_requires_forward() {
        let mut l = Relu::new();
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1, 1])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn backward_shape_checked() {
        let mut l = Relu::new();
        let _ = l.forward(&Tensor::zeros(&[2, 3])).unwrap();
        assert!(l.backward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn op_cost_after_forward() {
        let mut l = Relu::new();
        let _ = l.forward(&Tensor::zeros(&[4, 10])).unwrap();
        assert_eq!(l.op_cost().nonlin, 10);
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Relu::new().type_tag(), "relu");
        assert_eq!(Sigmoid::new().type_tag(), "sigmoid");
        assert_eq!(Tanh::new().type_tag(), "tanh");
    }

    #[test]
    fn activations_have_no_parameters() {
        let mut l = Relu::new();
        assert!(l.parameters().is_empty());
        assert_eq!(l.param_count(), 0);
        assert!(l.load_params(&[]).is_ok());
        assert!(l.load_params(&[Tensor::zeros(&[1])]).is_err());
    }

    #[test]
    fn works_on_rank4_batches() {
        let mut l = Relu::new();
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32 - 40.0);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), x.shape());
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }
}
