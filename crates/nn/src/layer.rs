//! The [`Layer`] abstraction shared by the dense baselines of this crate
//! and the block-circulant FFT layers of `ffdl-core`.

use crate::error::NnError;
use crate::scratch::Scratch;
use ffdl_tensor::Tensor;

/// A mutable view of one trainable parameter and its gradient.
///
/// Returned by [`Layer::parameters`]; the optimizer walks these pairs in a
/// stable order, so per-parameter state (momentum velocity) can be indexed
/// positionally.
pub struct ParamRef<'a> {
    /// Human-readable parameter name (diagnostics).
    pub name: &'static str,
    /// The parameter tensor.
    pub value: &'a mut Tensor,
    /// The gradient accumulated by the most recent backward pass.
    pub grad: &'a mut Tensor,
}

/// Arithmetic/memory cost of one *single-sample* forward pass through a
/// layer — the quantity the embedded platform model (Table I–III) converts
/// into µs/image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Real multiplications.
    pub mults: u64,
    /// Real additions/subtractions.
    pub adds: u64,
    /// Nonlinearity evaluations (ReLU/softmax terms).
    pub nonlin: u64,
    /// Parameter values streamed from memory (model storage traffic).
    pub param_reads: u64,
    /// Activation values read + written.
    pub act_traffic: u64,
}

impl OpCost {
    /// Component-wise sum of two costs.
    pub fn combine(self, other: OpCost) -> OpCost {
        OpCost {
            mults: self.mults + other.mults,
            adds: self.adds + other.adds,
            nonlin: self.nonlin + other.nonlin,
            param_reads: self.param_reads + other.param_reads,
            act_traffic: self.act_traffic + other.act_traffic,
        }
    }

    /// Total floating-point operations (mults + adds + nonlinearities).
    pub fn flops(self) -> u64 {
        self.mults + self.adds + self.nonlin
    }
}

/// A differentiable network layer.
///
/// Layers own their parameters and cache whatever activations the backward
/// pass needs; `backward` must be preceded by `forward` on the same input
/// batch. Inputs and outputs are batched: the first dimension is the batch
/// size.
///
/// The `Send + Sync` bound exists so a frozen network can be shared
/// across serving threads behind an `Arc` — all mutation goes through
/// `&mut self`, so `Sync` asks only that layers avoid un-synchronized
/// interior mutability.
pub trait Layer: Send + Sync {
    /// Stable identifier used by the model format and architecture parser
    /// (e.g. `"dense"`, `"relu"`, `"circulant_dense"`).
    fn type_tag(&self) -> &'static str;

    /// Computes the layer output for a batch, caching what backward needs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the input shape is incompatible.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Propagates the loss gradient, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when called before `forward`,
    /// or [`NnError::BadInput`] on a gradient of the wrong shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError>;

    /// Inference-only forward pass: identical math and bit-identical
    /// output to [`forward`](Layer::forward), but free to skip the
    /// backward caches and to draw intermediate buffers from `scratch`
    /// instead of allocating. The default delegates to `forward`, so
    /// layers that have not opted in stay correct (just not
    /// allocation-free).
    ///
    /// # Errors
    ///
    /// Same contract as [`forward`](Layer::forward).
    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        let _ = scratch;
        self.forward(input)
    }

    /// Structural clone that **shares** frozen parameter buffers with
    /// `self` (copy-on-write tensors make the shared state safe: any
    /// later write detaches a private copy) and starts with empty
    /// forward caches, so the clone can serve on another thread.
    ///
    /// Returns `None` when the layer does not support structural
    /// cloning; [`clone_network`](crate::clone_network) then falls back
    /// to a wire-format round trip through the layer registry. Built-in
    /// layers all return `Some`, which is what makes whole-network
    /// clones for serving O(layers) pointer bumps.
    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        None
    }

    /// Trainable parameters with their gradients, in a stable order.
    fn parameters(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    /// Number of *stored* parameter values.
    fn param_count(&self) -> usize {
        0
    }

    /// Number of parameters an uncompressed (dense) layer of the same
    /// logical shape would store. For dense layers this equals
    /// [`Layer::param_count`]; block-circulant layers report the full
    /// `m·n` so compression ratios can be derived.
    fn logical_param_count(&self) -> usize {
        self.param_count()
    }

    /// Single-sample forward cost for the platform model.
    fn op_cost(&self) -> OpCost {
        OpCost::default()
    }

    /// Layer-specific configuration blob for the model format.
    fn config_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Read-only parameter tensors, in the same order as
    /// [`Layer::parameters`] (used by the model writer).
    fn param_tensors(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Replaces the layer's parameters (used by the model loader).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ModelFormat`] when the count or shapes do not
    /// match this layer's parameters.
    fn load_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if !params.is_empty() {
            return Err(NnError::ModelFormat(format!(
                "layer {} takes no parameters, got {}",
                self.type_tag(),
                params.len()
            )));
        }
        Ok(())
    }

    /// The layer's fixed-point quantization sidecar, if it has one.
    ///
    /// Returning `Some` opts the layer into the version-3 model format:
    /// the writer emits the payload in the v3 quantization header
    /// (narrow integer levels + `f32` block scales) instead of forcing
    /// it through 4-byte `f32` tensors. `f32` layers keep the default
    /// `None` and their models stay version 2, byte-identical to before.
    fn quant_payload(&self) -> Option<crate::wire::QuantPayload> {
        None
    }

    /// Installs a quantization sidecar read from a v3 model file
    /// (inverse of [`Layer::quant_payload`], called after
    /// [`Layer::load_params`]).
    ///
    /// # Errors
    ///
    /// The default returns [`NnError::ModelFormat`]: a quantization
    /// entry targeting a layer that never emits one means the file and
    /// the registry disagree about the layer type.
    fn load_quant_payload(&mut self, payload: &crate::wire::QuantPayload) -> Result<(), NnError> {
        let _ = payload;
        Err(NnError::ModelFormat(format!(
            "layer {} does not accept a quantization payload",
            self.type_tag()
        )))
    }

    /// Concrete-type escape hatch: layers that want downstream crates to
    /// reach their full API (e.g. the quantizer pulling a circulant
    /// layer's weight matrix) return `Some(self)`; the default `None`
    /// keeps trait objects opaque.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Validates that an incoming batch tensor has the expected trailing
/// feature dimensions, producing a consistent error message.
pub(crate) fn check_features(
    layer: &str,
    input: &Tensor,
    expected_rank: usize,
    expected_tail: &[usize],
) -> Result<(), NnError> {
    if input.ndim() != expected_rank {
        return Err(NnError::BadInput {
            layer: layer.to_string(),
            message: format!(
                "expected rank-{expected_rank} batch input, got shape {:?}",
                input.shape()
            ),
        });
    }
    let tail = &input.shape()[1..];
    if tail != expected_tail {
        return Err(NnError::BadInput {
            layer: layer.to_string(),
            message: format!(
                "expected per-sample shape {expected_tail:?}, got {:?}",
                tail
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_cost_combines_and_sums() {
        let a = OpCost {
            mults: 1,
            adds: 2,
            nonlin: 3,
            param_reads: 4,
            act_traffic: 5,
        };
        let b = OpCost {
            mults: 10,
            adds: 20,
            nonlin: 30,
            param_reads: 40,
            act_traffic: 50,
        };
        let c = a.combine(b);
        assert_eq!(c.mults, 11);
        assert_eq!(c.act_traffic, 55);
        assert_eq!(c.flops(), 11 + 22 + 33);
        assert_eq!(OpCost::default().flops(), 0);
    }

    #[test]
    fn check_features_messages() {
        let t = Tensor::zeros(&[4, 3]);
        assert!(check_features("dense", &t, 2, &[3]).is_ok());
        let err = check_features("dense", &t, 3, &[3, 1]).unwrap_err();
        assert!(err.to_string().contains("rank-3"));
        let err = check_features("dense", &t, 2, &[5]).unwrap_err();
        assert!(err.to_string().contains("[5]"));
    }
}
