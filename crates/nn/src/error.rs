//! Error type for the neural-network stack.

use ffdl_tensor::TensorError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors reported by layers, losses, optimizers and the model format.
#[derive(Debug)]
pub enum NnError {
    /// A tensor operation failed (shape/rank mismatch and friends).
    Tensor(TensorError),
    /// The layer received an input of an unexpected shape.
    BadInput {
        /// The layer reporting the problem.
        layer: String,
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// `backward` was called before `forward` (no cached activation).
    NoForwardCache(String),
    /// The model file is malformed or of an unsupported version.
    ModelFormat(String),
    /// An unknown layer tag was encountered while loading a model.
    UnknownLayerTag(String),
    /// Underlying I/O failure while reading or writing a model.
    Io(io::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::BadInput { layer, message } => {
                write!(f, "bad input to layer {layer}: {message}")
            }
            NnError::NoForwardCache(layer) => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::ModelFormat(msg) => write!(f, "malformed model file: {msg}"),
            NnError::UnknownLayerTag(tag) => write!(f, "unknown layer tag {tag:?}"),
            NnError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<io::Error> for NnError {
    fn from(e: io::Error) -> Self {
        NnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: NnError = TensorError::InvalidGeometry("x".into()).into();
        assert!(e.to_string().contains("tensor operation"));
        assert!(e.source().is_some());

        let e = NnError::BadInput {
            layer: "dense".into(),
            message: "expected 2 dims".into(),
        };
        assert!(e.to_string().contains("dense"));

        let e = NnError::NoForwardCache("relu".into());
        assert!(e.to_string().contains("relu"));

        let e = NnError::UnknownLayerTag("mystery".into());
        assert!(e.to_string().contains("mystery"));

        let e: NnError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NnError>();
    }
}
