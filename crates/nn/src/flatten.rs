//! Flatten layer bridging CONV feature maps and FC layers.

use crate::error::NnError;
use crate::layer::Layer;
use crate::scratch::Scratch;
use ffdl_tensor::Tensor;

/// Reshapes `[batch, d₁, d₂, …]` to `[batch, d₁·d₂·…]`, remembering the
/// original shape for the backward pass.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn type_tag(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.ndim() < 2 {
            return Err(NnError::BadInput {
                layer: "flatten".into(),
                message: format!("expected batched input, got shape {:?}", input.shape()),
            });
        }
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        self.cached_shape = Some(input.shape().to_vec());
        Ok(input.reshape(&[batch, rest])?)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        if input.ndim() < 2 {
            return Err(NnError::BadInput {
                layer: "flatten".into(),
                message: format!("expected batched input, got shape {:?}", input.shape()),
            });
        }
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        // Copy into a scratch buffer instead of the zero-copy reshape:
        // a reshape alias would pin the recycled input buffer (shared
        // Arc) and allocate a fresh shape vector per request.
        let mut out = scratch.take(&[batch, rest]);
        out.as_mut_slice().copy_from_slice(input.as_slice());
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self { cached_shape: None }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache("flatten".into()))?;
        if grad_output.len() != shape.iter().product::<usize>() {
            return Err(NnError::BadInput {
                layer: "flatten".into(),
                message: format!(
                    "gradient with {} elements cannot reshape to {shape:?}",
                    grad_output.len()
                ),
            });
        }
        Ok(grad_output.reshape(shape)?)
    }
}

/// Reconstructs a [`Flatten`] (it has no config).
///
/// # Errors
///
/// Never fails; the signature matches the layer-registry convention.
pub fn flatten_from_config(_config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    Ok(Box::new(Flatten::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn already_flat_is_identity() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[4, 7], |i| i as f32);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape(), &[4, 7]);
    }

    #[test]
    fn rejects_rank1_and_premature_backward() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[4])).is_err());
        assert!(matches!(
            f.backward(&Tensor::zeros(&[4, 1])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn backward_validates_element_count() {
        let mut f = Flatten::new();
        let _ = f.forward(&Tensor::zeros(&[2, 3, 3])).unwrap();
        assert!(f.backward(&Tensor::zeros(&[2, 10])).is_err());
    }

    #[test]
    fn from_config() {
        assert_eq!(flatten_from_config(&[]).unwrap().type_tag(), "flatten");
    }
}
