//! # ffdl-nn — trainable DNN stack
//!
//! The neural-network substrate for the reproduction of *"FFT-Based Deep
//! Learning Deployment in Embedded Systems"* (Lin et al., DATE 2018):
//! the dense baselines the paper compares against, the training loop, and
//! the model format consumed by the deployment pipeline.
//!
//! - Layers: [`Dense`], [`Conv2d`] (via im2col, Fig. 3), [`Relu`] /
//!   [`Sigmoid`] / [`Tanh`], [`MaxPool2d`], [`Flatten`], [`Softmax`].
//! - Losses: [`SoftmaxCrossEntropy`], [`MeanSquaredError`].
//! - Optimizer: [`Sgd`] with momentum (the paper trains with lr 0.001,
//!   momentum 0.9).
//! - Container: [`Network`] with forward/backward, mini-batch training,
//!   accuracy evaluation, parameter/compression accounting and per-layer
//!   [`OpCost`] aggregation for the embedded platform model.
//! - Model format: [`save_network`] / [`load_network`] with a
//!   [`LayerRegistry`] so downstream crates (the block-circulant layers of
//!   `ffdl-core`) can register their own layer types.
//!
//! # Examples
//!
//! Train a small classifier and round-trip it through the model format:
//!
//! ```
//! use ffdl_nn::{
//!     load_network, save_network, Dense, LayerRegistry, Network, Relu, Sgd,
//!     SoftmaxCrossEntropy,
//! };
//! use ffdl_tensor::Tensor;
//! use ffdl_rng::SeedableRng;
//!
//! let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(0);
//! let mut net = Network::new();
//! net.push(Dense::new(2, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, &mut rng));
//!
//! let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2])?;
//! let mut opt = Sgd::with_momentum(0.01, 0.9);
//! net.train_batch(&x, &[0, 1], &SoftmaxCrossEntropy::new(), &mut opt)?;
//!
//! let mut file = Vec::new();
//! save_network(&net, &mut file)?;
//! let _restored = load_network(&file[..], &LayerRegistry::with_builtin_layers())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod avgpool;
mod conv;
mod dense;
mod error;
mod flatten;
mod layer;
mod loss;
mod metrics;
mod network;
mod optimizer;
mod pool;
mod schedule;
mod scratch;
mod serialize;
mod softmax;
pub mod wire;

pub use activation::{Relu, Sigmoid, Tanh};
pub use avgpool::{avgpool2d_from_config, AvgPool2d};
pub use conv::{conv2d_from_config, Conv2d};
pub use dense::{dense_from_config, Dense};
pub use error::NnError;
pub use flatten::{flatten_from_config, Flatten};
pub use layer::{Layer, OpCost, ParamRef};
pub use loss::{MeanSquaredError, SoftmaxCrossEntropy};
pub use metrics::ConfusionMatrix;
pub use network::Network;
pub use optimizer::Sgd;
pub use pool::{maxpool2d_from_config, MaxPool2d};
pub use schedule::{ConstantLr, LinearWarmup, LrSchedule, StepDecay};
pub use scratch::Scratch;
pub use serialize::{
    clone_network, deep_clone_network, load_network, save_network, LayerBuilder, LayerRegistry,
};
pub use softmax::{softmax_from_config, softmax_rows, Softmax};
