//! Learning-rate schedules for the SGD optimizer.

use crate::optimizer::Sgd;

/// A learning-rate schedule: maps an epoch index to a rate.
pub trait LrSchedule {
    /// Learning rate for (0-based) `epoch`.
    fn rate(&self, epoch: usize) -> f32;

    /// Applies this schedule's rate for `epoch` to an optimizer.
    fn apply(&self, optimizer: &mut Sgd, epoch: usize)
    where
        Self: Sized,
    {
        optimizer.set_learning_rate(self.rate(epoch));
    }
}

/// Constant rate (the paper's setting: 0.001 throughout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn rate(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Step decay: multiply by `gamma` every `step_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial rate.
    pub initial: f32,
    /// Multiplicative factor per step.
    pub gamma: f32,
    /// Epochs between steps.
    pub step_epochs: usize,
}

impl StepDecay {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `initial > 0`, `0 < gamma <= 1`, `step_epochs > 0`.
    pub fn new(initial: f32, gamma: f32, step_epochs: usize) -> Self {
        assert!(initial > 0.0, "initial rate must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!(step_epochs > 0, "step interval must be positive");
        Self {
            initial,
            gamma,
            step_epochs,
        }
    }
}

impl LrSchedule for StepDecay {
    fn rate(&self, epoch: usize) -> f32 {
        self.initial * self.gamma.powi((epoch / self.step_epochs) as i32)
    }
}

/// Linear warmup to `peak` over `warmup_epochs`, then constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearWarmup {
    /// Rate reached after warmup.
    pub peak: f32,
    /// Warmup length in epochs.
    pub warmup_epochs: usize,
}

impl LrSchedule for LinearWarmup {
    fn rate(&self, epoch: usize) -> f32 {
        if self.warmup_epochs == 0 || epoch >= self.warmup_epochs {
            self.peak
        } else {
            // Start above zero so epoch 0 still makes progress.
            self.peak * (epoch + 1) as f32 / self.warmup_epochs as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.001);
        assert_eq!(s.rate(0), 0.001);
        assert_eq!(s.rate(100), 0.001);
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay::new(0.1, 0.5, 10);
        assert_eq!(s.rate(0), 0.1);
        assert_eq!(s.rate(9), 0.1);
        assert!((s.rate(10) - 0.05).abs() < 1e-9);
        assert!((s.rate(25) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn warmup_ramps() {
        let s = LinearWarmup {
            peak: 0.01,
            warmup_epochs: 4,
        };
        assert!((s.rate(0) - 0.0025).abs() < 1e-9);
        assert!((s.rate(3) - 0.01).abs() < 1e-9);
        assert_eq!(s.rate(10), 0.01);
        let s0 = LinearWarmup {
            peak: 0.01,
            warmup_epochs: 0,
        };
        assert_eq!(s0.rate(0), 0.01);
    }

    #[test]
    fn applies_to_optimizer() {
        let mut opt = Sgd::with_momentum(1.0, 0.9);
        StepDecay::new(0.1, 0.1, 1).apply(&mut opt, 2);
        assert!((opt.learning_rate() - 0.001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn step_decay_validates() {
        let _ = StepDecay::new(0.1, 1.5, 1);
    }
}
