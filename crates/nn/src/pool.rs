//! Max pooling. The paper's Arch. 3 lists only CONV and FC layers, but a
//! practical CIFAR-scale network needs spatial reduction between CONV
//! blocks; pooling is also required by the deployment pipeline's
//! architecture grammar.

use crate::error::NnError;
use crate::layer::{Layer, OpCost};
use crate::scratch::Scratch;
use crate::wire;
use ffdl_tensor::Tensor;

/// Max pooling over non-overlapping (or strided) square windows:
/// input `[batch, C, H, W]` → output `[batch, C, H/k, W/k]` (floor).
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    /// `(input shape, argmax flat indices per output element)`.
    cache: Option<(Vec<usize>, Vec<usize>)>,
    last_out_elems: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer with `stride == kernel` (non-overlapping).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        Self::with_stride(kernel, kernel)
    }

    /// Creates a pooling layer with an explicit stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn with_stride(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0, "pooling kernel must be positive");
        assert!(stride > 0, "pooling stride must be positive");
        Self {
            kernel,
            stride,
            cache: None,
            last_out_elems: 0,
        }
    }

    /// Pooling window side.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Pooling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    fn out_extent(&self, n: usize) -> Option<usize> {
        if n < self.kernel {
            None
        } else {
            Some((n - self.kernel) / self.stride + 1)
        }
    }
}

impl Layer for MaxPool2d {
    fn type_tag(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.ndim() != 4 {
            return Err(NnError::BadInput {
                layer: "maxpool2d".into(),
                message: format!("expected [batch, C, H, W], got {:?}", input.shape()),
            });
        }
        let (b, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = match (self.out_extent(h), self.out_extent(w)) {
            (Some(oh), Some(ow)) => (oh, ow),
            _ => {
                return Err(NnError::BadInput {
                    layer: "maxpool2d".into(),
                    message: format!(
                        "window {} exceeds spatial size {h}×{w}",
                        self.kernel
                    ),
                })
            }
        };
        let x = input.as_slice();
        let mut out = Vec::with_capacity(b * c * oh * ow);
        let mut argmax = Vec::with_capacity(b * c * oh * ow);
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = plane + (oy * self.stride) * w + ox * self.stride;
                        let mut best = x[best_idx];
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let idx = plane
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.push(best);
                        argmax.push(best_idx);
                    }
                }
            }
        }
        self.last_out_elems = out.len() / b.max(1);
        self.cache = Some((input.shape().to_vec(), argmax));
        Ok(Tensor::from_vec(out, &[b, c, oh, ow])?)
    }

    fn forward_infer(&mut self, input: &Tensor, scratch: &mut Scratch) -> Result<Tensor, NnError> {
        if input.ndim() != 4 {
            return Err(NnError::BadInput {
                layer: "maxpool2d".into(),
                message: format!("expected [batch, C, H, W], got {:?}", input.shape()),
            });
        }
        let (b, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = match (self.out_extent(h), self.out_extent(w)) {
            (Some(oh), Some(ow)) => (oh, ow),
            _ => {
                return Err(NnError::BadInput {
                    layer: "maxpool2d".into(),
                    message: format!("window {} exceeds spatial size {h}×{w}", self.kernel),
                })
            }
        };
        let mut out = scratch.take(&[b, c, oh, ow]);
        let x = input.as_slice();
        let dst = out.as_mut_slice();
        let mut o = 0;
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = x[plane + (oy * self.stride) * w + ox * self.stride];
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let v = x[plane
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        dst[o] = best;
                        o += 1;
                    }
                }
            }
        }
        self.last_out_elems = c * oh * ow;
        Ok(out)
    }

    fn clone_layer(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(Self {
            kernel: self.kernel,
            stride: self.stride,
            cache: None,
            last_out_elems: self.last_out_elems,
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let (in_shape, argmax) = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache("maxpool2d".into()))?;
        if grad_output.len() != argmax.len() {
            return Err(NnError::BadInput {
                layer: "maxpool2d".into(),
                message: format!(
                    "gradient has {} elements, expected {}",
                    grad_output.len(),
                    argmax.len()
                ),
            });
        }
        let mut grad_input = Tensor::zeros(in_shape);
        let gi = grad_input.as_mut_slice();
        for (&idx, &g) in argmax.iter().zip(grad_output.as_slice()) {
            gi[idx] += g;
        }
        Ok(grad_input)
    }

    fn op_cost(&self) -> OpCost {
        let cmp = (self.last_out_elems * self.kernel * self.kernel) as u64;
        OpCost {
            nonlin: cmp, // comparisons
            act_traffic: 2 * self.last_out_elems as u64,
            ..OpCost::default()
        }
    }

    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::write_u32(&mut buf, self.kernel as u32).expect("vec write is infallible");
        wire::write_u32(&mut buf, self.stride as u32).expect("vec write is infallible");
        buf
    }
}

/// Reconstructs a [`MaxPool2d`] from its config blob.
///
/// # Errors
///
/// Returns [`NnError::Io`]/[`NnError::ModelFormat`] on malformed config.
pub fn maxpool2d_from_config(mut config: &[u8]) -> Result<Box<dyn Layer>, NnError> {
    let kernel = wire::read_u32(&mut config)? as usize;
    let stride = wire::read_u32(&mut config)? as usize;
    if kernel == 0 || stride == 0 {
        return Err(NnError::ModelFormat(
            "maxpool2d kernel/stride must be positive".into(),
        ));
    }
    Ok(Box::new(MaxPool2d::with_stride(kernel, stride)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_2x2() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, 7.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0],
            &[1, 1, 2, 2],
        )
        .unwrap();
        let _ = pool.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let gi = pool.backward(&g).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn strided_pooling() {
        let mut pool = MaxPool2d::with_stride(3, 2);
        let x = Tensor::from_fn(&[1, 1, 7, 7], |i| i as f32);
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // Max of each 3×3 window is its bottom-right element.
        assert_eq!(y.at(&[0, 0, 0, 0]), x.at(&[0, 0, 2, 2]));
        assert_eq!(y.at(&[0, 0, 2, 2]), x.at(&[0, 0, 6, 6]));
    }

    #[test]
    fn multichannel_batch() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| (i % 17) as f32);
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3, 2, 2]);
    }

    #[test]
    fn window_larger_than_input_rejected() {
        let mut pool = MaxPool2d::new(5);
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn backward_requires_forward_and_shape() {
        let mut pool = MaxPool2d::new(2);
        assert!(matches!(
            pool.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::NoForwardCache(_))
        ));
        let _ = pool.forward(&Tensor::zeros(&[1, 1, 4, 4])).unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn pooling_gradient_is_subgradient() {
        // Sum-pooling check: sum(forward(x)) changes only via argmax cells.
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![0.9, 0.1, 0.2, 0.3, 0.8, 0.0, 0.4, 0.5, 0.6, 0.65, 0.7, 0.75, 0.2, 0.1, 0.0, 0.35],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        let ones = Tensor::ones(y.shape());
        let gi = pool.backward(&ones).unwrap();
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let num = (pool.forward(&xp).unwrap().sum() - y.sum()) / eps;
            assert!(
                (num - gi.as_slice()[i]).abs() < 1e-2,
                "index {i}: {num} vs {}",
                gi.as_slice()[i]
            );
        }
    }

    #[test]
    fn config_roundtrip() {
        let pool = MaxPool2d::with_stride(3, 2);
        let rebuilt = maxpool2d_from_config(&pool.config_bytes()).unwrap();
        assert_eq!(rebuilt.type_tag(), "maxpool2d");
        assert!(maxpool2d_from_config(&[0u8; 8]).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_kernel_panics() {
        let _ = MaxPool2d::new(0);
    }
}
