//! Property-based tests for the NN stack: gradient correctness over
//! random geometry, serialization round trips over random networks, and
//! loader robustness against corrupt bytes.
//!
//! Runs on the in-house `ffdl_rng::prop` harness (seeded cases,
//! replayable failures).

use ffdl_nn::{
    load_network, save_network, Dense, Layer, LayerRegistry, MaxPool2d, Network, Relu, Sgd,
    Sigmoid, Softmax, SoftmaxCrossEntropy, Tanh,
};
use ffdl_rng::prop::{check, vec_of};
use ffdl_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};
use ffdl_tensor::Tensor;

fn tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut v = seed.wrapping_add(0x9E3779B97F4A7C15);
    Tensor::from_fn(&shape, |_| {
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        ((v % 2001) as f32 / 1000.0) - 1.0
    })
}

/// Dense forward is affine: f(x + y) − f(y) == f(x) − f(0) row-wise.
#[test]
fn dense_is_affine() {
    check(
        "dense_is_affine",
        32,
        |rng| {
            (
                rng.gen_range(1usize..=12),
                rng.gen_range(1usize..=12),
                rng.gen_range(1usize..=4),
                rng.gen_range(0u64..500),
            )
        },
        |&(din, _dout, batch, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut layer = Dense::new(din, _dout, &mut rng);
            let x = tensor(vec![batch, din], seed);
            let y = tensor(vec![batch, din], seed.wrapping_add(1));
            let zero = Tensor::zeros(&[batch, din]);
            let f = |l: &mut Dense, t: &Tensor| l.forward(t).unwrap();
            let lhs = f(&mut layer, &x.add(&y).unwrap());
            let rhs = f(&mut layer, &x)
                .add(&f(&mut layer, &y))
                .unwrap()
                .sub(&f(&mut layer, &zero))
                .unwrap();
            let scale = 1.0 + rhs.max_abs();
            for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3 * scale, "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// Dense backward computes the exact adjoint: <f_lin(x), g> == <x, backward(g)>
/// for the linear part (bias cancels via f(x) − f(0)).
#[test]
fn dense_backward_is_adjoint() {
    check(
        "dense_backward_is_adjoint",
        32,
        |rng| {
            (
                rng.gen_range(1usize..=10),
                rng.gen_range(1usize..=10),
                rng.gen_range(1usize..=4),
                rng.gen_range(0u64..500),
            )
        },
        |&(din, dout, batch, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut layer = Dense::new(din, dout, &mut rng);
            let x = tensor(vec![batch, din], seed);
            let g = tensor(vec![batch, dout], seed.wrapping_add(2));
            let zero = Tensor::zeros(&[batch, din]);
            let y = layer.forward(&x).unwrap();
            let y0 = layer.forward(&zero).unwrap();
            let lin = y.sub(&y0).unwrap();
            // Re-forward on x so the cache matches, then take the gradient.
            let _ = layer.forward(&x).unwrap();
            let gx = layer.backward(&g).unwrap();
            let lhs: f32 = lin.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.as_slice().iter().zip(gx.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
            Ok(())
        },
    );
}

/// One SGD step on the cross-entropy loss cannot increase the loss on
/// the same batch when the rate is small (descent direction).
#[test]
fn sgd_step_descends() {
    check(
        "sgd_step_descends",
        32,
        |rng| {
            (
                rng.gen_range(2usize..=10),
                rng.gen_range(2usize..=6),
                rng.gen_range(0u64..200),
            )
        },
        |&(din, classes, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut net = Network::new();
            net.push(Dense::new(din, classes, &mut rng));
            let x = tensor(vec![4, din], seed);
            let labels: Vec<usize> = (0..4).map(|i| i % classes).collect();
            let loss = SoftmaxCrossEntropy::new();
            let logits = net.forward(&x).unwrap();
            let (before, _) = loss.compute(&logits, &labels).unwrap();
            let mut opt = Sgd::new(1e-3);
            let _ = net.train_batch(&x, &labels, &loss, &mut opt).unwrap();
            let logits = net.forward(&x).unwrap();
            let (after, _) = loss.compute(&logits, &labels).unwrap();
            prop_assert!(after <= before + 1e-5, "{before} -> {after}");
            Ok(())
        },
    );
}

/// Random dense/activation stacks round-trip the model format
/// bit-exactly.
#[test]
fn serialization_roundtrip_random_network() {
    check(
        "serialization_roundtrip_random_network",
        32,
        |rng| {
            let widths = vec_of(rng, 1..=4, |r| r.gen_range(1usize..=12));
            let acts: Vec<u8> = (0..4).map(|_| rng.gen_range(0u8..3)).collect();
            let input_dim = rng.gen_range(1usize..=8);
            let seed = rng.gen_range(0u64..500);
            (widths, acts, input_dim, seed)
        },
        |(widths, acts, input_dim, seed)| {
            let mut rng = SmallRng::seed_from_u64(*seed);
            let mut net = Network::new();
            let mut dim = *input_dim;
            for (w, a) in widths.iter().zip(acts) {
                net.push(Dense::new(dim, *w, &mut rng));
                match a {
                    0 => net.push(Relu::new()),
                    1 => net.push(Sigmoid::new()),
                    _ => net.push(Tanh::new()),
                }
                dim = *w;
            }
            net.push(Softmax::new());

            let mut buf = Vec::new();
            save_network(&net, &mut buf).unwrap();
            let mut loaded = load_network(&buf[..], &LayerRegistry::with_builtin_layers()).unwrap();
            let x = tensor(vec![2, *input_dim], seed.wrapping_add(3));
            let mut net = net;
            let y1 = net.forward(&x).unwrap();
            let y2 = loaded.forward(&x).unwrap();
            prop_assert_eq!(y1.as_slice(), y2.as_slice());
            Ok(())
        },
    );
}

/// The model loader never panics on corrupt bytes: every mutation of
/// a valid file either loads or returns an error.
#[test]
fn loader_survives_corruption() {
    check(
        "loader_survives_corruption",
        32,
        |rng| (rng.gen_range(0usize..400), rng.gen_range(1u8..=255)),
        |&(flip_at, flip_val)| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut net = Network::new();
            net.push(Dense::new(4, 6, &mut rng));
            net.push(Relu::new());
            net.push(Dense::new(6, 3, &mut rng));
            let mut buf = Vec::new();
            save_network(&net, &mut buf).unwrap();
            let idx = flip_at % buf.len();
            buf[idx] ^= flip_val;
            // Must not panic; Ok is fine (e.g. payload-only corruption).
            let _ = load_network(&buf[..], &LayerRegistry::with_builtin_layers());
            Ok(())
        },
    );
}

/// MaxPool never increases the max and never drops below the window
/// max (i.e. it selects an existing element).
#[test]
fn maxpool_selects_existing_values() {
    check(
        "maxpool_selects_existing_values",
        32,
        |rng| {
            (
                rng.gen_range(2usize..=8),
                rng.gen_range(2usize..=8),
                rng.gen_range(0u64..200),
            )
        },
        |&(h, w, seed)| {
            let mut pool = MaxPool2d::new(2);
            let x = tensor(vec![1, 1, h, w], seed);
            let y = pool.forward(&x).unwrap();
            let in_set: Vec<f32> = x.as_slice().to_vec();
            for &v in y.as_slice() {
                prop_assert!(
                    in_set.iter().any(|&u| (u - v).abs() < 1e-7),
                    "{v} not an input value"
                );
                let max = in_set.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(v <= max + 1e-7, "{v} > max {max}");
            }
            Ok(())
        },
    );
}

#[test]
fn network_compression_accounting_is_additive() {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut net = Network::new();
    net.push(Dense::new(8, 4, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(4, 2, &mut rng));
    let per_layer: usize = net.layers().iter().map(|l| l.param_count()).sum();
    assert_eq!(net.param_count(), per_layer);
    assert_eq!(net.logical_param_count(), per_layer);
}
