//! Property-based tests for the data substrate: IDX round trips,
//! batching invariants, and preprocessing shape laws.
//!
//! Runs on the in-house `ffdl_rng::prop` harness (seeded cases,
//! replayable failures).

use ffdl_data::{
    flatten_samples, read_idx, read_idx_dataset, resize_images, standardize, synthetic_mnist,
    write_idx, write_idx_dataset, Dataset, MnistConfig,
};
use ffdl_rng::prop::{bytes, check, vec_of};
use ffdl_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};
use ffdl_tensor::Tensor;
use std::io::Cursor;

fn unit_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut v = seed.wrapping_add(0x2545F4914F6CDD1D);
    Tensor::from_fn(shape, |_| {
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        (v % 256) as f32 / 255.0
    })
}

/// IDX round-trips any rank-1..=4 tensor of unit-range values within
/// 8-bit quantization error.
#[test]
fn idx_roundtrip() {
    check(
        "idx_roundtrip",
        32,
        |rng| {
            let shape = vec_of(rng, 1..=4, |r| r.gen_range(1usize..=6));
            let seed = rng.gen_range(0u64..500);
            (shape, seed)
        },
        |(shape, seed)| {
            let t = unit_tensor(shape, *seed);
            let mut buf = Vec::new();
            write_idx(&t, &mut buf).unwrap();
            let back = read_idx(Cursor::new(buf)).unwrap();
            prop_assert_eq!(back.shape(), t.shape());
            for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
                prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6, "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// The IDX reader never panics on arbitrary bytes.
#[test]
fn idx_reader_never_panics() {
    check(
        "idx_reader_never_panics",
        32,
        |rng| bytes(rng, 128),
        |bytes| {
            let _ = read_idx(Cursor::new(bytes.clone()));
            Ok(())
        },
    );
}

/// Dataset round-trip through the IDX pair preserves labels exactly.
#[test]
fn idx_dataset_roundtrip() {
    check(
        "idx_dataset_roundtrip",
        32,
        |rng| (rng.gen_range(1usize..=20), rng.gen_range(0u64..200)),
        |&(n, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ds = synthetic_mnist(n, &MnistConfig::default(), &mut rng).unwrap();
            let mut img = Vec::new();
            let mut lbl = Vec::new();
            write_idx_dataset(&ds, &mut img, &mut lbl).unwrap();
            let back = read_idx_dataset(Cursor::new(img), Cursor::new(lbl), 10).unwrap();
            prop_assert_eq!(back.labels(), ds.labels());
            prop_assert_eq!(back.sample_shape(), ds.sample_shape());
            Ok(())
        },
    );
}

/// Sequential batching partitions the dataset: every sample appears
/// exactly once, in order, regardless of batch size.
#[test]
fn batches_partition() {
    check(
        "batches_partition",
        32,
        |rng| (rng.gen_range(1usize..=30), rng.gen_range(1usize..=10)),
        |&(n, batch)| {
            let inputs = Tensor::from_fn(&[n, 2], |i| i as f32);
            let ds = Dataset::new(inputs, (0..n).map(|i| i % 3).collect(), 3).unwrap();
            let mut seen = Vec::new();
            for (x, y) in ds.batches(batch) {
                prop_assert_eq!(x.shape()[0], y.len());
                prop_assert!(y.len() <= batch, "batch of {} > {batch}", y.len());
                seen.extend(x.as_slice().iter().copied());
            }
            let expected: Vec<f32> = (0..2 * n).map(|i| i as f32).collect();
            prop_assert_eq!(seen, expected);
            Ok(())
        },
    );
}

/// Shuffled batching is a permutation: same multiset of labels.
#[test]
fn shuffled_batches_permute() {
    check(
        "shuffled_batches_permute",
        32,
        |rng| {
            (
                rng.gen_range(1usize..=30),
                rng.gen_range(1usize..=8),
                rng.gen_range(0u64..100),
            )
        },
        |&(n, batch, seed)| {
            let inputs = Tensor::from_fn(&[n, 1], |i| i as f32);
            let ds = Dataset::new(inputs, (0..n).map(|i| i % 4).collect(), 4).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut labels: Vec<usize> = ds
                .shuffled_batches(batch, &mut rng)
                .flat_map(|(_, y)| y)
                .collect();
            labels.sort_unstable();
            let mut expected: Vec<usize> = ds.labels().to_vec();
            expected.sort_unstable();
            prop_assert_eq!(labels, expected);
            Ok(())
        },
    );
}

/// Resize then flatten yields side² features and preserves labels.
#[test]
fn preprocess_shapes() {
    check(
        "preprocess_shapes",
        32,
        |rng| {
            (
                rng.gen_range(1usize..=6),
                rng.gen_range(2usize..=20),
                rng.gen_range(0u64..100),
            )
        },
        |&(n, side, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ds = synthetic_mnist(n, &MnistConfig::default(), &mut rng).unwrap();
            let out = flatten_samples(&resize_images(&ds, side).unwrap()).unwrap();
            prop_assert_eq!(out.sample_shape(), &[side * side]);
            prop_assert_eq!(out.labels(), ds.labels());
            Ok(())
        },
    );
}

/// Standardization is idempotent up to float error.
#[test]
fn standardize_idempotent() {
    check(
        "standardize_idempotent",
        32,
        |rng| (rng.gen_range(2usize..=10), rng.gen_range(0u64..100)),
        |&(n, seed)| {
            let inputs = unit_tensor(&[n, 5], seed);
            let ds = Dataset::new(inputs, vec![0; n], 1).unwrap();
            let once = standardize(&ds).unwrap();
            let twice = standardize(&once).unwrap();
            for (a, b) in once.inputs().as_slice().iter().zip(twice.inputs().as_slice()) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
            Ok(())
        },
    );
}
