//! Property-based tests for the data substrate: IDX round trips,
//! batching invariants, and preprocessing shape laws.

use ffdl_data::{
    flatten_samples, read_idx, read_idx_dataset, resize_images, standardize, synthetic_mnist,
    write_idx, write_idx_dataset, Dataset, MnistConfig,
};
use ffdl_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Cursor;

fn unit_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut v = seed.wrapping_add(0x2545F4914F6CDD1D);
    Tensor::from_fn(&shape, |_| {
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        (v % 256) as f32 / 255.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IDX round-trips any rank-1..=4 tensor of unit-range values within
    /// 8-bit quantization error.
    #[test]
    fn idx_roundtrip(shape in prop::collection::vec(1usize..=6, 1..=4), seed in 0u64..500) {
        let t = unit_tensor(shape, seed);
        let mut buf = Vec::new();
        write_idx(&t, &mut buf).unwrap();
        let back = read_idx(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    /// The IDX reader never panics on arbitrary bytes.
    #[test]
    fn idx_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = read_idx(Cursor::new(bytes));
    }

    /// Dataset round-trip through the IDX pair preserves labels exactly.
    #[test]
    fn idx_dataset_roundtrip(n in 1usize..=20, seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ds = synthetic_mnist(n, &MnistConfig::default(), &mut rng).unwrap();
        let mut img = Vec::new();
        let mut lbl = Vec::new();
        write_idx_dataset(&ds, &mut img, &mut lbl).unwrap();
        let back = read_idx_dataset(Cursor::new(img), Cursor::new(lbl), 10).unwrap();
        prop_assert_eq!(back.labels(), ds.labels());
        prop_assert_eq!(back.sample_shape(), ds.sample_shape());
    }

    /// Sequential batching partitions the dataset: every sample appears
    /// exactly once, in order, regardless of batch size.
    #[test]
    fn batches_partition(n in 1usize..=30, batch in 1usize..=10) {
        let inputs = Tensor::from_fn(&[n, 2], |i| i as f32);
        let ds = Dataset::new(inputs, (0..n).map(|i| i % 3).collect(), 3).unwrap();
        let mut seen = Vec::new();
        for (x, y) in ds.batches(batch) {
            prop_assert_eq!(x.shape()[0], y.len());
            prop_assert!(y.len() <= batch);
            seen.extend(x.as_slice().iter().copied());
        }
        let expected: Vec<f32> = (0..2 * n).map(|i| i as f32).collect();
        prop_assert_eq!(seen, expected);
    }

    /// Shuffled batching is a permutation: same multiset of labels.
    #[test]
    fn shuffled_batches_permute(n in 1usize..=30, batch in 1usize..=8, seed in 0u64..100) {
        let inputs = Tensor::from_fn(&[n, 1], |i| i as f32);
        let ds = Dataset::new(inputs, (0..n).map(|i| i % 4).collect(), 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut labels: Vec<usize> = ds
            .shuffled_batches(batch, &mut rng)
            .flat_map(|(_, y)| y)
            .collect();
        labels.sort_unstable();
        let mut expected: Vec<usize> = ds.labels().to_vec();
        expected.sort_unstable();
        prop_assert_eq!(labels, expected);
    }

    /// Resize then flatten yields side² features and preserves labels.
    #[test]
    fn preprocess_shapes(n in 1usize..=6, side in 2usize..=20, seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ds = synthetic_mnist(n, &MnistConfig::default(), &mut rng).unwrap();
        let out = flatten_samples(&resize_images(&ds, side).unwrap()).unwrap();
        prop_assert_eq!(out.sample_shape(), &[side * side]);
        prop_assert_eq!(out.labels(), ds.labels());
    }

    /// Standardization is idempotent up to float error.
    #[test]
    fn standardize_idempotent(n in 2usize..=10, seed in 0u64..100) {
        let inputs = unit_tensor(vec![n, 5], seed);
        let ds = Dataset::new(inputs, vec![0; n], 1).unwrap();
        let once = standardize(&ds).unwrap();
        let twice = standardize(&once).unwrap();
        for (a, b) in once.inputs().as_slice().iter().zip(twice.inputs().as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }
}
