//! Error type for dataset loading and generation.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors reported by dataset constructors, loaders and transforms.
#[derive(Debug)]
pub enum DataError {
    /// Inputs and labels disagree (count, class range, shape).
    Inconsistent(String),
    /// An IDX file is malformed.
    IdxFormat(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
            DataError::IdxFormat(msg) => write!(f, "malformed idx file: {msg}"),
            DataError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(DataError::Inconsistent("x".into()).to_string().contains("x"));
        assert!(DataError::IdxFormat("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let e: DataError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
