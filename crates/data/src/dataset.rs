//! The labelled [`Dataset`] container and mini-batch iteration.

use crate::error::DataError;
use ffdl_tensor::Tensor;
use ffdl_rng::seq::SliceRandom;
use ffdl_rng::Rng;

/// A labelled classification dataset: inputs of shape `[N, …]` plus one
/// class label per sample.
///
/// # Examples
///
/// ```
/// use ffdl_data::Dataset;
/// use ffdl_tensor::Tensor;
///
/// let inputs = Tensor::zeros(&[4, 8]);
/// let ds = Dataset::new(inputs, vec![0, 1, 0, 1], 2)?;
/// assert_eq!(ds.len(), 4);
/// let (bx, by) = ds.batch(&[0, 2]);
/// assert_eq!(bx.shape(), &[2, 8]);
/// assert_eq!(by, vec![0, 0]);
/// # Ok::<(), ffdl_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating label count and range.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] when the label count differs
    /// from the input count or any label is `≥ num_classes`.
    pub fn new(inputs: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self, DataError> {
        let n = if inputs.ndim() == 0 {
            0
        } else {
            inputs.shape()[0]
        };
        if labels.len() != n {
            return Err(DataError::Inconsistent(format!(
                "{} labels for {n} samples",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::Inconsistent(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Self {
            inputs,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-sample shape (input shape without the leading batch dim).
    pub fn sample_shape(&self) -> &[usize] {
        &self.inputs.shape()[1..]
    }

    /// All inputs, shape `[N, …]`.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gathers the samples at `indices` into a batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sample_len: usize = self.sample_shape().iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(
                &self.inputs.as_slice()[i * sample_len..(i + 1) * sample_len],
            );
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(self.sample_shape());
        (
            Tensor::from_vec(data, &shape).expect("size by construction"),
            labels,
        )
    }

    /// Sequential mini-batches of at most `batch_size` samples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        Batches {
            dataset: self,
            order: (0..self.len()).collect(),
            batch_size,
            cursor: 0,
        }
    }

    /// Shuffled mini-batches (one epoch) using the provided RNG.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn shuffled_batches<R: Rng>(&self, batch_size: usize, rng: &mut R) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        Batches {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Splits into `(first n, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point {n} beyond dataset");
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        let (hx, hy) = self.batch(&head);
        let (tx, ty) = self.batch(&tail);
        (
            Dataset::new(hx, hy, self.num_classes).expect("consistent by construction"),
            Dataset::new(tx, ty, self.num_classes).expect("consistent by construction"),
        )
    }

    /// Keeps only the first `n` samples (cheap way to scale experiments
    /// down for tests).
    pub fn truncated(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        self.split_at(n).0
    }

    /// Applies a per-sample transform, producing a new dataset (used for
    /// the bilinear-resize preprocessing of §V-B).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] when the transform produces
    /// inconsistent shapes across samples.
    pub fn map_samples(
        &self,
        mut f: impl FnMut(&Tensor) -> Tensor,
    ) -> Result<Dataset, DataError> {
        let sample_len: usize = self.sample_shape().iter().product();
        let mut out: Vec<f32> = Vec::new();
        let mut out_shape: Option<Vec<usize>> = None;
        for i in 0..self.len() {
            let sample = Tensor::from_vec(
                self.inputs.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
                self.sample_shape(),
            )
            .expect("sample size matches shape");
            let mapped = f(&sample);
            match &out_shape {
                None => out_shape = Some(mapped.shape().to_vec()),
                Some(s) if s.as_slice() == mapped.shape() => {}
                Some(s) => {
                    return Err(DataError::Inconsistent(format!(
                        "transform produced shape {:?} after {s:?}",
                        mapped.shape()
                    )))
                }
            }
            out.extend_from_slice(mapped.as_slice());
        }
        let mut shape = vec![self.len()];
        shape.extend(out_shape.unwrap_or_default());
        let inputs = Tensor::from_vec(out, &shape)
            .map_err(|e| DataError::Inconsistent(e.to_string()))?;
        Dataset::new(inputs, self.labels.clone(), self.num_classes)
    }
}

/// Iterator over mini-batches; see [`Dataset::batches`].
pub struct Batches<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.batch(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn toy() -> Dataset {
        let inputs = Tensor::from_fn(&[6, 3], |i| i as f32);
        Dataset::new(inputs, vec![0, 1, 2, 0, 1, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let t = Tensor::zeros(&[3, 2]);
        assert!(Dataset::new(t.clone(), vec![0, 1], 2).is_err());
        assert!(Dataset::new(t.clone(), vec![0, 1, 5], 2).is_err());
        assert!(Dataset::new(t, vec![0, 1, 1], 2).is_ok());
    }

    #[test]
    fn batch_gathers_rows() {
        let ds = toy();
        let (x, y) = ds.batch(&[1, 4]);
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(x.as_slice(), &[3.0, 4.0, 5.0, 12.0, 13.0, 14.0]);
        assert_eq!(y, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_bounds_checked() {
        let _ = toy().batch(&[6]);
    }

    #[test]
    fn sequential_batches_cover_everything() {
        let ds = toy();
        let collected: Vec<usize> = ds.batches(4).flat_map(|(_, y)| y).collect();
        assert_eq!(collected.len(), 6);
        let sizes: Vec<usize> = ds.batches(4).map(|(x, _)| x.shape()[0]).collect();
        assert_eq!(sizes, vec![4, 2]);
    }

    #[test]
    fn shuffled_batches_are_a_permutation() {
        let ds = toy();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen: Vec<f32> = ds
            .shuffled_batches(2, &mut rng)
            .flat_map(|(x, _)| x.as_slice().to_vec())
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f32> = (0..18).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_and_truncate() {
        let ds = toy();
        let (a, b) = ds.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 4);
        assert_eq!(b.labels()[0], 2);
        assert_eq!(ds.truncated(100).len(), 6);
        assert_eq!(ds.truncated(1).len(), 1);
    }

    #[test]
    fn map_samples_resizes_shape() {
        let ds = toy();
        let doubled = ds
            .map_samples(|s| {
                let mut v = s.as_slice().to_vec();
                v.extend_from_slice(s.as_slice());
                Tensor::from_vec(v, &[6]).unwrap()
            })
            .unwrap();
        assert_eq!(doubled.sample_shape(), &[6]);
        assert_eq!(doubled.len(), 6);
        assert_eq!(doubled.labels(), ds.labels());
    }

    #[test]
    fn map_samples_detects_inconsistent_transform() {
        let ds = toy();
        let mut flip = false;
        let res = ds.map_samples(|s| {
            flip = !flip;
            if flip {
                s.clone()
            } else {
                Tensor::zeros(&[4])
            }
        });
        assert!(res.is_err());
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(Tensor::zeros(&[0, 3]), vec![], 2).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.batches(2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = toy().batches(0);
    }
}
