//! IDX file format (the container real MNIST ships in, per LeCun's
//! `yann.lecun.com/exdb/mnist` spec): big-endian magic with type/rank,
//! dimension sizes, then raw data.
//!
//! With a parser and writer pair, the repository can consume genuine
//! MNIST files when present and also round-trip its synthetic datasets
//! through the exact on-disk format the paper's pipeline would read.

use crate::dataset::Dataset;
use crate::error::DataError;
use ffdl_tensor::Tensor;
use std::io::{Read, Write};

const TYPE_U8: u8 = 0x08;

fn read_u32_be<R: Read>(r: &mut R) -> Result<u32, DataError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_be_bytes(buf))
}

/// Parses an IDX file of unsigned bytes into a tensor, scaling values to
/// `[0, 1]` (the standard MNIST normalization).
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`DataError::IdxFormat`] on a bad magic number, unsupported
/// element type, or absurd dimensions, and [`DataError::Io`] on truncated
/// input.
pub fn read_idx<R: Read>(mut reader: R) -> Result<Tensor, DataError> {
    let magic = read_u32_be(&mut reader)?;
    let ty = ((magic >> 8) & 0xFF) as u8;
    let rank = (magic & 0xFF) as usize;
    if magic >> 16 != 0 {
        return Err(DataError::IdxFormat(format!(
            "bad magic 0x{magic:08X}: first two bytes must be zero"
        )));
    }
    if ty != TYPE_U8 {
        return Err(DataError::IdxFormat(format!(
            "unsupported element type 0x{ty:02X} (only unsigned byte 0x08)"
        )));
    }
    if rank == 0 || rank > 4 {
        return Err(DataError::IdxFormat(format!("unsupported rank {rank}")));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(read_u32_be(&mut reader)? as usize);
    }
    let n: usize = shape.iter().product();
    if n > 1 << 30 {
        return Err(DataError::IdxFormat(format!(
            "element count {n} exceeds sanity bound"
        )));
    }
    let mut bytes = vec![0u8; n];
    reader.read_exact(&mut bytes)?;
    let data: Vec<f32> = bytes.into_iter().map(|b| b as f32 / 255.0).collect();
    Tensor::from_vec(data, &shape).map_err(|e| DataError::IdxFormat(e.to_string()))
}

/// Writes a tensor as an IDX file of unsigned bytes, mapping `[0, 1]`
/// float intensities back to `0..=255` (values are clamped).
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Returns [`DataError::IdxFormat`] for tensors of rank 0 or > 4, and
/// [`DataError::Io`] on write failure.
pub fn write_idx<W: Write>(tensor: &Tensor, mut writer: W) -> Result<(), DataError> {
    let rank = tensor.ndim();
    if rank == 0 || rank > 4 {
        return Err(DataError::IdxFormat(format!(
            "idx supports rank 1–4, got {rank}"
        )));
    }
    let magic: u32 = ((TYPE_U8 as u32) << 8) | rank as u32;
    writer.write_all(&magic.to_be_bytes())?;
    for &d in tensor.shape() {
        writer.write_all(&(d as u32).to_be_bytes())?;
    }
    for &v in tensor.as_slice() {
        let byte = (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        writer.write_all(&[byte])?;
    }
    Ok(())
}

/// Loads a labelled dataset from a pair of IDX buffers (images + labels),
/// e.g. `train-images-idx3-ubyte` / `train-labels-idx1-ubyte`.
///
/// # Errors
///
/// Returns [`DataError`] variants when either file is malformed or the
/// counts disagree.
pub fn read_idx_dataset<R1: Read, R2: Read>(
    images: R1,
    labels: R2,
    num_classes: usize,
) -> Result<Dataset, DataError> {
    let images = read_idx(images)?;
    let label_tensor = read_idx(labels)?;
    if label_tensor.ndim() != 1 {
        return Err(DataError::IdxFormat(format!(
            "label file must be rank 1, got {:?}",
            label_tensor.shape()
        )));
    }
    // Labels were scaled by 1/255 on read; undo to recover class indices.
    let labels: Vec<usize> = label_tensor
        .as_slice()
        .iter()
        .map(|&v| (v * 255.0).round() as usize)
        .collect();
    Dataset::new(images, labels, num_classes)
}

/// Writes a dataset as an IDX image/label buffer pair.
///
/// # Errors
///
/// Returns [`DataError`] variants on unsupported shapes or I/O failure.
pub fn write_idx_dataset<W1: Write, W2: Write>(
    dataset: &Dataset,
    images: W1,
    labels: W2,
) -> Result<(), DataError> {
    write_idx(dataset.inputs(), images)?;
    let label_data: Vec<f32> = dataset
        .labels()
        .iter()
        .map(|&l| l as f32 / 255.0)
        .collect();
    let label_tensor = Tensor::from_vec(label_data, &[dataset.len()])
        .map_err(|e| DataError::IdxFormat(e.to_string()))?;
    write_idx(&label_tensor, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth_mnist::{synthetic_mnist, MnistConfig};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;
    use std::io::Cursor;

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_fn(&[3, 4, 5], |i| (i % 256) as f32 / 255.0);
        let mut buf = Vec::new();
        write_idx(&t, &mut buf).unwrap();
        let back = read_idx(Cursor::new(buf)).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn header_layout_matches_spec() {
        // Rank-3 u8 file: magic 0x00000803 — exactly MNIST's image magic.
        let t = Tensor::zeros(&[2, 3, 3]);
        let mut buf = Vec::new();
        write_idx(&t, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[0x00, 0x00, 0x08, 0x03]);
        assert_eq!(&buf[4..8], &[0, 0, 0, 2]);
        assert_eq!(buf.len(), 4 + 3 * 4 + 18);
    }

    #[test]
    fn rejects_bad_magic_and_type() {
        let bad = vec![0xFFu8, 0x00, 0x08, 0x01, 0, 0, 0, 0];
        assert!(matches!(
            read_idx(Cursor::new(bad)),
            Err(DataError::IdxFormat(_))
        ));
        let bad_type = vec![0x00u8, 0x00, 0x0D, 0x01, 0, 0, 0, 0];
        assert!(matches!(
            read_idx(Cursor::new(bad_type)),
            Err(DataError::IdxFormat(_))
        ));
        let bad_rank = vec![0x00u8, 0x00, 0x08, 0x07];
        assert!(matches!(
            read_idx(Cursor::new(bad_rank)),
            Err(DataError::IdxFormat(_))
        ));
    }

    #[test]
    fn truncated_data_is_io_error() {
        let t = Tensor::zeros(&[4, 4]);
        let mut buf = Vec::new();
        write_idx(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_idx(Cursor::new(buf)), Err(DataError::Io(_))));
    }

    #[test]
    fn dataset_roundtrip_preserves_labels() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ds = synthetic_mnist(12, &MnistConfig::default(), &mut rng).unwrap();
        let mut img_buf = Vec::new();
        let mut lbl_buf = Vec::new();
        write_idx_dataset(&ds, &mut img_buf, &mut lbl_buf).unwrap();
        let back = read_idx_dataset(Cursor::new(img_buf), Cursor::new(lbl_buf), 10).unwrap();
        assert_eq!(back.len(), 12);
        assert_eq!(back.labels(), ds.labels());
        assert_eq!(back.sample_shape(), ds.sample_shape());
        // 8-bit quantization bounds the pixel error.
        for (a, b) in back
            .inputs()
            .as_slice()
            .iter()
            .zip(ds.inputs().as_slice())
        {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn label_file_must_be_rank1() {
        let images = {
            let mut b = Vec::new();
            write_idx(&Tensor::zeros(&[2, 3, 3]), &mut b).unwrap();
            b
        };
        let bad_labels = {
            let mut b = Vec::new();
            write_idx(&Tensor::zeros(&[2, 1]), &mut b).unwrap();
            b
        };
        assert!(read_idx_dataset(Cursor::new(images), Cursor::new(bad_labels), 10).is_err());
    }

    #[test]
    fn write_rejects_rank0_and_rank5() {
        let mut sink = Vec::new();
        assert!(write_idx(&Tensor::zeros(&[]), &mut sink).is_err());
        assert!(write_idx(&Tensor::zeros(&[1, 1, 1, 1, 1]), &mut sink).is_err());
    }
}
