//! Preprocessing pipeline of §V-B: bilinear resize of the MNIST images to
//! the network's input resolution (16×16 for Arch. 1's 256 inputs, 11×11
//! for Arch. 2's 121 inputs), flattening, and normalization.

use crate::dataset::Dataset;
use crate::error::DataError;
use ffdl_tensor::bilinear_resize;
#[cfg(test)]
use ffdl_tensor::Tensor;

/// Resizes every image in a dataset of `[H, W]` or `[C, H, W]` samples to
/// `side × side` with the bilinear transformation the paper uses.
///
/// # Errors
///
/// Returns [`DataError::Inconsistent`] when samples are not image-shaped.
pub fn resize_images(dataset: &Dataset, side: usize) -> Result<Dataset, DataError> {
    let rank = dataset.sample_shape().len();
    if !(rank == 2 || rank == 3) {
        return Err(DataError::Inconsistent(format!(
            "resize expects [H, W] or [C, H, W] samples, got {:?}",
            dataset.sample_shape()
        )));
    }
    dataset.map_samples(|img| {
        bilinear_resize(img, side, side).expect("validated image rank and non-zero size")
    })
}

/// Flattens every sample to a rank-1 feature vector (the FC input form).
///
/// # Errors
///
/// Returns [`DataError::Inconsistent`] if the dataset is malformed.
pub fn flatten_samples(dataset: &Dataset) -> Result<Dataset, DataError> {
    dataset.map_samples(|s| {
        let n = s.len();
        s.reshape(&[n]).expect("element count is unchanged")
    })
}

/// Standardizes inputs to zero mean and unit variance, computed over the
/// whole dataset (returns the dataset unchanged when the variance
/// vanishes).
///
/// # Errors
///
/// Returns [`DataError::Inconsistent`] if the dataset is malformed.
pub fn standardize(dataset: &Dataset) -> Result<Dataset, DataError> {
    let data = dataset.inputs().as_slice();
    if data.is_empty() {
        return Ok(dataset.clone());
    }
    let mean = data.iter().sum::<f32>() / data.len() as f32;
    let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
    if var <= f32::EPSILON {
        return Ok(dataset.clone());
    }
    let std = var.sqrt();
    dataset.map_samples(|s| s.map(|v| (v - mean) / std))
}

/// The full MNIST preprocessing of §V-B: bilinear resize to `side×side`,
/// flatten to `side²` features, standardize.
///
/// `side = 16` reproduces Arch. 1's 256-neuron input layer;
/// `side = 11` reproduces Arch. 2's 121-neuron input layer.
///
/// # Errors
///
/// Returns [`DataError`] variants on malformed datasets.
pub fn mnist_preprocess(dataset: &Dataset, side: usize) -> Result<Dataset, DataError> {
    standardize(&flatten_samples(&resize_images(dataset, side)?)?)
}

/// Reshapes flat `[C·H·W]` samples back to `[C, H, W]` images (for CONV
/// input).
///
/// # Errors
///
/// Returns [`DataError::Inconsistent`] when the element count does not
/// factor as `c·h·w`.
pub fn reshape_samples(
    dataset: &Dataset,
    shape: &[usize],
) -> Result<Dataset, DataError> {
    let expected: usize = shape.iter().product();
    let actual: usize = dataset.sample_shape().iter().product();
    if expected != actual {
        return Err(DataError::Inconsistent(format!(
            "cannot reshape {actual}-element samples to {shape:?}"
        )));
    }
    let shape = shape.to_vec();
    dataset.map_samples(move |s| s.reshape(&shape).expect("element count checked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth_cifar::{synthetic_cifar, CifarConfig};
    use crate::synth_mnist::{synthetic_mnist, MnistConfig};
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn mnist(n: usize) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(8);
        synthetic_mnist(n, &MnistConfig::default(), &mut rng).unwrap()
    }

    #[test]
    fn resize_to_arch1_and_arch2_inputs() {
        let ds = mnist(5);
        let a1 = resize_images(&ds, 16).unwrap();
        assert_eq!(a1.sample_shape(), &[16, 16]);
        let a2 = resize_images(&ds, 11).unwrap();
        assert_eq!(a2.sample_shape(), &[11, 11]);
    }

    #[test]
    fn resize_multichannel() {
        let mut rng = SmallRng::seed_from_u64(9);
        let ds = synthetic_cifar(3, &CifarConfig::default(), &mut rng).unwrap();
        let r = resize_images(&ds, 16).unwrap();
        assert_eq!(r.sample_shape(), &[3, 16, 16]);
    }

    #[test]
    fn resize_rejects_flat_samples() {
        let flat = flatten_samples(&mnist(2)).unwrap();
        assert!(resize_images(&flat, 16).is_err());
    }

    #[test]
    fn flatten_shapes() {
        let ds = mnist(3);
        let flat = flatten_samples(&ds).unwrap();
        assert_eq!(flat.sample_shape(), &[784]);
        assert_eq!(flat.labels(), ds.labels());
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let ds = flatten_samples(&mnist(10)).unwrap();
        let std = standardize(&ds).unwrap();
        let data = std.inputs().as_slice();
        let mean = data.iter().sum::<f32>() / data.len() as f32;
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn standardize_constant_dataset_is_noop() {
        let ds = Dataset::new(Tensor::filled(&[3, 4], 2.0), vec![0, 0, 0], 1).unwrap();
        let out = standardize(&ds).unwrap();
        assert_eq!(out.inputs().as_slice(), ds.inputs().as_slice());
    }

    #[test]
    fn full_mnist_preprocess() {
        let ds = mnist(4);
        let p16 = mnist_preprocess(&ds, 16).unwrap();
        assert_eq!(p16.sample_shape(), &[256]);
        let p11 = mnist_preprocess(&ds, 11).unwrap();
        assert_eq!(p11.sample_shape(), &[121]);
    }

    #[test]
    fn reshape_samples_roundtrip() {
        let ds = mnist(2);
        let flat = flatten_samples(&ds).unwrap();
        let back = reshape_samples(&flat, &[1, 28, 28]).unwrap();
        assert_eq!(back.sample_shape(), &[1, 28, 28]);
        assert_eq!(back.inputs().as_slice(), ds.inputs().as_slice());
        assert!(reshape_samples(&flat, &[2, 28, 28]).is_err());
    }

    #[test]
    fn preprocessing_preserves_class_information() {
        // A nearest-centroid classifier on the preprocessed features must
        // beat chance by a wide margin — the resize keeps classes apart.
        let train = mnist_preprocess(&mnist(200), 16).unwrap();
        let test = mnist_preprocess(&mnist(50), 16).unwrap();
        let dim = 256;
        let mut centroids = vec![vec![0.0f32; dim]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.len() {
            let label = train.labels()[i];
            counts[label] += 1;
            for (c, &v) in centroids[label]
                .iter_mut()
                .zip(&train.inputs().as_slice()[i * dim..(i + 1) * dim])
            {
                *c += v;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= n.max(1) as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let x = &test.inputs().as_slice()[i * dim..(i + 1) * dim];
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a].iter().zip(x).map(|(c, v)| (c - v).powi(2)).sum();
                    let db: f32 = centroids[b].iter().zip(x).map(|(c, v)| (c - v).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.6, "nearest-centroid accuracy only {acc}");
    }
}
