//! Synthetic CIFAR-10-like dataset: 32×32 RGB images in ten classes.
//!
//! Substitution note (DESIGN.md §2): real CIFAR-10 is not available
//! offline. Each class is a procedural texture with a class-specific
//! colour palette, sinusoidal texture frequency and orientation, plus a
//! class-dependent geometric blob; per-sample jitter (phase, blob
//! position, noise) keeps the task non-trivial. What the paper measures —
//! runtime per image for Arch. 3 and the relative accuracy of the
//! compressed model — depends on the 3×32×32 input geometry, not on the
//! photographic content.

use crate::dataset::Dataset;
use crate::error::DataError;
use ffdl_tensor::Tensor;
use ffdl_rng::Rng;

/// Image side of the generated images (matches CIFAR-10).
pub const CIFAR_SIDE: usize = 32;
/// Colour channels.
pub const CIFAR_CHANNELS: usize = 3;

/// Per-class signature: base RGB colour, texture frequency, texture
/// orientation (radians), blob kind (0 disc, 1 square, 2 cross).
struct ClassSpec {
    color: [f32; 3],
    freq: f32,
    angle: f32,
    blob: u8,
}

fn class_spec(class: usize) -> ClassSpec {
    debug_assert!(class < 10);
    const COLORS: [[f32; 3]; 10] = [
        [0.9, 0.2, 0.2],
        [0.2, 0.9, 0.2],
        [0.2, 0.3, 0.9],
        [0.9, 0.9, 0.2],
        [0.8, 0.3, 0.8],
        [0.2, 0.9, 0.9],
        [0.9, 0.6, 0.2],
        [0.5, 0.5, 0.9],
        [0.6, 0.9, 0.5],
        [0.7, 0.7, 0.7],
    ];
    ClassSpec {
        color: COLORS[class],
        freq: 0.25 + 0.18 * (class % 5) as f32,
        angle: (class as f32) * std::f32::consts::PI / 10.0,
        blob: (class % 3) as u8,
    }
}

/// Configuration for the synthetic CIFAR generator.
#[derive(Debug, Clone, Copy)]
pub struct CifarConfig {
    /// Additive noise standard deviation.
    pub noise: f32,
    /// Blob radius in pixels.
    pub blob_radius: i32,
}

impl Default for CifarConfig {
    fn default() -> Self {
        Self {
            noise: 0.12,
            blob_radius: 6,
        }
    }
}

fn render_image<R: Rng>(class: usize, cfg: &CifarConfig, rng: &mut R) -> Vec<f32> {
    let spec = class_spec(class);
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let cx = rng.gen_range(cfg.blob_radius..(CIFAR_SIDE as i32 - cfg.blob_radius));
    let cy = rng.gen_range(cfg.blob_radius..(CIFAR_SIDE as i32 - cfg.blob_radius));
    let (sin_a, cos_a) = spec.angle.sin_cos();

    let mut img = vec![0.0f32; CIFAR_CHANNELS * CIFAR_SIDE * CIFAR_SIDE];
    for y in 0..CIFAR_SIDE {
        for x in 0..CIFAR_SIDE {
            // Oriented sinusoidal texture in [0, 1].
            let u = cos_a * x as f32 + sin_a * y as f32;
            let tex = 0.5 + 0.5 * (spec.freq * u + phase).sin();

            // Class-shaped blob mask.
            let dx = x as i32 - cx;
            let dy = y as i32 - cy;
            let r = cfg.blob_radius;
            let inside = match spec.blob {
                0 => dx * dx + dy * dy <= r * r,
                1 => dx.abs() <= r && dy.abs() <= r,
                _ => dx.abs() <= 1 && dy.abs() <= r || dy.abs() <= 1 && dx.abs() <= r,
            };
            let blob = if inside { 0.35 } else { 0.0 };

            for c in 0..CIFAR_CHANNELS {
                let base = spec.color[c] * (0.45 + 0.45 * tex) + blob;
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                img[c * CIFAR_SIDE * CIFAR_SIDE + y * CIFAR_SIDE + x] =
                    (base + cfg.noise * z).clamp(0.0, 1.0);
            }
        }
    }
    img
}

/// Generates a synthetic CIFAR-10-like dataset of `n` samples with
/// balanced cyclic labels, shaped `[n, 3, 32, 32]`.
///
/// # Errors
///
/// Never fails in practice; the `Result` mirrors the other dataset
/// constructors.
pub fn synthetic_cifar<R: Rng>(
    n: usize,
    cfg: &CifarConfig,
    rng: &mut R,
) -> Result<Dataset, DataError> {
    let plane = CIFAR_CHANNELS * CIFAR_SIDE * CIFAR_SIDE;
    let mut data = Vec::with_capacity(n * plane);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 10;
        data.extend(render_image(class, cfg, rng));
        labels.push(class);
    }
    let inputs = Tensor::from_vec(data, &[n, CIFAR_CHANNELS, CIFAR_SIDE, CIFAR_SIDE])
        .expect("size by construction");
    Dataset::new(inputs, labels, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(4242)
    }

    #[test]
    fn shapes_and_labels() {
        let ds = synthetic_cifar(23, &CifarConfig::default(), &mut rng()).unwrap();
        assert_eq!(ds.len(), 23);
        assert_eq!(ds.sample_shape(), &[3, 32, 32]);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.labels()[12], 2);
    }

    #[test]
    fn pixels_in_unit_range() {
        let ds = synthetic_cifar(10, &CifarConfig::default(), &mut rng()).unwrap();
        for &v in ds.inputs().as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn classes_have_distinct_mean_colors() {
        let cfg = CifarConfig {
            noise: 0.0,
            blob_radius: 4,
        };
        let mut r = rng();
        let mut means = Vec::new();
        for class in 0..10 {
            let img = render_image(class, &cfg, &mut r);
            let plane = CIFAR_SIDE * CIFAR_SIDE;
            let mean: Vec<f32> = (0..3)
                .map(|c| img[c * plane..(c + 1) * plane].iter().sum::<f32>() / plane as f32)
                .collect();
            means.push(mean);
        }
        for a in 0..10 {
            for b in (a + 1)..10 {
                let d: f32 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y).abs())
                    .sum();
                assert!(d > 0.02, "classes {a} and {b} mean colors too close: {d}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = synthetic_cifar(6, &CifarConfig::default(), &mut rng()).unwrap();
        let b = synthetic_cifar(6, &CifarConfig::default(), &mut rng()).unwrap();
        assert_eq!(a.inputs().as_slice(), b.inputs().as_slice());
    }

    #[test]
    fn samples_of_same_class_vary() {
        let ds = synthetic_cifar(20, &CifarConfig::default(), &mut rng()).unwrap();
        let (x0, _) = ds.batch(&[0]);
        let (x10, _) = ds.batch(&[10]);
        assert_ne!(x0.as_slice(), x10.as_slice());
    }
}
