//! # ffdl-data — datasets and preprocessing
//!
//! Data substrate for the reproduction of *"FFT-Based Deep Learning
//! Deployment in Embedded Systems"* (Lin et al., DATE 2018):
//!
//! - [`Dataset`]: labelled samples with batching, shuffling, splitting and
//!   per-sample transforms,
//! - [`synthetic_mnist`] / [`synthetic_cifar`]: deterministic synthetic
//!   stand-ins for the paper's MNIST and CIFAR-10 workloads (see
//!   DESIGN.md §2 for the substitution argument),
//! - [`read_idx`] / [`write_idx`]: the IDX container real MNIST ships in,
//!   so genuine files are usable when present,
//! - [`mnist_preprocess`]: the §V-B bilinear-resize pipeline producing the
//!   256-dim (16×16) and 121-dim (11×11) input vectors of Arch. 1/2.
//!
//! # Examples
//!
//! ```
//! use ffdl_data::{mnist_preprocess, synthetic_mnist, MnistConfig};
//! use ffdl_rng::SeedableRng;
//!
//! let mut rng = ffdl_rng::rngs::SmallRng::seed_from_u64(0);
//! let raw = synthetic_mnist(100, &MnistConfig::default(), &mut rng)?;
//! let arch1_inputs = mnist_preprocess(&raw, 16)?; // 256 features
//! assert_eq!(arch1_inputs.sample_shape(), &[256]);
//! # Ok::<(), ffdl_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod idx;
mod pipeline;
mod synth_cifar;
mod synth_mnist;

pub use dataset::{Batches, Dataset};
pub use error::DataError;
pub use idx::{read_idx, read_idx_dataset, write_idx, write_idx_dataset};
pub use pipeline::{
    flatten_samples, mnist_preprocess, reshape_samples, resize_images, standardize,
};
pub use synth_cifar::{synthetic_cifar, CifarConfig, CIFAR_CHANNELS, CIFAR_SIDE};
pub use synth_mnist::{synthetic_mnist, MnistConfig, MNIST_SIDE};
