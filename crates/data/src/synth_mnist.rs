//! Synthetic MNIST-like dataset: 28×28 greyscale digit images.
//!
//! Substitution note (DESIGN.md §2): the paper evaluates on real MNIST,
//! which is not available offline here. The generator renders the ten
//! digits as seven-segment glyphs with per-sample jitter — random
//! translation, stroke-thickness variation, amplitude scaling and additive
//! noise — so the ten classes are separable but not trivially so. The
//! paper's claims (relative accuracy of block-circulant vs dense, runtime
//! per image) depend only on input dimensionality and architecture, which
//! this preserves.

use crate::dataset::Dataset;
use crate::error::DataError;
use ffdl_tensor::Tensor;
use ffdl_rng::Rng;

/// Image side of the generated digits (matches MNIST).
pub const MNIST_SIDE: usize = 28;

/// Seven-segment membership per digit: `[A, B, C, D, E, F, G]` with the
/// standard layout (A top, B top-right, C bottom-right, D bottom, E
/// bottom-left, F top-left, G middle).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],    // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],   // 2
    [true, true, true, true, false, false, true],   // 3
    [false, true, true, false, false, true, true],  // 4
    [true, false, true, true, false, true, true],   // 5
    [true, false, true, true, true, true, true],    // 6
    [true, true, true, false, false, false, false], // 7
    [true, true, true, true, true, true, true],     // 8
    [true, true, true, true, false, true, true],    // 9
];

/// Configuration for the synthetic MNIST generator.
#[derive(Debug, Clone, Copy)]
pub struct MnistConfig {
    /// Maximum |translation| in pixels applied per sample.
    pub max_shift: i32,
    /// Stroke half-thickness in pixels (base 1, jittered ±1).
    pub thickness: i32,
    /// Standard deviation of the additive noise (in \[0,1\] intensity units).
    pub noise: f32,
}

impl Default for MnistConfig {
    fn default() -> Self {
        Self {
            max_shift: 3,
            thickness: 1,
            noise: 0.15,
        }
    }
}

/// Renders one digit glyph with jitter into a 28×28 buffer.
fn render_digit<R: Rng>(digit: usize, cfg: &MnistConfig, rng: &mut R) -> Vec<f32> {
    debug_assert!(digit < 10);
    let mut img = vec![0.0f32; MNIST_SIDE * MNIST_SIDE];
    // Glyph box inside the canvas, in glyph coordinates.
    let (x0, y0, gw, gh) = (8i32, 4i32, 12i32, 20i32);
    let dx = rng.gen_range(-cfg.max_shift..=cfg.max_shift);
    let dy = rng.gen_range(-cfg.max_shift..=cfg.max_shift);
    let t = (cfg.thickness + rng.gen_range(-1i32..=1)).max(1);
    let amp = 0.75 + rng.gen_range(0.0f32..0.25);

    // Segment endpoints in glyph coordinates: (x1, y1, x2, y2).
    let mid = y0 + gh / 2;
    let segs: [(i32, i32, i32, i32); 7] = [
        (x0, y0, x0 + gw, y0),                 // A top
        (x0 + gw, y0, x0 + gw, mid),           // B top-right
        (x0 + gw, mid, x0 + gw, y0 + gh),      // C bottom-right
        (x0, y0 + gh, x0 + gw, y0 + gh),       // D bottom
        (x0, mid, x0, y0 + gh),                // E bottom-left
        (x0, y0, x0, mid),                     // F top-left
        (x0, mid, x0 + gw, mid),               // G middle
    ];

    for (s, &(sx1, sy1, sx2, sy2)) in segs.iter().enumerate() {
        if !SEGMENTS[digit][s] {
            continue;
        }
        // Draw the segment as a thick axis-aligned rectangle.
        let (lo_x, hi_x) = (sx1.min(sx2) - t, sx1.max(sx2) + t);
        let (lo_y, hi_y) = (sy1.min(sy2) - t, sy1.max(sy2) + t);
        for y in lo_y..=hi_y {
            for x in lo_x..=hi_x {
                let (px, py) = (x + dx, y + dy);
                if px < 0 || py < 0 || px >= MNIST_SIDE as i32 || py >= MNIST_SIDE as i32 {
                    continue;
                }
                img[py as usize * MNIST_SIDE + px as usize] = amp;
            }
        }
    }

    // Additive noise, clamped to [0, 1].
    for v in &mut img {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        *v = (*v + cfg.noise * z).clamp(0.0, 1.0);
    }
    img
}

/// Generates a synthetic MNIST-like dataset of `n` samples with balanced,
/// cyclic class labels, shaped `[n, 28, 28]`.
///
/// Deterministic given the RNG state.
///
/// # Errors
///
/// Never fails in practice; the `Result` mirrors the other dataset
/// constructors.
pub fn synthetic_mnist<R: Rng>(
    n: usize,
    cfg: &MnistConfig,
    rng: &mut R,
) -> Result<Dataset, DataError> {
    let mut data = Vec::with_capacity(n * MNIST_SIDE * MNIST_SIDE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % 10;
        data.extend(render_digit(digit, cfg, rng));
        labels.push(digit);
    }
    let inputs = Tensor::from_vec(data, &[n, MNIST_SIDE, MNIST_SIDE])
        .expect("size by construction");
    Dataset::new(inputs, labels, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffdl_rng::rngs::SmallRng;
    use ffdl_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(2024)
    }

    #[test]
    fn shapes_and_labels() {
        let ds = synthetic_mnist(25, &MnistConfig::default(), &mut rng()).unwrap();
        assert_eq!(ds.len(), 25);
        assert_eq!(ds.sample_shape(), &[28, 28]);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.labels()[0], 0);
        assert_eq!(ds.labels()[13], 3);
    }

    #[test]
    fn pixels_in_unit_range() {
        let ds = synthetic_mnist(20, &MnistConfig::default(), &mut rng()).unwrap();
        for &v in ds.inputs().as_slice() {
            assert!((0.0..=1.0).contains(&v), "pixel {v} out of range");
        }
    }

    #[test]
    fn digits_are_distinguishable_without_noise() {
        // With noise off and no jitter, different digits must differ and
        // the same digit must be identical across renders.
        let cfg = MnistConfig {
            max_shift: 0,
            thickness: 1,
            noise: 0.0,
        };
        let mut r = rng();
        let renders: Vec<Vec<f32>> = (0..10).map(|d| render_digit(d, &cfg, &mut r)).collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let diff: f32 = renders[a]
                    .iter()
                    .zip(&renders[b])
                    .map(|(x, y)| (x - y).abs())
                    .sum();
                assert!(diff > 1.0, "digits {a} and {b} look identical");
            }
        }
    }

    #[test]
    fn eight_covers_every_other_digit() {
        // Segment-wise, 8 lights all segments: every other digit's lit
        // pixels are a subset (with zero jitter).
        let cfg = MnistConfig {
            max_shift: 0,
            thickness: 1,
            noise: 0.0,
        };
        // A fresh same-seed rng per glyph gives every digit identical
        // thickness/amplitude jitter, so the subset property is exact.
        let eight = render_digit(8, &cfg, &mut rng());
        for d in 0..10 {
            let img = render_digit(d, &cfg, &mut rng());
            for (i, (&v, &e)) in img.iter().zip(&eight).enumerate() {
                if v > 0.0 {
                    assert!(e > 0.0, "digit {d} pixel {i} lit outside 8's glyph");
                }
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = synthetic_mnist(10, &MnistConfig::default(), &mut rng()).unwrap();
        let b = synthetic_mnist(10, &MnistConfig::default(), &mut rng()).unwrap();
        assert_eq!(a.inputs().as_slice(), b.inputs().as_slice());
    }

    #[test]
    fn noise_changes_samples() {
        let mut r = rng();
        let ds = synthetic_mnist(20, &MnistConfig::default(), &mut r).unwrap();
        let (x0, _) = ds.batch(&[0]);
        let (x10, _) = ds.batch(&[10]); // same digit, different render
        assert_ne!(x0.as_slice(), x10.as_slice());
    }

    #[test]
    fn empty_generation() {
        let ds = synthetic_mnist(0, &MnistConfig::default(), &mut rng()).unwrap();
        assert!(ds.is_empty());
    }
}
