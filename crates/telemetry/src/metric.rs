//! Scalar instruments: the monotone [`Counter`] and the last-value
//! [`Gauge`].
//!
//! Both are single atomics with `Relaxed` ordering — telemetry needs
//! losslessness (every increment lands exactly once, guaranteed by the
//! atomic RMW) but no cross-metric ordering, so the cheapest ordering is
//! the right one.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter (requests served, cache
/// hits, rejections).
///
/// # Examples
///
/// ```
/// use ffdl_telemetry::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping — a practical impossibility for event counts).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value instrument for levels that go up *and* down (queue
/// depth, in-flight requests).
///
/// Merging registry snapshots takes the **maximum** of gauge values —
/// for the level-style quantities gauges are used for, the high-water
/// mark across workers is the meaningful aggregate (summing
/// instantaneous levels sampled at different times is not).
///
/// # Examples
///
/// ```
/// use ffdl_telemetry::Gauge;
///
/// let g = Gauge::new();
/// g.set(7);
/// g.add(2);
/// g.sub(4);
/// assert_eq!(g.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(-3);
        assert_eq!(g.get(), -3);
        g.add(10);
        g.sub(2);
        assert_eq!(g.get(), 5);
    }
}
