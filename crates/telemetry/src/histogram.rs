//! Fixed-size log₂-bucketed histogram with a lock-free record path and
//! mergeable snapshots.
//!
//! Bucket 0 holds exact zeros; bucket `b ≥ 1` holds values in
//! `[2^(b−1), 2^b)` — 65 buckets cover the full `u64` range, so a
//! nanosecond-scale latency and a batch size share one layout and
//! snapshots merge by plain bucket-wise addition. Recording is two
//! `Relaxed` `fetch_add`s on fixed-size atomics: no locks, no
//! allocation, safe from any thread.
//!
//! [`HistogramSnapshot::percentile`] follows the rank convention of
//! `ffdl_bench::harness::percentile` (linear interpolation at rank
//! `p/100 · (n−1)` over the sorted multiset), with the j-th recorded
//! value approximated by a uniform spread across its bucket — so
//! quantiles are monotone in `p` and read on the same scale as the
//! bench history.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: one for zero plus one per power of two up to
/// `2^63`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `⌊log₂ v⌋ + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive-exclusive value range `[lo, hi)` covered by a bucket, as
/// floats (bucket 0 is the degenerate `[0, 0]`).
///
/// # Panics
///
/// Panics if `bucket >= BUCKETS`.
pub fn bucket_bounds(bucket: usize) -> (f64, f64) {
    assert!(bucket < BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        (0.0, 0.0)
    } else {
        (2f64.powi(bucket as i32 - 1), 2f64.powi(bucket as i32))
    }
}

/// A lock-free log₂ histogram.
///
/// # Examples
///
/// ```
/// use ffdl_telemetry::Histogram;
///
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4);
/// assert_eq!(snap.sum(), 106);
/// assert!(snap.percentile(0.0) >= 1.0);
/// assert!(snap.percentile(100.0) <= 128.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free: two `Relaxed` `fetch_add`s.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    ///
    /// Concurrent recorders may land between the bucket and sum loads;
    /// the bucket counts themselves are each exact (atomic RMWs), which
    /// is the property the tests pin.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Per-bucket observation counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Adds another snapshot's observations into this one — how
    /// per-worker registries combine into one report.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Approximate value of the j-th smallest observation (0-based),
    /// assuming observations spread uniformly across their bucket. A
    /// `j >= count()` clamps to the top of the highest non-empty bucket.
    fn value_at(&self, j: u64) -> f64 {
        let mut below = 0u64;
        let mut top = 0.0f64;
        for (b, &k) in self.buckets.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(b);
            if j < below + k {
                let pos = (j - below) as f64 + 0.5;
                return lo + (hi - lo) * (pos / k as f64);
            }
            below += k;
            top = hi;
        }
        top
    }

    /// Percentile `p ∈ [0, 100]`, with the rank convention of
    /// `ffdl_bench::harness::percentile`: linear interpolation at rank
    /// `p/100 · (n−1)` over the (approximated) sorted observations.
    /// Returns 0 for an empty histogram. Monotone non-decreasing in `p`.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.value_at(0);
        }
        let rank = (p / 100.0).clamp(0.0, 1.0) * (n - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let frac = rank - lo as f64;
        let a = self.value_at(lo);
        let b = self.value_at(hi);
        a + (b - a) * frac
    }

    /// Upper bound of the highest non-empty bucket (an over-estimate of
    /// the maximum observation), or 0 when empty.
    pub fn max_estimate(&self) -> f64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &k)| k > 0)
            .map(|(b, _)| bucket_bounds(b).1)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_their_indices() {
        for v in [1u64, 2, 3, 7, 8, 1 << 20, 3 << 40] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v as f64 && (v as f64) < hi, "v={v} lo={lo} hi={hi}");
        }
        assert_eq!(bucket_bounds(0), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_bounds_rejects_overflow() {
        let _ = bucket_bounds(BUCKETS);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.buckets()[0], 1);
        assert_eq!(s.buckets()[1], 1);
        assert_eq!(s.buckets()[64], 1);
        assert_eq!(s.sum(), 0); // 0 + 1 + MAX wraps around to 0
    }

    #[test]
    fn mean_and_percentiles_of_uniform_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000); // bucket [512, 1024)
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 1000.0).abs() < 1e-9);
        let p50 = s.percentile(50.0);
        assert!((512.0..1024.0).contains(&p50), "{p50}");
        assert!(s.percentile(0.0) >= 512.0);
        assert!(s.percentile(100.0) <= 1024.0);
    }

    #[test]
    fn percentile_empty_and_single() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.max_estimate(), 0.0);
        let h = Histogram::new();
        h.record(5);
        let s = h.snapshot();
        let v = s.percentile(50.0);
        assert!((4.0..8.0).contains(&v), "{v}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 5, 100, 1 << 30] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 5, 999, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn max_estimate_bounds_the_top_bucket() {
        let h = Histogram::new();
        h.record(700);
        let s = h.snapshot();
        assert_eq!(s.max_estimate(), 1024.0);
    }
}
