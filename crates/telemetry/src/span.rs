//! RAII span timing: a [`SpanTimer`] measures the wall time between its
//! creation and its drop, and records the elapsed nanoseconds into a
//! [`Histogram`].

use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Times a scope and records elapsed nanoseconds into a histogram on
/// drop.
///
/// The disabled form ([`SpanTimer::disabled`], or
/// [`crate::span`] with telemetry off) holds no histogram and never
/// reads the clock — constructing and dropping it is a couple of moves.
///
/// # Examples
///
/// ```
/// use ffdl_telemetry::{Histogram, SpanTimer};
/// use std::sync::Arc;
///
/// let hist = Arc::new(Histogram::new());
/// {
///     let _span = SpanTimer::start(Arc::clone(&hist));
///     // ... timed work ...
/// } // recorded here
/// let explicit = SpanTimer::start(Arc::clone(&hist)).stop();
/// assert!(explicit.is_some());
/// assert_eq!(hist.snapshot().count(), 2);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct SpanTimer {
    started: Option<(Instant, Arc<Histogram>)>,
}

impl SpanTimer {
    /// Starts timing; the elapsed nanoseconds land in `hist` when the
    /// span is dropped (or [`stop`](SpanTimer::stop)ped).
    pub fn start(hist: Arc<Histogram>) -> Self {
        Self {
            started: Some((Instant::now(), hist)),
        }
    }

    /// A no-op span: records nothing, never touches the clock.
    pub fn disabled() -> Self {
        Self { started: None }
    }

    /// Starts a real span when `on`, a no-op span otherwise.
    pub fn start_if(on: bool, hist: &Arc<Histogram>) -> Self {
        if on {
            Self::start(Arc::clone(hist))
        } else {
            Self::disabled()
        }
    }

    /// `true` when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.started.is_some()
    }

    /// Ends the span now, returning the recorded nanoseconds (`None`
    /// for a disabled span).
    pub fn stop(mut self) -> Option<u64> {
        self.finish()
    }

    fn finish(&mut self) -> Option<u64> {
        let (start, hist) = self.started.take()?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        hist.record(ns);
        Some(ns)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_once_on_drop() {
        let hist = Arc::new(Histogram::new());
        {
            let span = SpanTimer::start(Arc::clone(&hist));
            assert!(span.is_recording());
        }
        assert_eq!(hist.snapshot().count(), 1);
    }

    #[test]
    fn stop_records_and_suppresses_drop() {
        let hist = Arc::new(Histogram::new());
        let ns = SpanTimer::start(Arc::clone(&hist)).stop();
        assert!(ns.is_some());
        assert_eq!(hist.snapshot().count(), 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let hist = Arc::new(Histogram::new());
        {
            let span = SpanTimer::start_if(false, &hist);
            assert!(!span.is_recording());
        }
        assert_eq!(SpanTimer::disabled().stop(), None);
        assert_eq!(hist.snapshot().count(), 0);
    }

    #[test]
    fn start_if_true_records() {
        let hist = Arc::new(Histogram::new());
        drop(SpanTimer::start_if(true, &hist));
        assert_eq!(hist.snapshot().count(), 1);
    }
}
