//! The [`Registry`]: a named collection of instruments, and its
//! immutable, mergeable, exportable [`RegistrySnapshot`].
//!
//! Naming convention: `ffdl.<crate>.<metric>` (e.g.
//! `ffdl.fft.plan_cache.hit`, `ffdl.serve.batch_size`), with `_ns`
//! suffixes for nanosecond histograms. Registration takes a write lock
//! once per metric name; recording happens through the returned `Arc`
//! handles and never touches the registry again.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, RwLock};

/// A handle to a registered instrument.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotone event counter.
    Counter(Arc<Counter>),
    /// Last-value gauge.
    Gauge(Arc<Gauge>),
    /// Log₂ histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of instruments.
///
/// Lookups are get-or-register: the first call for a name creates the
/// instrument, later calls return the same `Arc`. Asking for an
/// existing name as a different instrument kind panics — that is a
/// naming bug, not a runtime condition.
///
/// # Examples
///
/// ```
/// use ffdl_telemetry::Registry;
///
/// let r = Registry::new();
/// r.counter("ffdl.doc.hits").add(3);
/// r.gauge("ffdl.doc.depth").set(7);
/// r.histogram("ffdl.doc.ns").record(1500);
/// let snap = r.snapshot();
/// assert_eq!(snap.counter("ffdl.doc.hits"), Some(3));
/// assert_eq!(snap.gauge("ffdl.doc.depth"), Some(7));
/// assert_eq!(snap.histogram("ffdl.doc.ns").unwrap().count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_register<T, F, G>(&self, name: &str, extract: F, create: G) -> Arc<T>
    where
        F: Fn(&Metric) -> Option<Arc<T>>,
        G: FnOnce() -> Metric,
    {
        if let Some(existing) = self.metrics.read().expect("registry poisoned").get(name) {
            return extract(existing).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    existing.kind()
                )
            });
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(create);
        extract(entry)
            .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", entry.kind()))
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_register(
            name,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_register(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_register(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::new())),
        )
    }

    /// The registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// An immutable copy of every registered metric's current state.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.metrics.read().expect("registry poisoned");
        RegistrySnapshot {
            metrics: map
                .iter()
                .map(|(name, metric)| {
                    let snap = match metric {
                        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Metric::Histogram(h) => {
                            MetricSnapshot::Histogram(Box::new(h.snapshot()))
                        }
                    };
                    (name.clone(), snap)
                })
                .collect(),
        }
    }
}

/// One metric's state inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state (boxed: a histogram snapshot is ~0.5 KiB,
    /// far larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// An immutable snapshot of a registry: mergeable (per-worker
/// registries → one report) and exportable as text or JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    metrics: BTreeMap<String, MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The snapshot of one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.get(name)
    }

    /// Counter value by name (`None` if absent or a different kind).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)? {
            MetricSnapshot::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (`None` if absent or a different kind).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name)? {
            MetricSnapshot::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot by name (`None` if absent or a different kind).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name)? {
            MetricSnapshot::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Folds another snapshot into this one: counters add, histograms
    /// add bucket-wise, gauges keep the maximum (the high-water mark —
    /// see [`crate::Gauge`]). A name colliding across kinds keeps the
    /// existing entry.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, theirs) in &other.metrics {
            match (self.metrics.get_mut(name), theirs) {
                (None, _) => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                (Some(MetricSnapshot::Counter(a)), MetricSnapshot::Counter(b)) => {
                    *a = a.wrapping_add(*b);
                }
                (Some(MetricSnapshot::Gauge(a)), MetricSnapshot::Gauge(b)) => {
                    *a = (*a).max(*b);
                }
                (Some(MetricSnapshot::Histogram(a)), MetricSnapshot::Histogram(b)) => {
                    a.merge(b);
                }
                (Some(_), _) => {} // kind collision: keep ours
            }
        }
    }

    /// Human-readable table, one metric per line (the `--metrics`
    /// output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "telemetry ({} metrics)", self.metrics.len()).expect("string write");
        for (name, snap) in &self.metrics {
            match snap {
                MetricSnapshot::Counter(v) => {
                    writeln!(out, "  {name:<44} counter   {v:>12}").expect("string write");
                }
                MetricSnapshot::Gauge(v) => {
                    writeln!(out, "  {name:<44} gauge     {v:>12}").expect("string write");
                }
                MetricSnapshot::Histogram(h) => {
                    writeln!(
                        out,
                        "  {name:<44} histogram count={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max<={:.0}",
                        h.count(),
                        h.mean(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0),
                        h.max_estimate(),
                    )
                    .expect("string write");
                }
            }
        }
        out
    }

    /// Stable JSON export (metrics sorted by name; histograms as
    /// count/sum/mean plus interpolated p50/p95/p99).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"telemetry\": [\n");
        for (i, (name, snap)) in self.metrics.iter().enumerate() {
            let row = match snap {
                MetricSnapshot::Counter(v) => format!(
                    "{{\"name\": \"{}\", \"type\": \"counter\", \"value\": {v}}}",
                    escape(name)
                ),
                MetricSnapshot::Gauge(v) => format!(
                    "{{\"name\": \"{}\", \"type\": \"gauge\", \"value\": {v}}}",
                    escape(name)
                ),
                MetricSnapshot::Histogram(h) => format!(
                    "{{\"name\": \"{}\", \"type\": \"histogram\", \"count\": {}, \
                     \"sum\": {}, \"mean\": {:.1}, \"p50\": {:.1}, \"p95\": {:.1}, \
                     \"p99\": {:.1}}}",
                    escape(name),
                    h.count(),
                    h.sum(),
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0),
                ),
            };
            out.push_str("    ");
            out.push_str(&row);
            out.push_str(if i + 1 == self.metrics.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("c");
        let b = r.counter("c");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.names(), vec!["c".to_string()]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("a.count").add(2);
        r.gauge("b.depth").set(-4);
        r.histogram("c.ns").record(100);
        let s = r.snapshot();
        assert_eq!(s.len(), 3);
        assert_eq!(s.counter("a.count"), Some(2));
        assert_eq!(s.gauge("b.depth"), Some(-4));
        assert_eq!(s.histogram("c.ns").unwrap().count(), 1);
        assert_eq!(s.counter("b.depth"), None); // kind-checked accessors
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn merge_combines_by_kind() {
        let r1 = Registry::new();
        r1.counter("hits").add(3);
        r1.gauge("depth").set(5);
        r1.histogram("ns").record(8);
        let r2 = Registry::new();
        r2.counter("hits").add(4);
        r2.gauge("depth").set(2);
        r2.histogram("ns").record(8);
        r2.counter("only_in_two").inc();

        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("hits"), Some(7));
        assert_eq!(merged.gauge("depth"), Some(5)); // max, not sum
        assert_eq!(merged.histogram("ns").unwrap().count(), 2);
        assert_eq!(merged.counter("only_in_two"), Some(1));
    }

    #[test]
    fn text_and_json_exports() {
        let r = Registry::new();
        r.counter("z.count").inc();
        r.gauge("a.depth").set(9);
        r.histogram("m.ns").record(1000);
        let s = r.snapshot();
        let text = s.to_text();
        assert!(text.contains("telemetry (3 metrics)"), "{text}");
        assert!(text.contains("z.count"), "{text}");
        assert!(text.contains("gauge"), "{text}");
        assert!(text.contains("p99"), "{text}");
        let json = s.to_json();
        assert!(json.contains("\"type\": \"counter\""), "{json}");
        assert!(json.contains("\"type\": \"gauge\""), "{json}");
        assert!(json.contains("\"p95\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // BTreeMap ordering: "a.depth" exported before "z.count".
        assert!(json.find("a.depth").unwrap() < json.find("z.count").unwrap());
    }

    #[test]
    fn empty_snapshot_exports() {
        let s = RegistrySnapshot::default();
        assert!(s.is_empty());
        assert!(s.to_text().contains("0 metrics"));
        assert!(s.to_json().ends_with("]\n}\n"));
    }
}
