//! # ffdl-telemetry — zero-dependency metrics & span tracing
//!
//! The paper's contribution is a *measured* claim: per-platform latency
//! and energy of the FFT kernel against the O(n²) baseline (§V,
//! Fig. 4–6). This crate makes the reproduction observable the same way
//! — always-on counters, gauges, log₂-bucketed histograms and RAII span
//! timers, built only on `std` (the workspace's hermetic-build policy),
//! so every perf PR can prove where time goes without ad-hoc
//! re-instrumentation.
//!
//! ## Model
//!
//! * **Instruments** — [`Counter`] (monotone, `u64`), [`Gauge`]
//!   (last-value, `i64`), [`Histogram`] (fixed-size log₂ buckets,
//!   lock-free `record`), and [`SpanTimer`] (RAII: records elapsed
//!   nanoseconds into a histogram on drop). All record paths are a
//!   handful of `Relaxed` atomic operations — safe to call from any
//!   thread, no locks, no allocation.
//! * **Registries** — a [`Registry`] is a named collection of
//!   instruments (convention: `ffdl.<crate>.<metric>`). Handles are
//!   `Arc`s: register once, record forever. [`Registry::snapshot`]
//!   produces an immutable [`RegistrySnapshot`] with text and JSON
//!   exporters; snapshots [`merge`](RegistrySnapshot::merge), which is
//!   how the serving runtime combines per-worker registries at
//!   `finish()` without sharing hot-path cache lines.
//! * **The enabled flag** — instrumentation in library crates guards on
//!   the process-global [`enabled`] flag (one `Relaxed` bool load, a
//!   predictable branch: the compiled-out fast path). The
//!   `telemetry_overhead` bench pins the disabled cost at ≈0 ns
//!   relative to uninstrumented code (`BENCH_telemetry.json`).
//!
//! Histogram percentiles follow the same linear-interpolation rank
//! convention as `ffdl_bench::harness::percentile` (rank
//! `p/100 · (n−1)` over the sorted multiset), with each recorded value
//! approximated by a uniform spread across its log₂ bucket — so
//! `ffdl.serve.*` latency quantiles read on the same scale as the
//! `BENCH_*.json` history.
//!
//! # Examples
//!
//! ```
//! use ffdl_telemetry::{Registry, SpanTimer};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("ffdl.doc.requests");
//! let latency = registry.histogram("ffdl.doc.latency_ns");
//!
//! for _ in 0..32 {
//!     let _span = SpanTimer::start(latency.clone());
//!     requests.inc();
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("ffdl.doc.requests"), Some(32));
//! assert!(snap.to_text().contains("ffdl.doc.latency_ns"));
//! assert!(snap.to_json().contains("\"ffdl.doc.requests\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod metric;
mod registry;
mod span;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{Metric, MetricSnapshot, Registry, RegistrySnapshot};
pub use span::SpanTimer;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-global telemetry switch, off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is globally enabled.
///
/// Library instrumentation guards every record on this: one `Relaxed`
/// bool load and a predictable branch, so the disabled path costs ≈0
/// (pinned by the `telemetry_overhead` bench).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global telemetry on or off (e.g. from a `--metrics` CLI flag).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global registry, used by instrumentation in library
/// crates that have no natural place to thread a registry handle
/// through (the FFT plan cache, per-layer forward timing).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Starts a span against a histogram in the [`global`] registry, or a
/// no-op span when telemetry is [`enabled`]`() == false`.
///
/// Convenience for one-off instrumentation sites; hot loops should
/// cache the `Arc<Histogram>` handle instead and use
/// [`SpanTimer::start`] directly.
pub fn span(name: &str) -> SpanTimer {
    if enabled() {
        SpanTimer::start(global().histogram(name))
    } else {
        SpanTimer::disabled()
    }
}

/// Adds `n` to a counter in the [`global`] registry when telemetry is
/// enabled; a no-op otherwise.
pub fn count(name: &str, n: u64) {
    if enabled() {
        global().counter(name).add(n);
    }
}

/// Fetches (registering on first use) a counter from the [`global`]
/// registry regardless of the enabled flag — callers cache the handle
/// and guard each increment on [`enabled`] themselves.
pub fn global_counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let a = global_counter("ffdl.telemetry.selftest");
        let b = global().counter("ffdl.telemetry.selftest");
        a.inc();
        assert!(b.get() >= 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    // One sequential test for everything touching the global flag, so
    // parallel test threads never observe each other's toggles.
    #[test]
    fn enabled_flag_gates_the_global_helpers() {
        assert!(!enabled());
        drop(span("ffdl.telemetry.span_selftest"));
        count("ffdl.telemetry.count_selftest", 5);
        assert_eq!(
            global()
                .histogram("ffdl.telemetry.span_selftest")
                .snapshot()
                .count(),
            0
        );
        assert_eq!(global().counter("ffdl.telemetry.count_selftest").get(), 0);

        set_enabled(true);
        assert!(enabled());
        drop(span("ffdl.telemetry.span_selftest"));
        count("ffdl.telemetry.count_selftest", 5);
        set_enabled(false);
        assert!(!enabled());

        assert_eq!(
            global()
                .histogram("ffdl.telemetry.span_selftest")
                .snapshot()
                .count(),
            1
        );
        assert_eq!(global().counter("ffdl.telemetry.count_selftest").get(), 5);
    }
}
