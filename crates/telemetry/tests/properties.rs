//! Concurrency and property tests for `ffdl-telemetry`.
//!
//! The in-crate unit tests cover the single-threaded contracts; this
//! suite checks the claims the rest of the workspace leans on: recording
//! from many threads loses nothing (exact totals, not approximations),
//! bucket boundaries behave at the extremes, and snapshot percentiles
//! are monotone in the quantile — the invariant the serving stats and
//! the bench harness both assume.

use ffdl_rng::prop::{check, vec_of};
use ffdl_rng::{prop_assert, Rng};
use ffdl_telemetry::{bucket_bounds, bucket_index, Histogram, Registry, BUCKETS};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_counter_increments_are_lossless() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let counter = registry.counter("ffdl.test.hits");
                for i in 0..PER_THREAD {
                    // Mix inc() and add() so both paths race.
                    if i % 4 == 0 {
                        counter.add(1);
                    } else {
                        counter.inc();
                    }
                }
                registry.counter("ffdl.test.hits").add(t);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let expected = THREADS * PER_THREAD + (0..THREADS).sum::<u64>();
    assert_eq!(
        registry.snapshot().counter("ffdl.test.hits"),
        Some(expected)
    );
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..PER_THREAD {
                    // Deterministic spread across many buckets, distinct
                    // per thread.
                    let v = ((t * PER_THREAD + i) as u64).wrapping_mul(0x9E37_79B9) >> (i % 24);
                    hist.record(v);
                    local_sum = local_sum.wrapping_add(v);
                }
                local_sum
            })
        })
        .collect();
    let mut expected_sum = 0u64;
    for h in handles {
        expected_sum = expected_sum.wrapping_add(h.join().expect("worker panicked"));
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count(), (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.sum(), expected_sum);
}

#[test]
fn per_thread_registries_merge_to_exact_totals() {
    // The ffdl-serve pattern: each worker owns a registry, the server
    // merges the snapshots. The merged totals must be exact sums.
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                let registry = Registry::new();
                let counter = registry.counter("ffdl.test.requests");
                let hist = registry.histogram("ffdl.test.latency_ns");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t * 1_000 + i % 97);
                }
                registry.snapshot()
            })
        })
        .collect();
    let mut merged = Registry::new().snapshot();
    for h in handles {
        merged.merge(&h.join().expect("worker panicked"));
    }
    assert_eq!(
        merged.counter("ffdl.test.requests"),
        Some(THREADS * PER_THREAD)
    );
    let hist = merged.histogram("ffdl.test.latency_ns").expect("merged");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
}

#[test]
fn bucket_boundaries_at_the_extremes() {
    // Zero gets its own bucket.
    assert_eq!(bucket_index(0), 0);
    let (lo, hi) = bucket_bounds(0);
    assert_eq!((lo, hi), (0.0, 0.0));
    // One is the first non-zero bucket.
    assert_eq!(bucket_index(1), 1);
    // Every power of two starts a new bucket; the value one below
    // belongs to the previous bucket.
    for shift in 1..64 {
        let v = 1u64 << shift;
        assert_eq!(bucket_index(v), shift as usize + 1, "2^{shift}");
        assert_eq!(bucket_index(v - 1), shift as usize, "2^{shift}-1");
    }
    // u64::MAX lands in the last bucket, and recording it is safe.
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    let h = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.count(), 3);
    assert_eq!(s.buckets()[0], 1);
    assert_eq!(s.buckets()[1], 1);
    assert_eq!(s.buckets()[BUCKETS - 1], 1);
    // Percentiles stay ordered even with MAX in play.
    assert!(s.percentile(1.0) <= s.percentile(99.0));
}

#[test]
fn snapshot_percentiles_are_monotone_in_the_quantile() {
    check(
        "telemetry_percentile_monotone",
        96,
        |rng| {
            // A histogram fed a random batch of values spanning the
            // whole dynamic range, plus a random quantile ladder.
            let values = vec_of(rng, 1..=200, |r| {
                let magnitude = r.gen_range(0u32..63);
                r.gen_range(0u64..=(1u64 << magnitude))
            });
            let quantiles = vec_of(rng, 2..=12, |r| r.gen_range(0.0f64..=100.0));
            (values, quantiles)
        },
        |(values, quantiles)| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            let s = h.snapshot();
            let mut sorted = quantiles.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            for pair in sorted.windows(2) {
                let (lo_q, hi_q) = (pair[0], pair[1]);
                let (lo, hi) = (s.percentile(lo_q), s.percentile(hi_q));
                prop_assert!(
                    lo <= hi,
                    "p{lo_q:.2} = {lo} > p{hi_q:.2} = {hi} over {} values",
                    values.len()
                );
            }
            // Percentiles never escape the recorded range estimate.
            prop_assert!(s.percentile(0.0) >= 0.0);
            prop_assert!(s.percentile(100.0) <= s.max_estimate());
            Ok(())
        },
    );
}
