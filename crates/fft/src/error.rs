//! Error type for the FFT crate.

use std::error::Error;
use std::fmt;

/// Errors reported by FFT entry points that validate their inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The buffer length does not match the transform size the plan was
    /// built for.
    LengthMismatch {
        /// Size the plan expects.
        expected: usize,
        /// Size the caller supplied.
        actual: usize,
    },
    /// A real-input transform requires an even length.
    OddRealLength(usize),
    /// The operation requires a non-empty input.
    Empty,
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match transform size {expected}"
            ),
            FftError::OddRealLength(n) => {
                write!(f, "real-input transform requires an even length, got {n}")
            }
            FftError::Empty => write!(f, "input must be non-empty"),
        }
    }
}

impl Error for FftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FftError::LengthMismatch {
            expected: 8,
            actual: 7,
        };
        assert_eq!(
            e.to_string(),
            "buffer length 7 does not match transform size 8"
        );
        assert_eq!(
            FftError::OddRealLength(9).to_string(),
            "real-input transform requires an even length, got 9"
        );
        assert_eq!(FftError::Empty.to_string(), "input must be non-empty");
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FftError>();
    }
}
