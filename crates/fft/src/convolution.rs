//! Circular convolution and correlation — the paper's core computational
//! identity (Eqn. 3): `C·x = IFFT( FFT(w) ∘ FFT(x) )` for a circulant `C`
//! defined by `w`.
//!
//! Each operation is provided twice: a direct `O(n²)` reference and the
//! `O(n log n)` FFT path. The [`Convolver`] caches plans for a fixed length
//! (the usage pattern of a block-circulant layer, which convolves many
//! vectors of the same block size).

use crate::complex::{Complex, FftFloat};
use crate::error::FftError;
use crate::plan::{Fft, FftPlanner};
use std::sync::Arc;

/// Direct `O(n²)` circular convolution: `out[i] = Σ_j a[j]·b[(i−j) mod n]`.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn circular_convolve_direct<T: FftFloat>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "circular convolution requires equal lengths");
    let n = a.len();
    let mut out = vec![T::ZERO; n];
    for (i, out_i) in out.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (j, &aj) in a.iter().enumerate() {
            let idx = (i + n - j % n) % n;
            acc += aj * b[idx];
        }
        *out_i = acc;
    }
    out
}

/// Direct `O(n²)` circular correlation: `out[i] = Σ_j a[j]·b[(j−i) mod n]`.
///
/// Circular correlation is the adjoint of circular convolution; it shows up
/// in the backward pass of circulant layers (Algorithm 2).
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn circular_correlate_direct<T: FftFloat>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "circular correlation requires equal lengths");
    let n = a.len();
    let mut out = vec![T::ZERO; n];
    for (i, out_i) in out.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (j, &aj) in a.iter().enumerate() {
            let idx = (j + n - i % n) % n;
            acc += aj * b[idx];
        }
        *out_i = acc;
    }
    out
}

/// Direct `O(n·m)` linear (acyclic) convolution; output length `n + m − 1`.
///
/// Returns an empty vector when either input is empty.
pub fn linear_convolve_direct<T: FftFloat>(a: &[T], b: &[T]) -> Vec<T> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![T::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// FFT-based circular convolution of two equal-length real signals.
///
/// This is the "FFT → component-wise multiplication → IFFT" procedure of
/// Fig. 2. One-shot convenience; use [`Convolver`] in hot loops.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn circular_convolve<T: FftFloat>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "circular convolution requires equal lengths");
    if a.is_empty() {
        return Vec::new();
    }
    Convolver::new(a.len()).convolve(a, b).expect("lengths match")
}

/// FFT-based circular correlation of two equal-length real signals.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn circular_correlate<T: FftFloat>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "circular correlation requires equal lengths");
    if a.is_empty() {
        return Vec::new();
    }
    Convolver::new(a.len()).correlate(a, b).expect("lengths match")
}

/// FFT-based linear convolution via zero padding to the next power of two
/// `≥ n + m − 1`; output length `n + m − 1`.
pub fn linear_convolve<T: FftFloat>(a: &[T], b: &[T]) -> Vec<T> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let padded = out_len.next_power_of_two();
    let mut fa = vec![Complex::zero(); padded];
    let mut fb = vec![Complex::zero(); padded];
    for (dst, &src) in fa.iter_mut().zip(a) {
        *dst = Complex::from_real(src);
    }
    for (dst, &src) in fb.iter_mut().zip(b) {
        *dst = Complex::from_real(src);
    }
    let mut planner = FftPlanner::new();
    let fwd = planner.plan_forward(padded);
    let inv = planner.plan_inverse(padded);
    fwd.process(&mut fa).expect("length matches");
    fwd.process(&mut fb).expect("length matches");
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    inv.process(&mut fa).expect("length matches");
    fa.truncate(out_len);
    fa.into_iter().map(|v| v.re).collect()
}

/// Plan-caching circular convolution/correlation engine for a fixed length.
///
/// # Examples
///
/// ```
/// use ffdl_fft::Convolver;
///
/// let conv = Convolver::<f64>::new(4);
/// let w = [1.0, 0.0, 0.0, 0.0]; // identity kernel
/// let x = [4.0, 3.0, 2.0, 1.0];
/// assert_eq!(conv.convolve(&w, &x)?, x.to_vec());
/// # Ok::<(), ffdl_fft::FftError>(())
/// ```
pub struct Convolver<T> {
    len: usize,
    forward: Arc<dyn Fft<T>>,
    inverse: Arc<dyn Fft<T>>,
}

impl<T: FftFloat> Convolver<T> {
    /// Builds a convolution engine for signals of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        let mut planner = FftPlanner::new();
        Self {
            len,
            forward: planner.plan_forward(len),
            inverse: planner.plan_inverse(len),
        }
    }

    /// Signal length this engine operates on.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: zero-length engines cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn spectrum_of(&self, x: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        if x.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: x.len(),
            });
        }
        let mut buf: Vec<Complex<T>> = x.iter().map(|&v| Complex::from_real(v)).collect();
        self.forward.process(&mut buf)?;
        Ok(buf)
    }

    /// Circular convolution `a ⊛ b`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when either input length differs
    /// from [`Convolver::len`].
    pub fn convolve(&self, a: &[T], b: &[T]) -> Result<Vec<T>, FftError> {
        let fa = self.spectrum_of(a)?;
        let fb = self.spectrum_of(b)?;
        let mut prod: Vec<Complex<T>> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
        self.inverse.process(&mut prod)?;
        Ok(prod.into_iter().map(|v| v.re).collect())
    }

    /// Circular correlation `out[i] = Σ_j a[j]·b[(j−i) mod n]`, computed as
    /// `IFFT( FFT(a) ∘ conj(FFT(b)) )`.
    ///
    /// With this convention, `corr` is the adjoint that appears in
    /// Algorithm 2: for `y = w ⊛ x` and upstream gradient `g`,
    /// `∂L/∂w = corr(g, x)` and `∂L/∂x = corr(g, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when either input length differs
    /// from [`Convolver::len`].
    pub fn correlate(&self, a: &[T], b: &[T]) -> Result<Vec<T>, FftError> {
        let fa = self.spectrum_of(a)?;
        let fb = self.spectrum_of(b)?;
        let mut prod: Vec<Complex<T>> =
            fa.iter().zip(&fb).map(|(&x, &y)| x * y.conj()).collect();
        self.inverse.process(&mut prod)?;
        Ok(prod.into_iter().map(|v| v.re).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|k| (k as f64 * seed).sin() + 0.1 * k as f64)
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn fft_convolution_matches_direct() {
        for n in [1usize, 2, 3, 4, 7, 8, 15, 16, 33, 64, 121] {
            let a = signal(n, 0.7);
            let b = signal(n, 1.3);
            assert_close(
                &circular_convolve(&a, &b),
                &circular_convolve_direct(&a, &b),
                1e-7 * (n as f64).max(1.0),
            );
        }
    }

    #[test]
    fn fft_correlation_matches_direct() {
        for n in [1usize, 2, 5, 8, 16, 31, 64] {
            let a = signal(n, 0.9);
            let b = signal(n, 0.4);
            assert_close(
                &circular_correlate(&a, &b),
                &circular_correlate_direct(&a, &b),
                1e-7 * (n as f64).max(1.0),
            );
        }
    }

    #[test]
    fn linear_convolution_matches_direct() {
        let a = signal(9, 0.3);
        let b = signal(5, 1.7);
        assert_close(
            &linear_convolve(&a, &b),
            &linear_convolve_direct(&a, &b),
            1e-8,
        );
    }

    #[test]
    fn convolution_is_commutative() {
        let a = signal(16, 0.5);
        let b = signal(16, 2.1);
        assert_close(
            &circular_convolve(&a, &b),
            &circular_convolve(&b, &a),
            1e-9,
        );
    }

    #[test]
    fn identity_kernel() {
        let x = signal(8, 0.8);
        let mut delta = vec![0.0; 8];
        delta[0] = 1.0;
        assert_close(&circular_convolve(&delta, &x), &x, 1e-10);
        // corr(x, δ)[i] = Σ_j x[j]·δ[(j−i) mod n] = x[i].
        assert_close(&circular_correlate_direct(&x, &delta), &x, 1e-12);
    }

    #[test]
    fn shift_kernel_rotates() {
        // Convolving with δ shifted by 1 rotates the signal by 1.
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut delta1 = [0.0; 4];
        delta1[1] = 1.0;
        let y = circular_convolve(&delta1, &x);
        assert_close(&y, &[4.0, 1.0, 2.0, 3.0], 1e-10);
    }

    #[test]
    fn correlation_is_convolution_adjoint() {
        // <a ⊛ x, y> == <x, corr(y, a)> — the identity behind Algorithm 2.
        let n = 12;
        let a = signal(n, 0.6);
        let x = signal(n, 1.9);
        let y = signal(n, 0.2);
        let conv = circular_convolve_direct(&a, &x);
        let corr = circular_correlate_direct(&y, &a);
        let lhs: f64 = conv.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&corr).map(|(p, q)| p * q).sum();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn convolver_rejects_wrong_length() {
        let c = Convolver::<f64>::new(8);
        assert!(matches!(
            c.convolve(&[0.0; 8], &[0.0; 7]),
            Err(FftError::LengthMismatch { .. })
        ));
        assert!(matches!(
            c.correlate(&[0.0; 3], &[0.0; 8]),
            Err(FftError::LengthMismatch { .. })
        ));
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn empty_inputs() {
        assert!(circular_convolve::<f64>(&[], &[]).is_empty());
        assert!(circular_correlate::<f64>(&[], &[]).is_empty());
        assert!(linear_convolve::<f64>(&[], &[1.0]).is_empty());
        assert!(linear_convolve_direct::<f64>(&[1.0], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_one_shot_panics() {
        let _ = circular_convolve(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn f32_convolution() {
        let a: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f32> = vec![0.5, 0.0, -0.5, 1.0];
        let fast = circular_convolve(&a, &b);
        let direct = circular_convolve_direct(&a, &b);
        for (x, y) in fast.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
