//! Two-dimensional FFTs (row–column decomposition).
//!
//! Used by the FFT-convolution baseline (LeCun et al. [11] in the paper's
//! numbering) that the paper positions itself against: 2-D FFT
//! convolution *accelerates* CONV layers but does not *compress* them,
//! whereas the block-circulant method does both (§I).

use crate::complex::{Complex, FftFloat};
use crate::error::FftError;
use crate::plan::{Direction, Fft, FftPlanner};
use std::sync::Arc;

/// A planned 2-D FFT of fixed `rows × cols` size.
///
/// Transforms are separable: FFT every row, then every column. Both
/// dimension plans come from one planner, so repeated same-size images
/// (the CONV-layer pattern) share twiddles.
///
/// # Examples
///
/// ```
/// use ffdl_fft::{Complex, Fft2d};
///
/// let plan = Fft2d::<f64>::new(4, 4);
/// let mut img: Vec<_> = (0..16).map(|k| Complex::from_real(k as f64)).collect();
/// let original = img.clone();
/// plan.forward(&mut img)?;
/// plan.inverse(&mut img)?;
/// for (a, b) in img.iter().zip(&original) {
///     assert!((*a - *b).norm() < 1e-10);
/// }
/// # Ok::<(), ffdl_fft::FftError>(())
/// ```
pub struct Fft2d<T> {
    rows: usize,
    cols: usize,
    row_forward: Arc<dyn Fft<T>>,
    row_inverse: Arc<dyn Fft<T>>,
    col_forward: Arc<dyn Fft<T>>,
    col_inverse: Arc<dyn Fft<T>>,
}

impl<T> Clone for Fft2d<T> {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            row_forward: Arc::clone(&self.row_forward),
            row_inverse: Arc::clone(&self.row_inverse),
            col_forward: Arc::clone(&self.col_forward),
            col_inverse: Arc::clone(&self.col_inverse),
        }
    }
}

impl<T: FftFloat> Fft2d<T> {
    /// Builds a plan for `rows × cols` images.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "2-D FFT dimensions must be positive");
        let mut planner = FftPlanner::new();
        Self {
            rows,
            cols,
            row_forward: planner.plan(cols, Direction::Forward),
            row_inverse: planner.plan(cols, Direction::Inverse),
            col_forward: planner.plan(rows, Direction::Forward),
            col_inverse: planner.plan(rows, Direction::Inverse),
        }
    }

    /// Image height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Image width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements a buffer must have.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always `false` (dimensions are validated positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn check(&self, buf: &[Complex<T>]) -> Result<(), FftError> {
        if buf.len() != self.len() {
            return Err(FftError::LengthMismatch {
                expected: self.len(),
                actual: buf.len(),
            });
        }
        Ok(())
    }

    fn transform(
        &self,
        buf: &mut [Complex<T>],
        row_plan: &Arc<dyn Fft<T>>,
        col_plan: &Arc<dyn Fft<T>>,
    ) -> Result<(), FftError> {
        // Rows in place.
        for r in 0..self.rows {
            row_plan.process(&mut buf[r * self.cols..(r + 1) * self.cols])?;
        }
        // Columns via a scratch vector.
        let mut column = vec![Complex::zero(); self.rows];
        for c in 0..self.cols {
            for r in 0..self.rows {
                column[r] = buf[r * self.cols + c];
            }
            col_plan.process(&mut column)?;
            for r in 0..self.rows {
                buf[r * self.cols + c] = column[r];
            }
        }
        Ok(())
    }

    /// Forward 2-D transform, in place (row-major buffer).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `buf.len() != rows·cols`.
    pub fn forward(&self, buf: &mut [Complex<T>]) -> Result<(), FftError> {
        self.check(buf)?;
        self.transform(buf, &self.row_forward, &self.col_forward)
    }

    /// Inverse 2-D transform, in place (includes the `1/(rows·cols)`
    /// scaling via the 1-D inverse plans).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `buf.len() != rows·cols`.
    pub fn inverse(&self, buf: &mut [Complex<T>]) -> Result<(), FftError> {
        self.check(buf)?;
        self.transform(buf, &self.row_inverse, &self.col_inverse)
    }

    /// Forward transform of a real image into a complex buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on a wrong-size input.
    pub fn forward_real(&self, img: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        if img.len() != self.len() {
            return Err(FftError::LengthMismatch {
                expected: self.len(),
                actual: img.len(),
            });
        }
        let mut buf: Vec<Complex<T>> = img.iter().map(|&v| Complex::from_real(v)).collect();
        self.forward(&mut buf)?;
        Ok(buf)
    }
}

/// 2-D circular convolution of two equal-size real images via the 2-D
/// convolution theorem. One-shot convenience; plan with [`Fft2d`] in hot
/// loops.
///
/// # Panics
///
/// Panics if the images are not both `rows × cols`.
pub fn circular_convolve2d<T: FftFloat>(
    a: &[T],
    b: &[T],
    rows: usize,
    cols: usize,
) -> Vec<T> {
    assert_eq!(a.len(), rows * cols, "image a size mismatch");
    assert_eq!(b.len(), rows * cols, "image b size mismatch");
    let plan = Fft2d::new(rows, cols);
    let fa = plan.forward_real(a).expect("validated size");
    let fb = plan.forward_real(b).expect("validated size");
    let mut prod: Vec<Complex<T>> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    plan.inverse(&mut prod).expect("validated size");
    prod.into_iter().map(|v| v.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dft::dft;

    fn image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect()
    }

    /// Reference 2-D DFT: direct double sum via two 1-D DFT passes on the
    /// naive kernel.
    fn dft2d_reference(img: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        // Rows first.
        let mut tmp = vec![Complex64::zero(); rows * cols];
        for r in 0..rows {
            let row = dft(&img[r * cols..(r + 1) * cols], Direction::Forward);
            tmp[r * cols..(r + 1) * cols].copy_from_slice(&row);
        }
        let mut out = tmp.clone();
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| tmp[r * cols + c]).collect();
            let t = dft(&col, Direction::Forward);
            for r in 0..rows {
                out[r * cols + c] = t[r];
            }
        }
        out
    }

    #[test]
    fn matches_reference_various_sizes() {
        for (rows, cols) in [(2usize, 2usize), (4, 4), (3, 5), (8, 4), (7, 7)] {
            let img = image(rows, cols);
            let mut buf = img.clone();
            Fft2d::new(rows, cols).forward(&mut buf).unwrap();
            let reference = dft2d_reference(&img, rows, cols);
            for (a, b) in buf.iter().zip(&reference) {
                assert!((*a - *b).norm() < 1e-8, "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip() {
        let (rows, cols) = (8, 16);
        let img = image(rows, cols);
        let mut buf = img.clone();
        let plan = Fft2d::new(rows, cols);
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&img) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn impulse_has_flat_2d_spectrum() {
        let (rows, cols) = (4, 6);
        let mut img = vec![Complex64::zero(); rows * cols];
        img[0] = Complex64::one();
        Fft2d::new(rows, cols).forward(&mut img).unwrap();
        for v in img {
            assert!((v - Complex64::one()).norm() < 1e-10);
        }
    }

    #[test]
    fn convolution_2d_identity_and_shift() {
        let (rows, cols) = (4, 4);
        let x: Vec<f64> = (0..16).map(|k| k as f64).collect();
        let mut delta = vec![0.0; 16];
        delta[0] = 1.0;
        let y = circular_convolve2d(&delta, &x, rows, cols);
        for (a, b) in y.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
        // Shift kernel: δ at (1, 1) rotates the image by one in each axis.
        let mut shift = vec![0.0; 16];
        shift[cols + 1] = 1.0;
        let y = circular_convolve2d(&shift, &x, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let src = ((r + rows - 1) % rows) * cols + ((c + cols - 1) % cols);
                assert!((y[r * cols + c] - x[src]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn convolution_2d_matches_direct_sum() {
        let (rows, cols) = (5, 4);
        let a: Vec<f64> = (0..20).map(|k| (k as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..20).map(|k| (k as f64 * 1.3).cos()).collect();
        let fast = circular_convolve2d(&a, &b, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = 0.0;
                for i in 0..rows {
                    for j in 0..cols {
                        acc += a[i * cols + j]
                            * b[((r + rows - i) % rows) * cols + (c + cols - j) % cols];
                    }
                }
                assert!(
                    (fast[r * cols + c] - acc).abs() < 1e-8,
                    "({r},{c}): {} vs {acc}",
                    fast[r * cols + c]
                );
            }
        }
    }

    #[test]
    fn validates_sizes() {
        let plan = Fft2d::<f64>::new(4, 4);
        let mut small = vec![Complex64::zero(); 8];
        assert!(plan.forward(&mut small).is_err());
        assert!(plan.inverse(&mut small).is_err());
        assert!(plan.forward_real(&[0.0; 8]).is_err());
        assert_eq!(plan.rows(), 4);
        assert_eq!(plan.cols(), 4);
        assert_eq!(plan.len(), 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = Fft2d::<f64>::new(0, 4);
    }
}
