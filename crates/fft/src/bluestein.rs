//! Bluestein's chirp-z algorithm: FFT of *arbitrary* length in
//! `O(n log n)`, built on top of the radix-2 kernel.
//!
//! Block-circulant layers zero-pad to the block size, but the block size
//! itself need not be a power of two (e.g. the 121-neuron input layer of
//! the paper's MNIST Arch. 2). Bluestein keeps the `O(n log n)` guarantee
//! for those sizes.
//!
//! The identity `jk = (j² + k² − (k−j)²) / 2` turns the DFT into a
//! convolution with a quadratic-phase "chirp", which is evaluated as a
//! circular convolution at the next power of two ≥ `2n − 1`.

use crate::complex::{Complex, FftFloat};
use crate::error::FftError;
use crate::plan::{Direction, Fft, Radix2};

/// Bluestein chirp-z FFT plan for an arbitrary length.
pub struct Bluestein<T> {
    len: usize,
    direction: Direction,
    /// Chirp `c[j] = e^{sign·πi·j²/n}` for `j < n`.
    chirp: Vec<Complex<T>>,
    /// Forward FFT of the zero-padded conjugate-chirp kernel, length `m`.
    kernel_spectrum: Vec<Complex<T>>,
    /// Inner convolution length (power of two ≥ 2n−1).
    conv_len: usize,
    inner_forward: Radix2<T>,
    inner_inverse: Radix2<T>,
}

impl<T: FftFloat> Bluestein<T> {
    /// Builds a Bluestein plan for the given length and direction.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize, direction: Direction) -> Self {
        assert!(len > 0, "cannot build a zero-length Bluestein plan");
        let sign: T = direction.sign();
        let pi = T::PI;
        let two_n = 2 * len;

        // c[j] = e^{sign·πi·j²/n}; reduce j² modulo 2n (the phase period)
        // to keep the float angle well-conditioned.
        let chirp: Vec<Complex<T>> = (0..len)
            .map(|j| {
                let q = (j * j) % two_n;
                Complex::cis(sign * pi * T::from_usize(q) / T::from_usize(len))
            })
            .collect();

        let conv_len = (2 * len - 1).next_power_of_two();
        let inner_forward = Radix2::new(conv_len, Direction::Forward);
        let inner_inverse = Radix2::new(conv_len, Direction::Inverse);

        // Kernel b[j] = conj(c[j]) placed symmetrically: b[0..n] and
        // b[m−j] = b[j] (the convolution index k−j spans −(n−1)..n−1).
        let mut kernel = vec![Complex::zero(); conv_len];
        for j in 0..len {
            let v = chirp[j].conj();
            kernel[j] = v;
            if j != 0 {
                kernel[conv_len - j] = v;
            }
        }
        inner_forward
            .process(&mut kernel)
            .expect("kernel length matches inner plan");

        Self {
            len,
            direction,
            chirp,
            kernel_spectrum: kernel,
            conv_len,
            inner_forward,
            inner_inverse,
        }
    }

    /// Inner (power-of-two) convolution length — exposed for tests and for
    /// op-count models of non-power-of-two transforms.
    pub fn conv_len(&self) -> usize {
        self.conv_len
    }
}

impl<T: FftFloat> Fft<T> for Bluestein<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn direction(&self) -> Direction {
        self.direction
    }

    fn process(&self, buf: &mut [Complex<T>]) -> Result<(), FftError> {
        if buf.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: buf.len(),
            });
        }

        // a[j] = x[j]·c[j], zero-padded to the convolution length.
        let mut a = vec![Complex::zero(); self.conv_len];
        for (j, (&x, &c)) in buf.iter().zip(&self.chirp).enumerate() {
            a[j] = x * c;
        }

        self.inner_forward.process(&mut a)?;
        for (v, &k) in a.iter_mut().zip(&self.kernel_spectrum) {
            *v *= k;
        }
        self.inner_inverse.process(&mut a)?;

        // X[k] = c[k] · conv[k]; inverse transforms additionally scale by 1/n.
        match self.direction {
            Direction::Forward => {
                for (k, out) in buf.iter_mut().enumerate() {
                    *out = self.chirp[k] * a[k];
                }
            }
            Direction::Inverse => {
                let inv_n = T::ONE / T::from_usize(self.len);
                for (k, out) in buf.iter_mut().enumerate() {
                    *out = (self.chirp[k] * a[k]).scale(inv_n);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| Complex64::new((k as f64 * 0.71).sin(), (k as f64 * 0.29).cos() - 0.4))
            .collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).norm() < tol, "index {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_dft_for_awkward_sizes() {
        for n in [2usize, 3, 5, 6, 7, 9, 10, 11, 12, 13, 15, 17, 21, 25, 31, 33, 100, 121] {
            let x = signal(n);
            let mut buf = x.clone();
            Bluestein::new(n, Direction::Forward)
                .process(&mut buf)
                .unwrap();
            let reference = dft(&x, Direction::Forward);
            assert_close(&buf, &reference, 1e-7 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn inverse_matches_dft() {
        for n in [3usize, 7, 11, 121] {
            let x = signal(n);
            let mut buf = x.clone();
            Bluestein::new(n, Direction::Inverse)
                .process(&mut buf)
                .unwrap();
            let reference = dft(&x, Direction::Inverse);
            assert_close(&buf, &reference, 1e-8);
        }
    }

    #[test]
    fn roundtrip() {
        let n = 45;
        let x = signal(n);
        let mut buf = x.clone();
        Bluestein::new(n, Direction::Forward)
            .process(&mut buf)
            .unwrap();
        Bluestein::new(n, Direction::Inverse)
            .process(&mut buf)
            .unwrap();
        assert_close(&buf, &x, 1e-9);
    }

    #[test]
    fn length_one() {
        let x = vec![Complex64::new(4.0, 2.0)];
        let mut buf = x.clone();
        Bluestein::new(1, Direction::Forward)
            .process(&mut buf)
            .unwrap();
        assert_close(&buf, &x, 1e-12);
    }

    #[test]
    fn works_on_powers_of_two_as_well() {
        let n = 16;
        let x = signal(n);
        let mut buf = x.clone();
        Bluestein::new(n, Direction::Forward)
            .process(&mut buf)
            .unwrap();
        let reference = dft(&x, Direction::Forward);
        assert_close(&buf, &reference, 1e-9);
    }

    #[test]
    fn conv_len_is_pow2_and_large_enough() {
        let plan = Bluestein::<f64>::new(121, Direction::Forward);
        assert!(plan.conv_len().is_power_of_two());
        assert!(plan.conv_len() >= 2 * 121 - 1);
    }

    #[test]
    fn rejects_wrong_length() {
        let plan = Bluestein::<f64>::new(5, Direction::Forward);
        let mut buf = vec![Complex64::zero(); 6];
        assert!(matches!(
            plan.process(&mut buf),
            Err(FftError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn rejects_zero_length() {
        let _ = Bluestein::<f64>::new(0, Direction::Forward);
    }
}
