//! Naive `O(n²)` discrete Fourier transform.
//!
//! This is the reference implementation the fast algorithms are tested
//! against, and also the baseline for the Fig. 1 complexity benchmark
//! (FFT `O(n log n)` vs direct DFT `O(n²)`).

use crate::complex::{Complex, FftFloat};
use crate::plan::Direction;

/// Computes the DFT of `input` by direct summation.
///
/// Forward transform: `X[k] = Σ_j x[j]·e^{-2πi jk/n}` (unscaled).
/// Inverse transform: `x[j] = (1/n) Σ_k X[k]·e^{+2πi jk/n}`.
///
/// # Examples
///
/// ```
/// use ffdl_fft::{dft, Complex, Direction};
///
/// let x = vec![Complex::from_real(1.0f64); 4];
/// let spectrum = dft(&x, Direction::Forward);
/// // A constant signal concentrates all energy in bin 0.
/// assert!((spectrum[0].re - 4.0).abs() < 1e-12);
/// assert!(spectrum[1].norm() < 1e-12);
/// ```
pub fn dft<T: FftFloat>(input: &[Complex<T>], direction: Direction) -> Vec<Complex<T>> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match direction {
        Direction::Forward => -T::ONE,
        Direction::Inverse => T::ONE,
    };
    let two_pi = T::from_f64(2.0) * T::PI;
    let mut out = vec![Complex::zero(); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &x) in input.iter().enumerate() {
            // Reduce j*k modulo n before converting to float so the angle
            // stays well-conditioned for large transforms.
            let phase_idx = (j * k) % n;
            let theta = sign * two_pi * T::from_usize(phase_idx) / T::from_usize(n);
            acc += x * Complex::cis(theta);
        }
        *out_k = acc;
    }
    if direction == Direction::Inverse {
        let inv_n = T::ONE / T::from_usize(n);
        for v in &mut out {
            *v = v.scale(inv_n);
        }
    }
    out
}

/// Convenience wrapper: forward DFT of a real signal.
pub fn dft_real<T: FftFloat>(input: &[T]) -> Vec<Complex<T>> {
    let buf: Vec<Complex<T>> = input.iter().map(|&x| Complex::from_real(x)).collect();
    dft(&buf, Direction::Forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).norm() < tol,
                "mismatch: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn empty_input() {
        let out = dft::<f64>(&[], Direction::Forward);
        assert!(out.is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let x = vec![Complex64::new(3.0, -1.0)];
        assert_eq!(dft(&x, Direction::Forward), x);
        assert_eq!(dft(&x, Direction::Inverse), x);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::zero(); 8];
        x[0] = Complex64::one();
        let spec = dft(&x, Direction::Forward);
        for v in spec {
            assert!((v - Complex64::one()).norm() < 1e-12);
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let mut x = vec![Complex64::zero(); 8];
        x[1] = Complex64::one();
        let spec = dft(&x, Direction::Forward);
        for (k, v) in spec.iter().enumerate() {
            let expected = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / 8.0);
            assert!((*v - expected).norm() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_inverse() {
        let x: Vec<Complex64> = (0..13)
            .map(|k| Complex64::new((k as f64).sin(), (k as f64 * 0.3).cos()))
            .collect();
        let spec = dft(&x, Direction::Forward);
        let back = dft(&spec, Direction::Inverse);
        assert_close(&back, &x, 1e-10);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..6).map(|k| Complex64::new(k as f64, 1.0)).collect();
        let b: Vec<Complex64> = (0..6).map(|k| Complex64::new(-(k as f64), 0.5)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = dft(&a, Direction::Forward);
        let fb = dft(&b, Direction::Forward);
        let fsum = dft(&sum, Direction::Forward);
        let expected: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &expected, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex64> = (0..16)
            .map(|k| Complex64::new((k as f64 * 1.7).sin(), (k as f64 * 0.9).cos()))
            .collect();
        let spec = dft(&x, Direction::Forward);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 16.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn real_wrapper_matches_complex() {
        let xs = [1.0, -2.0, 3.0, 0.5, 0.0];
        let a = dft_real(&xs);
        let b: Vec<Complex64> = dft(
            &xs.iter().map(|&v| Complex64::from_real(v)).collect::<Vec<_>>(),
            Direction::Forward,
        );
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let xs = [0.3, 1.0, -0.7, 2.0, 0.1, -1.2];
        let spec = dft_real(&xs);
        let n = xs.len();
        for k in 1..n {
            assert!((spec[k] - spec[n - k].conj()).norm() < 1e-12);
        }
    }
}
