//! FFT planning: the [`Fft`] algorithm trait, the iterative radix-2
//! Cooley–Tukey implementation (Fig. 1 of the paper), and the [`FftPlanner`]
//! that caches twiddle tables per transform size.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::complex::{Complex, FftFloat};
use crate::error::FftError;
use ffdl_telemetry::Counter;

/// Process-wide plan-cache counters (`ffdl.fft.plan_cache.hit` /
/// `.miss`), registered in the global telemetry registry on first use
/// and cached so the hot path never takes the registry lock.
fn plan_cache_counters() -> &'static (Arc<Counter>, Arc<Counter>) {
    static COUNTERS: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = ffdl_telemetry::global();
        (
            registry.counter("ffdl.fft.plan_cache.hit"),
            registry.counter("ffdl.fft.plan_cache.miss"),
        )
    })
}

/// Transform direction.
///
/// The forward transform is unscaled; the inverse transform divides by the
/// length `n`, so `ifft(fft(x)) == x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time domain → frequency domain, kernel `e^{-2πi jk/n}`.
    Forward,
    /// Frequency domain → time domain, kernel `e^{+2πi jk/n} / n`.
    Inverse,
}

impl Direction {
    /// The opposite direction.
    pub fn reversed(self) -> Self {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }

    /// Sign of the exponent in the transform kernel.
    pub fn sign<T: FftFloat>(self) -> T {
        match self {
            Direction::Forward => -T::ONE,
            Direction::Inverse => T::ONE,
        }
    }
}

/// A planned fast Fourier transform of a fixed size and direction.
///
/// Implementations precompute twiddle factors so repeated calls to
/// [`Fft::process`] avoid trigonometry entirely — the usage pattern of the
/// paper's inference engine, which transforms thousands of activation
/// vectors with the same block size.
pub trait Fft<T: FftFloat>: Send + Sync {
    /// Transform size this plan was built for.
    fn len(&self) -> usize;

    /// `true` when the transform size is zero (never, for planner-built
    /// plans, but required for a well-behaved `len`/`is_empty` pair).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direction this plan computes.
    fn direction(&self) -> Direction;

    /// Transforms `buf` in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `buf.len() != self.len()`.
    fn process(&self, buf: &mut [Complex<T>]) -> Result<(), FftError>;
}

/// Iterative radix-2 decimation-in-time Cooley–Tukey FFT.
///
/// Bit-reversal permutation followed by `log₂ n` butterfly stages, using a
/// precomputed table of `n/2` twiddle factors. This is the classic
/// structure illustrated in Fig. 1 of the paper.
pub struct Radix2<T> {
    len: usize,
    direction: Direction,
    /// `twiddles[k] = e^{sign·2πi·k/n}` for `k < n/2`.
    twiddles: Vec<Complex<T>>,
    /// Precomputed bit-reversal permutation.
    bit_reverse: Vec<u32>,
}

impl<T: FftFloat> Radix2<T> {
    /// Builds a radix-2 plan.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a power of two (the planner guarantees this;
    /// direct constructors validate it so the invariant is explicit).
    pub fn new(len: usize, direction: Direction) -> Self {
        assert!(
            len.is_power_of_two(),
            "radix-2 FFT requires a power-of-two length, got {len}"
        );
        let half = len / 2;
        let sign: T = direction.sign();
        let two_pi = T::from_f64(2.0) * T::PI;
        let twiddles = (0..half)
            .map(|k| Complex::cis(sign * two_pi * T::from_usize(k) / T::from_usize(len)))
            .collect();

        let bits = len.trailing_zeros();
        let bit_reverse = (0..len as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();

        Self {
            len,
            direction,
            twiddles,
            bit_reverse,
        }
    }
}

impl<T: FftFloat> Fft<T> for Radix2<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn direction(&self) -> Direction {
        self.direction
    }

    fn process(&self, buf: &mut [Complex<T>]) -> Result<(), FftError> {
        if buf.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: buf.len(),
            });
        }
        let n = self.len;

        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bit_reverse[i] as usize;
            if j > i {
                buf.swap(i, j);
            }
        }

        // Butterfly stages: sub-transform size doubles each stage.
        let mut m = 2;
        while m <= n {
            let half_m = m / 2;
            let twiddle_stride = n / m;
            for start in (0..n).step_by(m) {
                for k in 0..half_m {
                    let w = self.twiddles[k * twiddle_stride];
                    let lo = start + k;
                    let hi = lo + half_m;
                    let t = buf[hi] * w;
                    let u = buf[lo];
                    buf[lo] = u + t;
                    buf[hi] = u - t;
                }
            }
            m *= 2;
        }

        if self.direction == Direction::Inverse {
            let inv_n = T::ONE / T::from_usize(n);
            for v in buf.iter_mut() {
                *v = v.scale(inv_n);
            }
        }
        Ok(())
    }
}

/// Plans FFTs and caches them per `(size, direction)`.
///
/// Power-of-two sizes use [`Radix2`]; all other sizes use
/// [`Bluestein`](crate::bluestein::Bluestein)'s chirp-z algorithm. Plans are
/// returned as `Arc`s so layers can share them cheaply.
///
/// # Examples
///
/// ```
/// use ffdl_fft::{Complex, Direction, FftPlanner};
///
/// let mut planner = FftPlanner::<f64>::new();
/// let fft = planner.plan(8, Direction::Forward);
/// let ifft = planner.plan(8, Direction::Inverse);
///
/// let original: Vec<_> = (0..8).map(|k| Complex::from_real(k as f64)).collect();
/// let mut buf = original.clone();
/// fft.process(&mut buf)?;
/// ifft.process(&mut buf)?;
/// for (a, b) in buf.iter().zip(&original) {
///     assert!((*a - *b).norm() < 1e-12);
/// }
/// # Ok::<(), ffdl_fft::FftError>(())
/// ```
pub struct FftPlanner<T> {
    cache: HashMap<(usize, Direction), Arc<dyn Fft<T>>>,
}

impl<T: FftFloat> FftPlanner<T> {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self {
            cache: HashMap::new(),
        }
    }

    /// Returns a plan for the given size and direction, creating and
    /// caching it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn plan(&mut self, len: usize, direction: Direction) -> Arc<dyn Fft<T>> {
        assert!(len > 0, "cannot plan a zero-length FFT");
        if let Some(plan) = self.cache.get(&(len, direction)) {
            if ffdl_telemetry::enabled() {
                plan_cache_counters().0.inc();
            }
            return Arc::clone(plan);
        }
        if ffdl_telemetry::enabled() {
            plan_cache_counters().1.inc();
        }
        let plan: Arc<dyn Fft<T>> = if len.is_power_of_two() {
            Arc::new(Radix2::new(len, direction))
        } else {
            Arc::new(crate::bluestein::Bluestein::new(len, direction))
        };
        self.cache.insert((len, direction), Arc::clone(&plan));
        plan
    }

    /// Shorthand for a forward plan.
    pub fn plan_forward(&mut self, len: usize) -> Arc<dyn Fft<T>> {
        self.plan(len, Direction::Forward)
    }

    /// Shorthand for an inverse plan.
    pub fn plan_inverse(&mut self, len: usize) -> Arc<dyn Fft<T>> {
        self.plan(len, Direction::Inverse)
    }

    /// Number of cached plans (diagnostics / tests).
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }
}

impl<T: FftFloat> Default for FftPlanner<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot forward FFT of a complex buffer (convenience wrapper).
///
/// For hot paths, prefer an explicit [`FftPlanner`] so twiddle tables are
/// reused across calls.
pub fn fft<T: FftFloat>(input: &[Complex<T>]) -> Vec<Complex<T>> {
    let mut buf = input.to_vec();
    if buf.is_empty() {
        return buf;
    }
    let plan = FftPlanner::new().plan(buf.len(), Direction::Forward);
    plan.process(&mut buf).expect("length matches plan");
    buf
}

/// One-shot inverse FFT of a complex buffer (convenience wrapper).
pub fn ifft<T: FftFloat>(input: &[Complex<T>]) -> Vec<Complex<T>> {
    let mut buf = input.to_vec();
    if buf.is_empty() {
        return buf;
    }
    let plan = FftPlanner::new().plan(buf.len(), Direction::Inverse);
    plan.process(&mut buf).expect("length matches plan");
    buf
}

/// One-shot forward FFT of a real signal.
pub fn fft_real<T: FftFloat>(input: &[T]) -> Vec<Complex<T>> {
    let buf: Vec<Complex<T>> = input.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| {
                Complex64::new(
                    (k as f64 * 0.37).sin() + 0.25 * (k as f64),
                    (k as f64 * 1.11).cos(),
                )
            })
            .collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).norm() < tol, "index {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn radix2_matches_dft_for_all_pow2_up_to_256() {
        for exp in 0..=8 {
            let n = 1usize << exp;
            let x = signal(n);
            let mut buf = x.clone();
            Radix2::new(n, Direction::Forward)
                .process(&mut buf)
                .unwrap();
            let reference = dft(&x, Direction::Forward);
            assert_close(&buf, &reference, 1e-8 * (n as f64));
        }
    }

    #[test]
    fn radix2_inverse_matches_dft() {
        let n = 64;
        let x = signal(n);
        let mut buf = x.clone();
        Radix2::new(n, Direction::Inverse)
            .process(&mut buf)
            .unwrap();
        let reference = dft(&x, Direction::Inverse);
        assert_close(&buf, &reference, 1e-10);
    }

    #[test]
    fn roundtrip_identity() {
        let n = 128;
        let x = signal(n);
        let mut buf = x.clone();
        Radix2::new(n, Direction::Forward)
            .process(&mut buf)
            .unwrap();
        Radix2::new(n, Direction::Inverse)
            .process(&mut buf)
            .unwrap();
        assert_close(&buf, &x, 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex64::new(2.0, -3.0)];
        let mut buf = x.clone();
        Radix2::new(1, Direction::Forward)
            .process(&mut buf)
            .unwrap();
        assert_eq!(buf, x);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn radix2_rejects_non_pow2() {
        let _ = Radix2::<f64>::new(6, Direction::Forward);
    }

    #[test]
    fn process_rejects_wrong_length() {
        let plan = Radix2::<f64>::new(8, Direction::Forward);
        let mut buf = vec![Complex64::zero(); 4];
        let err = plan.process(&mut buf).unwrap_err();
        assert_eq!(
            err,
            FftError::LengthMismatch {
                expected: 8,
                actual: 4
            }
        );
    }

    #[test]
    fn planner_caches_plans() {
        let mut planner = FftPlanner::<f64>::new();
        let a = planner.plan(16, Direction::Forward);
        let b = planner.plan(16, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(planner.cached_plans(), 1);
        let _ = planner.plan(16, Direction::Inverse);
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn repeated_same_size_plans_reuse_twiddles_and_count_as_hits() {
        let hits = || {
            ffdl_telemetry::global()
                .snapshot()
                .counter("ffdl.fft.plan_cache.hit")
                .unwrap_or(0)
        };
        let misses = || {
            ffdl_telemetry::global()
                .snapshot()
                .counter("ffdl.fft.plan_cache.miss")
                .unwrap_or(0)
        };
        let (h0, m0) = (hits(), misses());
        ffdl_telemetry::set_enabled(true);
        let mut planner = FftPlanner::<f64>::new();
        let first = planner.plan(32, Direction::Forward); // builds twiddles
        let second = planner.plan(32, Direction::Forward); // cache hit
        let third = planner.plan_forward(32); // cache hit via shorthand
        ffdl_telemetry::set_enabled(false);
        // Same Arc ⇒ the twiddle table was built once and reused.
        assert!(Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(planner.cached_plans(), 1);
        // Counters are global and monotone, so concurrent tests can only
        // add: ≥, not ==.
        assert!(hits() >= h0 + 2, "hits {} -> {}", h0, hits());
        assert!(misses() > m0, "misses {} -> {}", m0, misses());
    }

    #[test]
    fn planner_handles_non_pow2_via_bluestein() {
        let mut planner = FftPlanner::<f64>::new();
        let n = 12;
        let plan = planner.plan_forward(n);
        let x = signal(n);
        let mut buf = x.clone();
        plan.process(&mut buf).unwrap();
        let reference = dft(&x, Direction::Forward);
        assert_close(&buf, &reference, 1e-8);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn planner_rejects_zero() {
        let _ = FftPlanner::<f64>::new().plan(0, Direction::Forward);
    }

    #[test]
    fn convenience_fft_ifft() {
        let x = signal(32);
        let back = ifft(&fft(&x));
        assert_close(&back, &x, 1e-10);
        assert!(fft::<f64>(&[]).is_empty());
        assert!(ifft::<f64>(&[]).is_empty());
    }

    #[test]
    fn fft_real_matches_complex_path() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let via_real = fft_real(&xs);
        let via_complex = fft(&xs
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect::<Vec<_>>());
        assert_close(&via_real, &via_complex, 1e-12);
    }

    #[test]
    fn direction_reversed() {
        assert_eq!(Direction::Forward.reversed(), Direction::Inverse);
        assert_eq!(Direction::Inverse.reversed(), Direction::Forward);
    }

    #[test]
    fn f32_roundtrip() {
        let x: Vec<Complex<f32>> = (0..64)
            .map(|k| Complex::new((k as f32 * 0.1).sin(), 0.0))
            .collect();
        let mut buf = x.clone();
        let mut planner = FftPlanner::<f32>::new();
        planner.plan_forward(64).process(&mut buf).unwrap();
        planner.plan_inverse(64).process(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-4);
        }
    }
}
