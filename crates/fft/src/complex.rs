//! A minimal complex-number type and the float abstraction used by the FFT
//! kernels.
//!
//! The crate is generic over [`FftFloat`] so that the same planner code can
//! run in `f32` (the precision used by the neural-network stack, matching
//! the embedded deployment target) and in `f64` (used by numerical tests
//! that validate the algebra to tight tolerances).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable by the FFT kernels.
///
/// Implemented for `f32` and `f64`. The trait is sealed in spirit: the FFT
/// algebra assumes IEEE-754 semantics and the two std float types are the
/// only intended implementors.
pub trait FftFloat:
    Copy
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Default
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Archimedes' constant.
    const PI: Self;

    /// Lossless conversion from a `usize` (exact for the sizes used here).
    fn from_usize(n: usize) -> Self;
    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
}

impl FftFloat for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const PI: Self = std::f32::consts::PI;

    fn from_usize(n: usize) -> Self {
        n as f32
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn sin(self) -> Self {
        self.sin()
    }
    fn cos(self) -> Self {
        self.cos()
    }
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    fn abs(self) -> Self {
        self.abs()
    }
}

impl FftFloat for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const PI: Self = std::f64::consts::PI;

    fn from_usize(n: usize) -> Self {
        n as f64
    }
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn sin(self) -> Self {
        self.sin()
    }
    fn cos(self) -> Self {
        self.cos()
    }
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    fn abs(self) -> Self {
        self.abs()
    }
}

/// A complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use ffdl_fft::Complex;
///
/// let a = Complex::new(1.0f64, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex::new(1.0, -2.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex number, the working type of the inference stack.
pub type Complex32 = Complex<f32>;
/// Double-precision complex number, used by high-accuracy tests.
pub type Complex64 = Complex<f64>;

impl<T: FftFloat> Complex<T> {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity `1 + 0i`.
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// The imaginary unit `i`.
    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// Creates a purely real complex number.
    pub fn from_real(re: T) -> Self {
        Self::new(re, T::ZERO)
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn cis(theta: T) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    pub fn norm(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: T) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Divides by a real scalar.
    pub fn unscale(self, k: T) -> Self {
        Self::new(self.re / k, self.im / k)
    }

    /// Multiplicative inverse.
    ///
    /// Returns `NaN` components when `self` is zero, mirroring IEEE float
    /// division semantics.
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }
}

impl<T: FftFloat> Add for Complex<T> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: FftFloat> AddAssign for Complex<T> {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: FftFloat> Sub for Complex<T> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: FftFloat> SubAssign for Complex<T> {
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: FftFloat> Mul for Complex<T> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: FftFloat> MulAssign for Complex<T> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: FftFloat> Div for Complex<T> {
    type Output = Self;
    // z / w is defined as z · w⁻¹; the multiply is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl<T: FftFloat> Neg for Complex<T> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: FftFloat> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: FftFloat> From<T> for Complex<T> {
    fn from(re: T) -> Self {
        Self::from_real(re)
    }
}

impl<T: FftFloat> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: FftFloat> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex::new(re, im)
    }

    #[test]
    fn add_sub() {
        assert_eq!(c(1.0, 2.0) + c(3.0, 4.0), c(4.0, 6.0));
        assert_eq!(c(1.0, 2.0) - c(3.0, 4.0), c(-2.0, -2.0));
    }

    #[test]
    fn mul_matches_expansion() {
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(c(1.0, 2.0) * c(3.0, 4.0), c(-5.0, 10.0));
    }

    #[test]
    fn mul_by_i_rotates() {
        assert_eq!(c(1.0, 0.0) * Complex::i(), c(0.0, 1.0));
        assert_eq!(c(0.0, 1.0) * Complex::i(), c(-1.0, 0.0));
    }

    #[test]
    fn div_roundtrip() {
        let a = c(2.5, -1.5);
        let b = c(0.5, 3.0);
        let q = a / b;
        let back = q * b;
        assert!((back - a).norm() < 1e-12);
    }

    #[test]
    fn inv_of_unit() {
        let z = Complex64::cis(0.7);
        let w = z.inv();
        assert!((w - z.conj()).norm() < 1e-12, "inverse of unit is conjugate");
    }

    #[test]
    fn conj_involution_and_norm() {
        let z = c(3.0, -4.0);
        assert_eq!(z.conj().conj(), z);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_unscale() {
        let z = c(1.0, -2.0);
        assert_eq!(z.scale(2.0), c(2.0, -4.0));
        assert_eq!(z.scale(2.0).unscale(2.0), z);
    }

    #[test]
    fn sum_folds() {
        let s: Complex64 = (0..4).map(|k| c(k as f64, 1.0)).sum();
        assert_eq!(s, c(6.0, 4.0));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let z = c(1.0, -2.0);
        assert!(!format!("{z}").is_empty());
        assert!(!format!("{z:?}").is_empty());
    }

    #[test]
    fn from_real() {
        let z: Complex64 = 3.5f64.into();
        assert_eq!(z, c(3.5, 0.0));
    }

    #[test]
    fn f32_variant_works() {
        let a = Complex32::new(1.0, 1.0);
        assert!((a.norm() - std::f32::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Complex32>();
        assert_send_sync::<Complex64>();
    }
}
