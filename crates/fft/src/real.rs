//! Real-input FFTs.
//!
//! Weight vectors and activations in the paper's layers are real, so the
//! forward transform only needs the `n/2 + 1` non-redundant spectrum bins.
//! For even lengths this module packs the real signal into an `n/2`-point
//! complex transform (the classic two-for-one trick), halving the work of
//! the kernel that dominates inference time. Odd lengths fall back to the
//! complex transform transparently.

use crate::complex::{Complex, FftFloat};
use crate::error::FftError;
use crate::plan::{Fft, FftPlanner};
use std::sync::Arc;

/// A planned real-input FFT of fixed length `n`.
///
/// [`RealFft::forward`] maps `n` reals to the `n/2 + 1` (rounded down
/// division, plus one) non-redundant complex bins; [`RealFft::inverse`]
/// maps them back. The remaining bins of the full spectrum are the
/// conjugate mirror `X[n−k] = conj(X[k])` and are never materialized.
///
/// # Examples
///
/// ```
/// use ffdl_fft::RealFft;
///
/// let plan = RealFft::<f64>::new(8);
/// let x = [1.0, 2.0, 0.0, -1.0, 3.0, 0.5, -2.0, 1.5];
/// let spectrum = plan.forward(&x)?;
/// assert_eq!(spectrum.len(), 5); // 8/2 + 1
/// let back = plan.inverse(&spectrum)?;
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// # Ok::<(), ffdl_fft::FftError>(())
/// ```
pub struct RealFft<T> {
    len: usize,
    /// Even lengths: half-size complex plans plus unpack twiddles.
    packed: Option<PackedPlans<T>>,
    /// Odd lengths: full-size complex plans.
    fallback: Option<FallbackPlans<T>>,
}

// Cloning a plan shares the Arc'd complex plans and copies the O(n)
// twiddle table — cheap enough for per-worker layer clones.
impl<T: Clone> Clone for RealFft<T> {
    fn clone(&self) -> Self {
        Self {
            len: self.len,
            packed: self.packed.clone(),
            fallback: self.fallback.clone(),
        }
    }
}

struct PackedPlans<T> {
    half_forward: Arc<dyn Fft<T>>,
    half_inverse: Arc<dyn Fft<T>>,
    /// `e^{-2πik/n}` for `k <= n/2`.
    twiddles: Vec<Complex<T>>,
}

impl<T: Clone> Clone for PackedPlans<T> {
    fn clone(&self) -> Self {
        Self {
            half_forward: Arc::clone(&self.half_forward),
            half_inverse: Arc::clone(&self.half_inverse),
            twiddles: self.twiddles.clone(),
        }
    }
}

struct FallbackPlans<T> {
    forward: Arc<dyn Fft<T>>,
    inverse: Arc<dyn Fft<T>>,
}

impl<T> Clone for FallbackPlans<T> {
    fn clone(&self) -> Self {
        Self {
            forward: Arc::clone(&self.forward),
            inverse: Arc::clone(&self.inverse),
        }
    }
}

impl<T: FftFloat> RealFft<T> {
    /// Builds a real-FFT plan of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "cannot build a zero-length real FFT plan");
        let mut planner = FftPlanner::new();
        if len.is_multiple_of(2) && len >= 2 {
            let half = len / 2;
            let two_pi = T::from_f64(2.0) * T::PI;
            let twiddles = (0..=half)
                .map(|k| Complex::cis(-two_pi * T::from_usize(k) / T::from_usize(len)))
                .collect();
            Self {
                len,
                packed: Some(PackedPlans {
                    half_forward: planner.plan_forward(half),
                    half_inverse: planner.plan_inverse(half),
                    twiddles,
                }),
                fallback: None,
            }
        } else {
            Self {
                len,
                packed: None,
                fallback: Some(FallbackPlans {
                    forward: planner.plan_forward(len),
                    inverse: planner.plan_inverse(len),
                }),
            }
        }
    }

    /// Signal length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: zero-length plans cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of non-redundant spectrum bins: `len/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.len / 2 + 1
    }

    /// Forward transform of a real signal into its half spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `input.len() != self.len()`.
    pub fn forward(&self, input: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.forward_into(input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-reusing variant of [`RealFft::forward`]: writes the
    /// half spectrum into `out` and uses `scratch` for the packed
    /// intermediate. Both vectors are cleared and refilled; once they
    /// have grown to capacity, repeated calls perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `input.len() != self.len()`.
    pub fn forward_into(
        &self,
        input: &[T],
        scratch: &mut Vec<Complex<T>>,
        out: &mut Vec<Complex<T>>,
    ) -> Result<(), FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: input.len(),
            });
        }
        if let Some(p) = &self.packed {
            let half = self.len / 2;
            // Pack pairs of reals into one complex signal.
            scratch.clear();
            scratch.extend((0..half).map(|j| Complex::new(input[2 * j], input[2 * j + 1])));
            p.half_forward.process(scratch)?;

            let z: &[Complex<T>] = scratch;
            let mirror = |k: usize| if k == 0 { z[0] } else { z[half - k] };
            let half_scale = T::from_f64(0.5);
            out.clear();
            out.extend((0..=half).map(|k| {
                let zk = if k == half { z[0] } else { z[k] };
                let zm = mirror(k % half).conj();
                // E[k] (even samples) and O[k] (odd samples):
                let e = (zk + zm).scale(half_scale);
                let o = (zk - zm).scale(half_scale) * Complex::new(T::ZERO, -T::ONE);
                e + p.twiddles[k] * o
            }));
            Ok(())
        } else {
            let f = self.fallback.as_ref().expect("one of the plans is set");
            scratch.clear();
            scratch.extend(input.iter().map(|&x| Complex::from_real(x)));
            f.forward.process(scratch)?;
            out.clear();
            out.extend_from_slice(&scratch[..self.spectrum_len()]);
            Ok(())
        }
    }

    /// Inverse transform of a half spectrum back to a real signal.
    ///
    /// Imaginary residue produced by rounding is discarded. Bins beyond the
    /// conjugate-symmetry constraint (`Im X[0]`, and `Im X[n/2]` for even
    /// `n`) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when
    /// `spectrum.len() != self.spectrum_len()`.
    pub fn inverse(&self, spectrum: &[Complex<T>]) -> Result<Vec<T>, FftError> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.inverse_into(spectrum, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-reusing variant of [`RealFft::inverse`]: writes the
    /// reconstructed real signal into `out` and uses `scratch` for the
    /// complex intermediate. Both vectors are cleared and refilled; once
    /// they have grown to capacity, repeated calls perform no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when
    /// `spectrum.len() != self.spectrum_len()`.
    pub fn inverse_into(
        &self,
        spectrum: &[Complex<T>],
        scratch: &mut Vec<Complex<T>>,
        out: &mut Vec<T>,
    ) -> Result<(), FftError> {
        if spectrum.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                actual: spectrum.len(),
            });
        }
        if let Some(p) = &self.packed {
            let half = self.len / 2;
            let half_scale = T::from_f64(0.5);
            scratch.clear();
            scratch.extend((0..half).map(|k| {
                let xk = spectrum[k];
                let xm = spectrum[half - k].conj();
                let e = (xk + xm).scale(half_scale);
                // O[k] = (X[k] − conj(X[n/2−k])) / (2·w^k); 1/w^k = conj(w^k).
                let o = (xk - xm).scale(half_scale) * p.twiddles[k].conj();
                e + o * Complex::new(T::ZERO, T::ONE)
            }));
            p.half_inverse.process(scratch)?;
            out.clear();
            out.reserve(self.len);
            for v in scratch.iter() {
                out.push(v.re);
                out.push(v.im);
            }
            Ok(())
        } else {
            let f = self.fallback.as_ref().expect("one of the plans is set");
            // Rebuild the full spectrum by conjugate symmetry.
            scratch.clear();
            scratch.resize(self.len, Complex::zero());
            scratch[..spectrum.len()].copy_from_slice(spectrum);
            for k in spectrum.len()..self.len {
                scratch[k] = spectrum[self.len - k].conj();
            }
            f.inverse.process(scratch)?;
            out.clear();
            out.extend(scratch.iter().map(|v| v.re));
            Ok(())
        }
    }
}

/// One-shot forward real FFT (half spectrum). See [`RealFft`].
pub fn rfft<T: FftFloat>(input: &[T]) -> Vec<Complex<T>> {
    if input.is_empty() {
        return Vec::new();
    }
    RealFft::new(input.len())
        .forward(input)
        .expect("length matches plan")
}

/// One-shot inverse real FFT: reconstructs a length-`n` real signal from
/// its half spectrum.
///
/// # Panics
///
/// Panics if `spectrum.len() != n/2 + 1` or `n == 0`.
pub fn irfft<T: FftFloat>(spectrum: &[Complex<T>], n: usize) -> Vec<T> {
    RealFft::new(n)
        .inverse(spectrum)
        .expect("spectrum length matches plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_real;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| (k as f64 * 0.613).sin() + 0.3 * (k as f64 * 1.71).cos())
            .collect()
    }

    #[test]
    fn forward_matches_full_dft_even() {
        for n in [2usize, 4, 6, 8, 16, 64, 100] {
            let x = signal(n);
            let half = RealFft::new(n).forward(&x).unwrap();
            let full = dft_real(&x);
            assert_eq!(half.len(), n / 2 + 1);
            for (k, v) in half.iter().enumerate() {
                assert!(
                    (*v - full[k]).norm() < 1e-9,
                    "n={n} k={k}: {v:?} vs {:?}",
                    full[k]
                );
            }
        }
    }

    #[test]
    fn forward_matches_full_dft_odd() {
        for n in [1usize, 3, 5, 7, 9, 121] {
            let x = signal(n);
            let half = RealFft::new(n).forward(&x).unwrap();
            let full = dft_real(&x);
            assert_eq!(half.len(), n / 2 + 1);
            for (k, v) in half.iter().enumerate() {
                assert!((*v - full[k]).norm() < 1e-8, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn roundtrip_even_and_odd() {
        for n in [2usize, 5, 8, 11, 16, 121, 128] {
            let x = signal(n);
            let plan = RealFft::new(n);
            let back = plan.inverse(&plan.forward(&x).unwrap()).unwrap();
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn into_variants_match_and_reuse_buffers() {
        for n in [8usize, 7, 16] {
            let x = signal(n);
            let plan = RealFft::new(n);
            let mut scratch = Vec::new();
            let mut spec = Vec::new();
            plan.forward_into(&x, &mut scratch, &mut spec).unwrap();
            let reference = plan.forward(&x).unwrap();
            assert_eq!(spec.len(), reference.len());
            for (a, b) in spec.iter().zip(&reference) {
                assert!((*a - *b).norm() < 1e-12, "n={n}");
            }
            let mut back = Vec::new();
            plan.inverse_into(&spec, &mut scratch, &mut back).unwrap();
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
            // Steady state: capacities are warm, repeated calls only refill.
            let (cs, co) = (scratch.capacity(), spec.capacity());
            plan.forward_into(&x, &mut scratch, &mut spec).unwrap();
            assert_eq!(scratch.capacity(), cs);
            assert_eq!(spec.capacity(), co);
        }
    }

    #[test]
    fn spectrum_len_accessor() {
        assert_eq!(RealFft::<f64>::new(8).spectrum_len(), 5);
        assert_eq!(RealFft::<f64>::new(7).spectrum_len(), 4);
        assert_eq!(RealFft::<f64>::new(1).spectrum_len(), 1);
    }

    #[test]
    fn length_mismatch_errors() {
        let plan = RealFft::<f64>::new(8);
        assert!(matches!(
            plan.forward(&[0.0; 7]),
            Err(FftError::LengthMismatch { .. })
        ));
        assert!(matches!(
            plan.inverse(&[Complex::zero(); 4]),
            Err(FftError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn one_shot_wrappers() {
        let x = signal(12);
        let spec = rfft(&x);
        let back = irfft(&spec, 12);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!(rfft::<f64>(&[]).is_empty());
    }

    #[test]
    fn f32_roundtrip() {
        let x: Vec<f32> = (0..32).map(|k| (k as f32 * 0.2).sin()).collect();
        let plan = RealFft::<f32>::new(32);
        let back = plan.inverse(&plan.forward(&x).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_panics() {
        let _ = RealFft::<f64>::new(0);
    }
}
