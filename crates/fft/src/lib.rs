//! # ffdl-fft — the FFT computing kernel
//!
//! From-scratch Fast Fourier Transform library underpinning the
//! block-circulant deep-learning stack of *"FFT-Based Deep Learning
//! Deployment in Embedded Systems"* (Lin et al., DATE 2018).
//!
//! The paper's entire contribution rests on one identity: multiplying by a
//! circulant matrix is a circular convolution, which the FFT evaluates in
//! `O(n log n)` instead of `O(n²)` (Eqn. 3, Fig. 2). This crate provides
//! that kernel:
//!
//! - [`Complex`] numbers generic over `f32`/`f64` ([`FftFloat`]),
//! - the iterative radix-2 Cooley–Tukey transform ([`Radix2`], Fig. 1),
//! - [`Bluestein`]'s chirp-z transform for arbitrary lengths,
//! - real-input transforms ([`RealFft`]) that compute only the
//!   non-redundant half spectrum,
//! - circular convolution/correlation ([`Convolver`], [`circular_convolve`])
//!   with direct `O(n²)` references for testing and benchmarking,
//! - a plan cache ([`FftPlanner`]) so hot loops never recompute twiddles,
//! - a naive [`dft`] as the ground-truth reference.
//!
//! # Examples
//!
//! The convolution theorem in action — the procedure of Fig. 2:
//!
//! ```
//! use ffdl_fft::{circular_convolve, circular_convolve_direct};
//!
//! let w = [0.5f64, -0.25, 0.0, 0.75];
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let fast = circular_convolve(&w, &x);
//! let slow = circular_convolve_direct(&w, &x);
//! for (a, b) in fast.iter().zip(&slow) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bluestein;
mod complex;
mod convolution;
mod dft;
mod error;
mod fft2d;
mod plan;
mod real;

pub use bluestein::Bluestein;
pub use fft2d::{circular_convolve2d, Fft2d};
pub use complex::{Complex, Complex32, Complex64, FftFloat};
pub use convolution::{
    circular_convolve, circular_convolve_direct, circular_correlate, circular_correlate_direct,
    linear_convolve, linear_convolve_direct, Convolver,
};
pub use dft::{dft, dft_real};
pub use error::FftError;
pub use plan::{fft, fft_real, ifft, Direction, Fft, FftPlanner, Radix2};
pub use real::{irfft, rfft, RealFft};
