//! Property-based tests for the FFT kernel: the algebraic identities the
//! paper's Algorithm 1/2 rely on must hold for arbitrary inputs.

use ffdl_fft::{
    circular_convolve, circular_convolve_direct, circular_correlate, circular_correlate_direct,
    dft, fft, ifft, irfft, linear_convolve, linear_convolve_direct, rfft, Complex, Complex64,
    Direction, FftPlanner,
};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Keep magnitudes moderate so tolerance scaling stays simple.
    prop::num::f64::NORMAL.prop_map(|x| (x % 1000.0) / 10.0)
}

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((finite_f64(), finite_f64()), 1..=max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

fn real_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_f64(), 1..=max_len)
}

fn max_norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm()).fold(0.0, f64::max).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ifft(fft(x)) == x for any length (radix-2 and Bluestein paths).
    #[test]
    fn fft_roundtrip(x in complex_vec(200)) {
        let back = ifft(&fft(&x));
        let scale = max_norm(&x);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).norm() < 1e-8 * scale * x.len() as f64);
        }
    }

    /// The fast transform agrees with the O(n²) DFT definition.
    #[test]
    fn fft_matches_dft(x in complex_vec(96)) {
        let fast = fft(&x);
        let slow = dft(&x, Direction::Forward);
        let scale = max_norm(&x) * x.len() as f64;
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).norm() < 1e-8 * scale);
        }
    }

    /// FFT is linear: FFT(αx + y) == α·FFT(x) + FFT(y).
    #[test]
    fn fft_linearity(x in complex_vec(64), alpha in finite_f64()) {
        // Build y of the same length from x deterministically.
        let y: Vec<Complex64> = x.iter().map(|z| z.conj().scale(0.5)).collect();
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(&a, &b)| a.scale(alpha) + b).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let scale = max_norm(&x) * (alpha.abs() + 1.0) * x.len() as f64;
        for ((l, a), b) in lhs.iter().zip(&fx).zip(&fy) {
            prop_assert!((*l - (a.scale(alpha) + *b)).norm() < 1e-8 * scale);
        }
    }

    /// Parseval: energy is conserved (with the 1/n convention on inverse).
    #[test]
    fn parseval(x in complex_vec(128)) {
        let n = x.len() as f64;
        let spec = fft(&x);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((te - fe).abs() < 1e-6 * (te.abs() + 1.0) * n);
    }

    /// Convolution theorem: FFT convolution equals the direct definition.
    #[test]
    fn convolution_theorem(pair in real_vec(100).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), prop::collection::vec(finite_f64(), n..=n))
    })) {
        let (a, b) = pair;
        let fast = circular_convolve(&a, &b);
        let slow = circular_convolve_direct(&a, &b);
        let scale: f64 = a.iter().map(|v| v.abs()).fold(1.0, f64::max)
            * b.iter().map(|v| v.abs()).fold(1.0, f64::max)
            * a.len() as f64;
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-8 * scale);
        }
    }

    /// Correlation via FFT equals the direct definition.
    #[test]
    fn correlation_matches_direct(pair in real_vec(80).prop_flat_map(|a| {
        let n = a.len();
        (Just(a), prop::collection::vec(finite_f64(), n..=n))
    })) {
        let (a, b) = pair;
        let fast = circular_correlate(&a, &b);
        let slow = circular_correlate_direct(&a, &b);
        let scale: f64 = a.iter().map(|v| v.abs()).fold(1.0, f64::max)
            * b.iter().map(|v| v.abs()).fold(1.0, f64::max)
            * a.len() as f64;
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-8 * scale);
        }
    }

    /// Real FFT round-trips through the half spectrum.
    #[test]
    fn rfft_roundtrip(x in real_vec(150)) {
        let spec = rfft(&x);
        prop_assert_eq!(spec.len(), x.len() / 2 + 1);
        let back = irfft(&spec, x.len());
        let scale: f64 = x.iter().map(|v| v.abs()).fold(1.0, f64::max) * x.len() as f64;
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-9 * scale);
        }
    }

    /// The half spectrum agrees with the full complex transform.
    #[test]
    fn rfft_matches_fft(x in real_vec(100)) {
        let half = rfft(&x);
        let full = fft(&x.iter().map(|&v| Complex::from_real(v)).collect::<Vec<_>>());
        let scale: f64 = x.iter().map(|v| v.abs()).fold(1.0, f64::max) * x.len() as f64;
        for (k, h) in half.iter().enumerate() {
            prop_assert!((*h - full[k]).norm() < 1e-8 * scale);
        }
    }

    /// Linear convolution via FFT equals direct; length is n+m−1.
    #[test]
    fn linear_convolution(a in real_vec(40), b in real_vec(40)) {
        let fast = linear_convolve(&a, &b);
        let slow = linear_convolve_direct(&a, &b);
        prop_assert_eq!(fast.len(), a.len() + b.len() - 1);
        let scale: f64 = a.iter().map(|v| v.abs()).fold(1.0, f64::max)
            * b.iter().map(|v| v.abs()).fold(1.0, f64::max)
            * (a.len() + b.len()) as f64;
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-8 * scale);
        }
    }

    /// Time shift ↔ phase rotation: FFT(rot₁(x))[k] = FFT(x)[k]·e^{-2πik/n}.
    #[test]
    fn shift_theorem(x in complex_vec(64)) {
        let n = x.len();
        let mut rotated = x.clone();
        rotated.rotate_right(1);
        let fx = fft(&x);
        let fr = fft(&rotated);
        let scale = max_norm(&x) * n as f64;
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            prop_assert!((fr[k] - fx[k] * phase).norm() < 1e-8 * scale);
        }
    }
}

#[test]
fn planner_is_reusable_across_sizes() {
    let mut planner = FftPlanner::<f64>::new();
    for n in [2usize, 3, 8, 12, 16, 121] {
        let x: Vec<Complex64> = (0..n).map(|k| Complex::from_real(k as f64)).collect();
        let mut buf = x.clone();
        planner.plan_forward(n).process(&mut buf).unwrap();
        planner.plan_inverse(n).process(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }
    assert_eq!(planner.cached_plans(), 12);
}
