//! Property-based tests for the FFT kernel: the algebraic identities the
//! paper's Algorithm 1/2 rely on must hold for arbitrary inputs.
//!
//! Ported from `proptest` onto the in-house `ffdl_rng::prop` harness:
//! cases are generated from per-case seeds and replayable via
//! `FFDL_PROP_REPLAY` (see `crates/rng/src/prop.rs`).

use ffdl_fft::{
    circular_convolve, circular_convolve_direct, circular_correlate, circular_correlate_direct,
    dft, fft, ifft, irfft, linear_convolve, linear_convolve_direct, rfft, Complex, Complex64,
    Direction, FftPlanner,
};
use ffdl_rng::prop::{check, moderate_f64, vec_of};
use ffdl_rng::{prop_assert, prop_assert_eq, SmallRng};

fn complex_vec(rng: &mut SmallRng, max_len: usize) -> Vec<Complex64> {
    vec_of(rng, 1..=max_len, |r| {
        Complex::new(moderate_f64(r), moderate_f64(r))
    })
}

fn real_vec(rng: &mut SmallRng, max_len: usize) -> Vec<f64> {
    vec_of(rng, 1..=max_len, moderate_f64)
}

fn max_norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm()).fold(0.0, f64::max).max(1.0)
}

fn max_abs(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).fold(1.0, f64::max)
}

/// ifft(fft(x)) == x for any length (radix-2 and Bluestein paths).
#[test]
fn fft_roundtrip() {
    check(
        "fft_roundtrip",
        64,
        |rng| complex_vec(rng, 200),
        |x| {
            let back = ifft(&fft(x));
            let scale = max_norm(x);
            for (a, b) in back.iter().zip(x) {
                prop_assert!(
                    (*a - *b).norm() < 1e-8 * scale * x.len() as f64,
                    "{a:?} vs {b:?}"
                );
            }
            Ok(())
        },
    );
}

/// The fast transform agrees with the O(n²) DFT definition.
#[test]
fn fft_matches_dft() {
    check(
        "fft_matches_dft",
        64,
        |rng| complex_vec(rng, 96),
        |x| {
            let fast = fft(x);
            let slow = dft(x, Direction::Forward);
            let scale = max_norm(x) * x.len() as f64;
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert!((*a - *b).norm() < 1e-8 * scale, "{a:?} vs {b:?}");
            }
            Ok(())
        },
    );
}

/// FFT is linear: FFT(αx + y) == α·FFT(x) + FFT(y).
#[test]
fn fft_linearity() {
    check(
        "fft_linearity",
        64,
        |rng| (complex_vec(rng, 64), moderate_f64(rng)),
        |(x, alpha)| {
            // Build y of the same length from x deterministically.
            let y: Vec<Complex64> = x.iter().map(|z| z.conj().scale(0.5)).collect();
            let combo: Vec<Complex64> =
                x.iter().zip(&y).map(|(&a, &b)| a.scale(*alpha) + b).collect();
            let lhs = fft(&combo);
            let fx = fft(x);
            let fy = fft(&y);
            let scale = max_norm(x) * (alpha.abs() + 1.0) * x.len() as f64;
            for ((l, a), b) in lhs.iter().zip(&fx).zip(&fy) {
                prop_assert!(
                    (*l - (a.scale(*alpha) + *b)).norm() < 1e-8 * scale,
                    "lhs {l:?}"
                );
            }
            Ok(())
        },
    );
}

/// Parseval: energy is conserved (with the 1/n convention on inverse).
#[test]
fn parseval() {
    check(
        "parseval",
        64,
        |rng| complex_vec(rng, 128),
        |x| {
            let n = x.len() as f64;
            let spec = fft(x);
            let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
            prop_assert!((te - fe).abs() < 1e-6 * (te.abs() + 1.0) * n, "{te} vs {fe}");
            Ok(())
        },
    );
}

/// Convolution theorem: FFT convolution equals the direct definition.
#[test]
fn convolution_theorem() {
    check(
        "convolution_theorem",
        64,
        |rng| {
            let a = real_vec(rng, 100);
            let b: Vec<f64> = (0..a.len()).map(|_| moderate_f64(rng)).collect();
            (a, b)
        },
        |(a, b)| {
            let fast = circular_convolve(a, b);
            let slow = circular_convolve_direct(a, b);
            let scale = max_abs(a) * max_abs(b) * a.len() as f64;
            for (x, y) in fast.iter().zip(&slow) {
                prop_assert!((x - y).abs() < 1e-8 * scale, "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Correlation via FFT equals the direct definition.
#[test]
fn correlation_matches_direct() {
    check(
        "correlation_matches_direct",
        64,
        |rng| {
            let a = real_vec(rng, 80);
            let b: Vec<f64> = (0..a.len()).map(|_| moderate_f64(rng)).collect();
            (a, b)
        },
        |(a, b)| {
            let fast = circular_correlate(a, b);
            let slow = circular_correlate_direct(a, b);
            let scale = max_abs(a) * max_abs(b) * a.len() as f64;
            for (x, y) in fast.iter().zip(&slow) {
                prop_assert!((x - y).abs() < 1e-8 * scale, "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Real FFT round-trips through the half spectrum.
#[test]
fn rfft_roundtrip() {
    check(
        "rfft_roundtrip",
        64,
        |rng| real_vec(rng, 150),
        |x| {
            let spec = rfft(x);
            prop_assert_eq!(spec.len(), x.len() / 2 + 1);
            let back = irfft(&spec, x.len());
            let scale = max_abs(x) * x.len() as f64;
            for (a, b) in back.iter().zip(x) {
                prop_assert!((a - b).abs() < 1e-9 * scale, "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// The half spectrum agrees with the full complex transform.
#[test]
fn rfft_matches_fft() {
    check(
        "rfft_matches_fft",
        64,
        |rng| real_vec(rng, 100),
        |x| {
            let half = rfft(x);
            let full = fft(&x.iter().map(|&v| Complex::from_real(v)).collect::<Vec<_>>());
            let scale = max_abs(x) * x.len() as f64;
            for (k, h) in half.iter().enumerate() {
                prop_assert!((*h - full[k]).norm() < 1e-8 * scale, "bin {k}");
            }
            Ok(())
        },
    );
}

/// Linear convolution via FFT equals direct; length is n+m−1.
#[test]
fn linear_convolution() {
    check(
        "linear_convolution",
        64,
        |rng| (real_vec(rng, 40), real_vec(rng, 40)),
        |(a, b)| {
            let fast = linear_convolve(a, b);
            let slow = linear_convolve_direct(a, b);
            prop_assert_eq!(fast.len(), a.len() + b.len() - 1);
            let scale = max_abs(a) * max_abs(b) * (a.len() + b.len()) as f64;
            for (x, y) in fast.iter().zip(&slow) {
                prop_assert!((x - y).abs() < 1e-8 * scale, "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Time shift ↔ phase rotation: FFT(rot₁(x))[k] = FFT(x)[k]·e^{-2πik/n}.
#[test]
fn shift_theorem() {
    check(
        "shift_theorem",
        64,
        |rng| complex_vec(rng, 64),
        |x| {
            let n = x.len();
            let mut rotated = x.clone();
            rotated.rotate_right(1);
            let fx = fft(x);
            let fr = fft(&rotated);
            let scale = max_norm(x) * n as f64;
            for k in 0..n {
                let phase = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
                prop_assert!((fr[k] - fx[k] * phase).norm() < 1e-8 * scale, "bin {k}");
            }
            Ok(())
        },
    );
}

#[test]
fn planner_is_reusable_across_sizes() {
    let mut planner = FftPlanner::<f64>::new();
    for n in [2usize, 3, 8, 12, 16, 121] {
        let x: Vec<Complex64> = (0..n).map(|k| Complex::from_real(k as f64)).collect();
        let mut buf = x.clone();
        planner.plan_forward(n).process(&mut buf).unwrap();
        planner.plan_inverse(n).process(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }
    assert_eq!(planner.cached_plans(), 12);
}
