//! # ffdl-brownout — closed-loop graceful degradation
//!
//! The paper's block-circulant FFT inference buys a compute cushion on
//! constrained hardware, and `ffdl-quant` showed int16/int8 generations
//! of the same model are decision-lossless at a fraction of the cost.
//! This crate is the control loop that **spends that cushion under
//! overload** instead of queueing requests to death:
//!
//! * a [`Ladder`] names the pre-published precision generations of one
//!   tenant's model, best first (`f32 → int16 → int8`),
//! * a [`LevelController`] per tenant samples queue delay and SLO
//!   attainment each tick and proposes walking the tenant down the
//!   ladder under sustained pressure (and back up once the queue has
//!   been clear for a full window), with hysteresis holds so one noisy
//!   sample never flaps a swap,
//! * the same controller runs **CoDel-style early admission**: once the
//!   head-of-queue sojourn time has exceeded the target delay for
//!   several consecutive ticks, new arrivals should be shed *at
//!   enqueue* ([`LevelController::shedding`]) instead of being
//!   discovered dead at dequeue.
//!
//! The policy is **pure and tick-driven**: it owns no clock and no
//! threads — a scheduler feeds it [`Sample`]s and applies the returned
//! [`Step`]s (the `ffdl-sched` controller thread does exactly that).
//! All randomness (the dithered hysteresis holds) comes from an
//! `ffdl-rng` stream seeded from [`BrownoutConfig::seed`] and the
//! tenant index, so a fixed-seed chaos run replays its brownout
//! decisions exactly.
//!
//! # Examples
//!
//! ```
//! use ffdl_brownout::{BrownoutConfig, LevelController, Sample, Step};
//! use std::time::Duration;
//!
//! let cfg = BrownoutConfig::default();
//! let mut ctl = LevelController::new(&cfg, 3, 0);
//! // Sustained pressure: the head of the queue is far over target.
//! let hot = Sample { head_sojourn: Some(Duration::from_millis(200)), ..Default::default() };
//! let mut stepped_down = false;
//! for _ in 0..cfg.window {
//!     if ctl.observe(&hot) == Step::Down {
//!         ctl.set_level(ctl.level() + 1);
//!         stepped_down = true;
//!     }
//! }
//! assert!(stepped_down);
//! assert_eq!(ctl.level(), 1);
//! assert!(ctl.shedding(), "persistent target exceedance sheds at enqueue");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ffdl_rng::{Rng, SeedableRng, SmallRng};
use std::collections::VecDeque;
use std::time::Duration;

/// One rung of a degradation ladder: a label (`"f32"`, `"int16"`, …)
/// plus the registry generation serving that precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderRung {
    /// Human-readable precision label, stamped into reports and typed
    /// errors.
    pub label: String,
    /// Registry generation of the tenant's model at this precision.
    pub registry_generation: u64,
}

/// A tenant's degradation ladder, best precision first. Level 0 is the
/// full-precision generation the tenant serves when healthy; higher
/// levels are cheaper, pre-published generations the controller falls
/// back to under overload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ladder {
    rungs: Vec<LadderRung>,
}

impl Ladder {
    /// Builds a ladder from rungs ordered best precision first.
    ///
    /// # Errors
    ///
    /// `Err` (with a static reason) when fewer than two rungs are given
    /// — a one-rung ladder has nowhere to degrade to.
    pub fn new(rungs: Vec<LadderRung>) -> Result<Self, &'static str> {
        if rungs.len() < 2 {
            return Err("a degradation ladder needs at least two rungs");
        }
        Ok(Self { rungs })
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `true` when the ladder has no rungs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The rung at `level`, if the ladder is that deep.
    pub fn rung(&self, level: usize) -> Option<&LadderRung> {
        self.rungs.get(level)
    }

    /// All rungs, best precision first.
    pub fn rungs(&self) -> &[LadderRung] {
        &self.rungs
    }

    /// The level whose rung serves `registry_generation`, if any — used
    /// to re-sync the controller after an auto-rollback replaced the
    /// serving generation behind its back.
    pub fn level_of(&self, registry_generation: u64) -> Option<usize> {
        self.rungs
            .iter()
            .position(|r| r.registry_generation == registry_generation)
    }
}

/// Brownout policy knobs. The defaults suit a serving deadline in the
/// tens of milliseconds; scale `target_delay`/`sample_every` with the
/// workload's SLO.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// CoDel target: the head-of-queue sojourn time the controller
    /// tries to keep each tenant under.
    pub target_delay: Duration,
    /// Controller tick interval — how often each tenant is sampled.
    pub sample_every: Duration,
    /// Sliding window length, in ticks, that degrade/recover decisions
    /// are judged over.
    pub window: usize,
    /// Pressure ticks within the window that trigger a step down the
    /// ladder.
    pub degrade_ticks: usize,
    /// Consecutive pressure ticks before enqueue-time shedding starts
    /// (the CoDel persistence interval).
    pub shed_ticks: usize,
    /// Base hysteresis hold, in ticks, after any level change before
    /// the next is considered. Dithered per step from the seeded
    /// stream so tenants don't step in lockstep.
    pub hold: usize,
    /// Cap for the adaptive recovery hold (which doubles every time a
    /// step up is followed by renewed pressure — the anti-flap rule).
    pub max_hold: usize,
    /// Seed for the dithered holds. Together with the tenant index it
    /// fully determines the controller's decision stream.
    pub seed: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            target_delay: Duration::from_millis(20),
            sample_every: Duration::from_millis(2),
            window: 8,
            degrade_ticks: 6,
            shed_ticks: 3,
            hold: 8,
            max_hold: 512,
            seed: 0,
        }
    }
}

impl BrownoutConfig {
    /// Validates the knobs; returns a static reason on the first
    /// inconsistency.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.target_delay.is_zero() {
            return Err("brownout target_delay must be > 0");
        }
        if self.sample_every.is_zero() {
            return Err("brownout sample_every must be > 0");
        }
        if self.window == 0 {
            return Err("brownout window must be >= 1 tick");
        }
        if self.degrade_ticks == 0 || self.degrade_ticks > self.window {
            return Err("brownout degrade_ticks must be in 1..=window");
        }
        if self.shed_ticks == 0 {
            return Err("brownout shed_ticks must be >= 1");
        }
        if self.hold == 0 || self.max_hold < self.hold {
            return Err("brownout hold must be >= 1 and <= max_hold");
        }
        Ok(())
    }
}

/// One controller tick's observations for one tenant.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sample {
    /// Age of the request at the head of the tenant's queue (`None`
    /// when the queue is empty).
    pub head_sojourn: Option<Duration>,
    /// Responses completed within the SLO since the last tick.
    pub slo_hits: u64,
    /// Responses completed past the SLO since the last tick.
    pub slo_misses: u64,
}

/// What the controller proposes after one tick. The caller performs the
/// swap (it may refuse, e.g. a circuit-broken rung) and reports the
/// outcome back through [`LevelController::set_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Stay at the current level.
    Hold,
    /// Degrade one level down the ladder (cheaper precision).
    Down,
    /// Recover one level up the ladder (better precision).
    Up,
}

/// Per-tenant brownout state machine: a sliding pressure window, the
/// CoDel shedding latch, and dithered hysteresis holds.
#[derive(Debug)]
pub struct LevelController {
    target: Duration,
    window_len: usize,
    degrade_ticks: usize,
    shed_ticks: usize,
    hold: usize,
    max_hold: usize,
    levels: usize,
    level: usize,
    window: VecDeque<bool>,
    consecutive_pressure: usize,
    shedding: bool,
    hold_left: usize,
    /// Adaptive recovery hold: doubles when a step up is punished by
    /// renewed pressure, decays back to `hold` after a calm recovery.
    up_hold: usize,
    tick: u64,
    last_up_tick: Option<u64>,
    calm_ticks: usize,
    rng: SmallRng,
}

impl LevelController {
    /// A controller for a tenant with `levels` ladder rungs. `tenant`
    /// decorrelates the dither stream between tenants sharing one
    /// config.
    pub fn new(cfg: &BrownoutConfig, levels: usize, tenant: u64) -> Self {
        let seed = ffdl_rng::splitmix64_mix(cfg.seed ^ (tenant.wrapping_mul(0x9E37_79B9) | 1));
        Self {
            target: cfg.target_delay,
            window_len: cfg.window,
            degrade_ticks: cfg.degrade_ticks,
            shed_ticks: cfg.shed_ticks,
            hold: cfg.hold,
            max_hold: cfg.max_hold,
            levels: levels.max(1),
            level: 0,
            window: VecDeque::with_capacity(cfg.window),
            consecutive_pressure: 0,
            shedding: false,
            hold_left: 0,
            up_hold: cfg.hold,
            tick: 0,
            last_up_tick: None,
            calm_ticks: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current ladder level (0 = full precision).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether new arrivals should be shed at enqueue right now.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Feeds one tick's observations; returns the proposed step. The
    /// controller does **not** change its own level — call
    /// [`set_level`](Self::set_level) with the level actually installed
    /// (which may differ when a rung is circuit-broken).
    pub fn observe(&mut self, sample: &Sample) -> Step {
        self.tick += 1;
        let pressure = sample.head_sojourn.is_some_and(|s| s > self.target)
            || sample.slo_misses > 0;
        if self.window.len() == self.window_len {
            self.window.pop_front();
        }
        self.window.push_back(pressure);
        self.consecutive_pressure = if pressure {
            self.consecutive_pressure + 1
        } else {
            0
        };
        // CoDel latch: persistent target exceedance sheds at enqueue;
        // one sample back at/under target releases it.
        self.shedding = self.consecutive_pressure >= self.shed_ticks;
        if self.hold_left > 0 {
            self.hold_left -= 1;
            return Step::Hold;
        }
        let over = self.window.iter().filter(|p| **p).count();
        if over >= self.degrade_ticks && self.level + 1 < self.levels {
            // Pressure returning right after a recovery means the step
            // up was premature: double the next recovery hold. The
            // probation period scales with the hold itself so the rule
            // keeps biting as the hold stretches.
            let probation = (2 * self.up_hold + 2 * self.window_len) as u64;
            if self.last_up_tick.take().is_some_and(|t| self.tick - t <= probation) {
                self.up_hold = (self.up_hold * 2).min(self.max_hold);
            }
            self.calm_ticks = 0;
            return Step::Down;
        }
        if over == 0 && self.window.len() == self.window_len {
            if self.level > 0 {
                return Step::Up;
            }
            // Fully recovered and calm: decay the adaptive hold back
            // toward the base.
            self.calm_ticks += 1;
            if self.calm_ticks >= 4 * self.window_len {
                self.up_hold = (self.up_hold / 2).max(self.hold);
                self.calm_ticks = 0;
            }
        }
        Step::Hold
    }

    /// Records the level the scheduler actually installed (after a swap,
    /// or a re-sync after an auto-rollback) and starts the dithered
    /// hysteresis hold for it.
    pub fn set_level(&mut self, level: usize) {
        let level = level.min(self.levels - 1);
        if level == self.level {
            return;
        }
        let up = level < self.level;
        self.level = level;
        let base = if up { self.up_hold } else { self.hold };
        // Dither in [base, base + base/2]: seeded, so replays exactly.
        let dither = if base >= 2 {
            (self.rng.next_u64() % (base as u64 / 2 + 1)) as usize
        } else {
            0
        };
        self.hold_left = base + dither;
        if up {
            self.last_up_tick = Some(self.tick);
        } else {
            // Fresh pressure evidence is required before judging the
            // new, cheaper level.
            self.window.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrownoutConfig {
        BrownoutConfig {
            window: 4,
            degrade_ticks: 3,
            shed_ticks: 2,
            hold: 2,
            max_hold: 64,
            ..Default::default()
        }
    }

    fn hot() -> Sample {
        Sample {
            head_sojourn: Some(Duration::from_millis(100)),
            ..Default::default()
        }
    }

    fn cold() -> Sample {
        Sample::default()
    }

    /// Drives the controller like a scheduler would: every proposed step
    /// is applied. Returns the trace of levels after each tick.
    fn drive(ctl: &mut LevelController, samples: &[Sample]) -> Vec<usize> {
        samples
            .iter()
            .map(|s| {
                match ctl.observe(s) {
                    Step::Down => ctl.set_level(ctl.level() + 1),
                    Step::Up => ctl.set_level(ctl.level() - 1),
                    Step::Hold => {}
                }
                ctl.level()
            })
            .collect()
    }

    #[test]
    fn ladder_shape() {
        let rung = |label: &str, g| LadderRung {
            label: label.into(),
            registry_generation: g,
        };
        assert!(Ladder::new(vec![rung("f32", 1)]).is_err());
        let ladder = Ladder::new(vec![rung("f32", 1), rung("int16", 2), rung("int8", 3)])
            .expect("three rungs");
        assert_eq!(ladder.len(), 3);
        assert!(!ladder.is_empty());
        assert_eq!(ladder.rung(1).unwrap().label, "int16");
        assert_eq!(ladder.level_of(3), Some(2));
        assert_eq!(ladder.level_of(9), None);
        assert_eq!(ladder.rungs()[0].registry_generation, 1);
    }

    #[test]
    fn config_validation() {
        assert!(BrownoutConfig::default().validate().is_ok());
        let bad = |f: fn(&mut BrownoutConfig)| {
            let mut c = BrownoutConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.target_delay = Duration::ZERO));
        assert!(bad(|c| c.sample_every = Duration::ZERO));
        assert!(bad(|c| c.window = 0));
        assert!(bad(|c| c.degrade_ticks = 0));
        assert!(bad(|c| c.degrade_ticks = c.window + 1));
        assert!(bad(|c| c.shed_ticks = 0));
        assert!(bad(|c| c.hold = 0));
        assert!(bad(|c| c.max_hold = 1));
    }

    #[test]
    fn sustained_pressure_walks_down_and_calm_recovers() {
        let mut ctl = LevelController::new(&cfg(), 3, 0);
        let levels = drive(&mut ctl, &vec![hot(); 40]);
        assert_eq!(*levels.last().unwrap(), 2, "walked to the bottom rung");
        // Monotone descent: the trace never steps up under pressure.
        assert!(levels.windows(2).all(|w| w[1] >= w[0]), "{levels:?}");
        let levels = drive(&mut ctl, &vec![cold(); 400]);
        assert_eq!(*levels.last().unwrap(), 0, "recovered to full precision");
        assert!(!ctl.shedding());
    }

    #[test]
    fn shedding_latches_on_persistent_exceedance_only() {
        let mut ctl = LevelController::new(&cfg(), 3, 0);
        // One hot tick is noise, not brownout.
        ctl.observe(&hot());
        assert!(!ctl.shedding());
        ctl.observe(&hot());
        assert!(ctl.shedding(), "shed_ticks=2 consecutive pressure ticks");
        // One clear sample releases the latch.
        ctl.observe(&cold());
        assert!(!ctl.shedding());
    }

    #[test]
    fn slo_misses_count_as_pressure() {
        let mut ctl = LevelController::new(&cfg(), 2, 0);
        let missing = Sample {
            head_sojourn: None,
            slo_hits: 10,
            slo_misses: 1,
        };
        let levels = drive(&mut ctl, &vec![missing; 10]);
        assert_eq!(*levels.last().unwrap(), 1, "misses alone degrade");
    }

    #[test]
    fn hysteresis_holds_after_a_step() {
        let c = cfg();
        let mut ctl = LevelController::new(&c, 4, 0);
        let mut downs = 0;
        let mut since_last_down = usize::MAX;
        for _ in 0..40 {
            match ctl.observe(&hot()) {
                Step::Down => {
                    // Holds space consecutive downs by at least `hold`.
                    assert!(since_last_down >= c.hold, "step spacing {since_last_down}");
                    ctl.set_level(ctl.level() + 1);
                    downs += 1;
                    since_last_down = 0;
                }
                _ => since_last_down = since_last_down.saturating_add(1),
            }
        }
        assert!(downs >= 2);
    }

    #[test]
    fn same_seed_same_decision_trace() {
        let run = |seed: u64| {
            let mut c = cfg();
            c.seed = seed;
            let mut ctl = LevelController::new(&c, 3, 1);
            // A pressure/calm pattern long enough to cross several holds.
            let samples: Vec<Sample> = (0..200)
                .map(|i| if (i / 25) % 2 == 0 { hot() } else { cold() })
                .collect();
            drive(&mut ctl, &samples)
        };
        assert_eq!(run(7), run(7), "fixed seed replays exactly");
        let t0 = LevelController::new(&cfg(), 3, 0);
        let t1 = LevelController::new(&cfg(), 3, 1);
        // Different tenants draw from decorrelated dither streams.
        assert_ne!(format!("{:?}", t0.rng), format!("{:?}", t1.rng));
    }

    #[test]
    fn flapping_doubles_the_recovery_hold() {
        let c = cfg();
        let mut ctl = LevelController::new(&c, 2, 0);
        // Oscillating load: hot whenever the tenant is at full
        // precision, calm whenever degraded — the pathological flap.
        // The adaptive recovery hold must stretch each cycle, so the
        // spacing between successive degrades grows.
        let mut down_ticks = Vec::new();
        let mut i = 0u64;
        while down_ticks.len() < 4 && i < 5000 {
            let sample = if ctl.level() > 0 { cold() } else { hot() };
            match ctl.observe(&sample) {
                Step::Down => {
                    ctl.set_level(1);
                    down_ticks.push(i);
                }
                Step::Up => ctl.set_level(0),
                Step::Hold => {}
            }
            i += 1;
        }
        assert_eq!(down_ticks.len(), 4, "four full flap cycles");
        let gaps: Vec<u64> = down_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.last().unwrap() > gaps.first().unwrap(),
            "adaptive hold stretches under flapping: {gaps:?}"
        );
    }

    #[test]
    fn set_level_resyncs_and_clamps() {
        let mut ctl = LevelController::new(&cfg(), 3, 0);
        ctl.set_level(9);
        assert_eq!(ctl.level(), 2, "clamped to the ladder depth");
        ctl.set_level(0);
        assert_eq!(ctl.level(), 0);
    }
}
