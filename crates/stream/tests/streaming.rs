//! Acceptance tests for stateful streaming serving: a block-circulant
//! recurrent model published through `ffdl-registry` serves N
//! concurrent sessions with per-session hidden state, and every
//! session's full output sequence is bit-identical to a
//! single-threaded replay of the same tokens.

use ffdl_deploy::parse_architecture;
use ffdl_nn::Network;
use ffdl_registry::ModelStore;
use ffdl_serve::FailureKind;
use ffdl_stream::{StreamConfig, StreamError, StreamEngine, StreamServer};
use ffdl_tensor::Tensor;
use std::collections::HashMap;
use std::time::Duration;

const ARCH: &str = "input 8\ncirculant_gru 16 block=4\nfc 4\nsoftmax\n";
const FEATURES: usize = 8;

fn temp_store(tag: &str) -> (std::path::PathBuf, ModelStore) {
    let dir = std::env::temp_dir().join(format!("ffdl-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::open(&dir).expect("open store");
    (dir, store)
}

fn network(seed: u64) -> Network {
    parse_architecture(ARCH, seed).expect("arch").network
}

/// A deterministic token: session and step fully determine the values.
fn token(session: u64, step: usize) -> Tensor {
    Tensor::from_fn(&[FEATURES], |i| {
        ((session as usize * 131 + step * 17 + i) as f32 * 0.083).sin()
    })
}

/// Waits until every admitted step is answered (bounded, so a hung
/// worker fails the test instead of wedging it).
fn drain(server: &StreamServer) {
    for _ in 0..2000 {
        if server.inflight_steps() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("steps did not drain");
}

#[test]
fn published_model_serves_concurrent_sessions_bit_identical_to_replay() {
    let (dir, store) = temp_store("accept");
    store
        .publish("gru", &network(21), "stream")
        .expect("publish");
    let config = StreamConfig {
        workers: 2,
        ..Default::default()
    };
    let server = StreamServer::start_from_store(&store, "gru", &config).expect("start");
    assert_eq!(server.workers(), 2);

    const SESSIONS: u64 = 6;
    const STEPS: usize = 24;
    for session in 0..SESSIONS {
        server.open_session(session).expect("open");
    }
    assert_eq!(server.active_sessions(), SESSIONS as usize);

    // Interleave submissions across sessions so worker queues hold
    // steps of several sessions at once — the isolation being tested.
    let mut ids: HashMap<u64, Vec<u64>> = HashMap::new();
    for step in 0..STEPS {
        for session in 0..SESSIONS {
            let id = server.next_step_id();
            server
                .step(session, id, token(session, step))
                .expect("step");
            ids.entry(session).or_default().push(id);
        }
    }

    // Reference: single-threaded replay on the same generation, same
    // code path.
    let mut expected: HashMap<u64, Vec<Vec<f32>>> = HashMap::new();
    for session in 0..SESSIONS {
        let tokens: Vec<Tensor> = (0..STEPS).map(|s| token(session, s)).collect();
        expected.insert(
            session,
            server
                .replay(&tokens)
                .expect("replay")
                .into_iter()
                .map(|p| p.probabilities)
                .collect(),
        );
    }

    for session in 0..SESSIONS {
        server.close_session(session).expect("close");
    }
    let report = server.finish().expect("finish");

    assert_eq!(report.serve.failures.len(), 0, "{:?}", report.serve.failures);
    assert_eq!(report.serve.requests, SESSIONS as usize * STEPS);
    assert_eq!(report.steps, (SESSIONS as usize * STEPS) as u64);
    assert_eq!(report.sessions_opened, SESSIONS);
    assert_eq!(report.sessions_quarantined, 0);

    // Responses indexed by id; per session, in submission order, they
    // must match the replay bit for bit.
    let by_id: HashMap<u64, &ffdl_serve::ServeResponse> =
        report.serve.responses.iter().map(|r| (r.id, r)).collect();
    for session in 0..SESSIONS {
        let session_ids = &ids[&session];
        let reference = &expected[&session];
        for (step, (id, want)) in session_ids.iter().zip(reference).enumerate() {
            let got = by_id.get(id).unwrap_or_else(|| {
                panic!("session {session} step {step} (id {id}) has no response")
            });
            assert_eq!(
                &got.prediction.probabilities, want,
                "session {session} step {step} diverged from replay"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sessions_stick_to_their_hashed_worker() {
    let net = network(3);
    let config = StreamConfig {
        workers: 4,
        ..Default::default()
    };
    let server = StreamServer::start(&net, &config).expect("start");
    for session in 0..8u64 {
        server.open_session(session).expect("open");
        for step in 0..6 {
            let id = server.next_step_id();
            server.step(session, id, token(session, step)).expect("step");
        }
    }
    // Remember the routing before the server is consumed.
    let route: HashMap<u64, usize> = (0..8u64).map(|s| (s, server.worker_of(s))).collect();
    let report = server.finish().expect("finish");
    assert_eq!(report.serve.requests, 48);
    // Every response of a session came from its sticky worker.
    let mut ids_to_session: HashMap<u64, u64> = HashMap::new();
    for (i, id) in (0..48u64).enumerate() {
        ids_to_session.insert(id, (i as u64) / 6);
    }
    for r in &report.serve.responses {
        let session = ids_to_session[&r.id];
        assert_eq!(
            r.worker, route[&session],
            "session {session} step escaped its sticky worker"
        );
    }
    // With 4 workers and 8 sessions, more than one worker served.
    let used: std::collections::HashSet<usize> =
        report.serve.responses.iter().map(|r| r.worker).collect();
    assert!(used.len() > 1, "routing degenerated to one worker");
}

#[test]
fn lifecycle_errors_are_typed() {
    let server = StreamServer::start(&network(5), &StreamConfig::default()).expect("start");
    assert_eq!(
        server.step(9, 0, token(9, 0)),
        Err(StreamError::UnknownSession(9))
    );
    server.open_session(9).expect("open");
    assert_eq!(server.open_session(9), Err(StreamError::SessionExists(9)));
    server.close_session(9).expect("close");
    assert_eq!(
        server.step(9, 0, token(9, 0)),
        Err(StreamError::UnknownSession(9))
    );
    assert_eq!(server.close_session(9), Err(StreamError::UnknownSession(9)));
    // Reopening a closed id is a fresh session.
    server.open_session(9).expect("reopen");
    server.step(9, 0, token(9, 0)).expect("step");
    let report = server.finish().expect("finish");
    assert_eq!(report.sessions_opened, 2);
    assert_eq!(report.steps, 1);
}

#[test]
fn idle_sessions_are_evicted_after_ttl() {
    let config = StreamConfig {
        idle_ttl: Some(Duration::from_millis(40)),
        ..Default::default()
    };
    let server = StreamServer::start(&network(7), &config).expect("start");
    server.open_session(1).expect("open");
    server.open_session(2).expect("open");
    server.step(1, 0, token(1, 0)).expect("step");
    drain(&server);
    // Both sessions idle well past the TTL; the worker sweeps on idle.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        server.step(1, 1, token(1, 1)),
        Err(StreamError::UnknownSession(1)),
        "evicted session must fail typed"
    );
    let report = server.finish().expect("finish");
    // Session 1 was evicted by the worker that owned its state; session
    // 2 never stepped, so no worker owns it — it stays in the directory
    // until close/shutdown.
    assert!(report.sessions_evicted >= 1, "{report}");
    assert_eq!(report.steps, 1);
}

#[test]
fn reset_on_swap_restarts_sequences_deterministically() {
    let (dir, store) = temp_store("swap");
    store.publish("gru", &network(100), "g1").expect("publish");
    let server =
        StreamServer::start_from_store(&store, "gru", &StreamConfig::default()).expect("start");
    server.open_session(5).expect("open");

    const BEFORE: usize = 7;
    const AFTER: usize = 9;
    for step in 0..BEFORE {
        server
            .step(5, step as u64, token(5, step))
            .expect("step before swap");
    }
    drain(&server); // quiesce: attribute the swap to a step boundary
    store.publish("gru", &network(200), "g2").expect("publish g2");
    let gen = server.swap_from_store(None).expect("swap");
    assert_eq!(gen, 2);
    for step in BEFORE..BEFORE + AFTER {
        server
            .step(5, step as u64, token(5, step))
            .expect("step after swap");
    }
    drain(&server);

    // Reference for the post-swap half: a fresh zero state on the new
    // model — the reset-on-swap contract.
    let post_tokens: Vec<Tensor> = (BEFORE..BEFORE + AFTER).map(|s| token(5, s)).collect();
    let expected_post = server.replay(&post_tokens).expect("replay");
    // And the pre-swap half replays on the original generation.
    let pre_tokens: Vec<Tensor> = (0..BEFORE).map(|s| token(5, s)).collect();
    let mut g1_engine = StreamEngine::new(network(100), false);
    let expected_pre = g1_engine.replay(&pre_tokens).expect("replay g1");

    let report = server.finish().expect("finish");
    assert_eq!(report.serve.failures.len(), 0);
    assert_eq!(report.serve.requests, BEFORE + AFTER);
    for r in &report.serve.responses {
        let step = r.id as usize;
        let want = if step < BEFORE {
            assert_eq!(r.generation, 1, "pre-swap step served by wrong generation");
            &expected_pre[step]
        } else {
            assert_eq!(r.generation, 2, "post-swap step served by wrong generation");
            &expected_post[step - BEFORE]
        };
        assert_eq!(
            r.prediction.probabilities, want.probabilities,
            "step {step} diverged across the swap boundary"
        );
    }
    assert_eq!(report.serve.model_generation, 2);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn zero_deadline_sheds_steps_as_typed_failures() {
    let config = StreamConfig {
        deadline: Some(Duration::ZERO),
        ..Default::default()
    };
    let server = StreamServer::start(&network(9), &config).expect("start");
    server.open_session(1).expect("open");
    for step in 0..5 {
        server.step(1, step as u64, token(1, step)).expect("submit");
    }
    let report = server.finish().expect("finish");
    assert_eq!(report.serve.requests, 0);
    assert_eq!(report.serve.failures.len(), 5);
    assert!(report
        .serve
        .failures
        .iter()
        .all(|f| f.kind == FailureKind::DeadlineExceeded));
    assert_eq!(report.serve.expired, 5);
}

#[test]
fn report_renders_stream_section_and_json_row() {
    let server = StreamServer::start(&network(13), &StreamConfig::default()).expect("start");
    server.open_session(0).expect("open");
    for step in 0..3 {
        server.step(0, step as u64, token(0, step)).expect("step");
    }
    server.close_session(0).expect("close");
    let report = server.finish().expect("finish");
    let table = format!("{report}");
    for needle in [
        "serve stats",
        "stream stats",
        "sessions opened",
        "sessions evicted",
        "sessions quarantined",
        "steps answered",
        "latency p99",
    ] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }
    let row = report.json_row("w1");
    for needle in [
        "\"sessions\": 1",
        "\"steps\": 3",
        "\"p99_us\"",
        "\"throughput_rps\"",
    ] {
        assert!(row.contains(needle), "missing {needle} in {row}");
    }
    assert!(!row.contains('\n'), "rows must stay one line: {row}");
    let doc = ffdl_stream::stream_bench_json(&[("w1".into(), &report)]);
    assert!(doc.contains("\"bench\": \"stream\""));
    assert!(doc.contains("\"unit\": \"steps_per_sec\""));
}
