//! Fixed-seed chaos campaign against a multi-session streaming server.
//!
//! Phase 1 — **fault containment**: a deterministic `ffdl-fault`
//! campaign (one worker panic, two NaN activations, two latency
//! spikes, `rate = 1.0`) fires into an interleaved 6-session workload.
//! The contract under test:
//!
//! * **zero lost responses** — every admitted step id appears in
//!   exactly one of `responses` / `failures`, every refusal at submit
//!   time is a typed [`StreamError`];
//! * **faulted sessions quarantine** — a panic or NaN step flips only
//!   that session; its queued steps fail
//!   [`FailureKind::SessionQuarantined`];
//! * **neighbour isolation** — every successful response of *every*
//!   session (including a faulted session's pre-fault prefix) is
//!   bit-identical to a single-threaded replay of that session's
//!   tokens. Faults never leak across per-session hidden state.
//!
//! Phase 2 — **generation health**: an all-NaN successor is hot-swapped
//! in mid-stream; after `unhealthy_threshold` typed failures the
//! generation is quarantined and the server auto-rolls back through
//! the registry, and a fresh session serves bit-exact predictions on
//! the restored weights.
//!
//! Everything is in ONE `#[test]`: the fault injector is
//! process-global, so concurrent tests in this binary would steal each
//! other's budgets.

use ffdl_fault::FaultPlan;
use ffdl_nn::Network;
use ffdl_registry::ModelStore;
use ffdl_serve::{FailureKind, HealthConfig};
use ffdl_stream::{StreamConfig, StreamError, StreamServer};
use ffdl_tensor::Tensor;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

const ARCH: &str = "input 8\ncirculant_gru 16 block=4\nfc 4\nsoftmax\n";
const FEATURES: usize = 8;
const SEED: u64 = 0x57AB_1E5E;

const SESSIONS: u64 = 6;
const STEPS: usize = 10;

fn network(seed: u64) -> Network {
    ffdl_deploy::parse_architecture(ARCH, seed)
        .expect("arch")
        .network
}

/// Same topology, every parameter NaN: any step on this generation
/// produces non-finite logits.
fn nan_network() -> Network {
    let mut net = network(1);
    for layer in net.layers_mut() {
        let poisoned: Vec<Tensor> = layer
            .param_tensors()
            .iter()
            .map(|t| Tensor::from_fn(t.shape(), |_| f32::NAN))
            .collect();
        layer.load_params(&poisoned).expect("load NaN params");
    }
    net
}

fn token(session: u64, step: usize) -> Tensor {
    Tensor::from_fn(&[FEATURES], |i| {
        ((session as usize * 131 + step * 17 + i) as f32 * 0.083).sin()
    })
}

fn drain(server: &StreamServer) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.inflight_steps() != 0 {
        assert!(Instant::now() < deadline, "steps did not drain");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn seeded_campaign_quarantines_faulted_sessions_and_spares_neighbours() {
    let dir = std::env::temp_dir().join(format!("ffdl-stream-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::open(&dir).expect("open store");
    store.publish("gru", &network(21), "chaos").expect("publish");

    // ---- Phase 1: fault campaign into a multi-session workload ----
    let config = StreamConfig {
        workers: 2,
        health: HealthConfig {
            check_finite: true,
            unhealthy_threshold: 0, // injected NaNs must not replace the model
        },
        ..Default::default()
    };
    let server = StreamServer::start_from_store(&store, "gru", &config).expect("start");
    for session in 0..SESSIONS {
        server.open_session(session).expect("open");
    }

    ffdl_fault::arm(FaultPlan {
        seed: SEED,
        panic_budget: 1,
        latency_budget: 2,
        latency_spike: Duration::from_millis(3),
        nan_budget: 2,
        bitflip_budget: 0,
        rate: 1.0,
        ..Default::default()
    });

    // Interleaved submission: worker queues hold several sessions'
    // steps at once while the injector fires. id encodes (session,
    // step) so responses can be checked against the replay reference.
    let mut admitted: HashSet<u64> = HashSet::new();
    for step in 0..STEPS {
        for session in 0..SESSIONS {
            let id = session * 100 + step as u64;
            match server.step(session, id, token(session, step)) {
                Ok(()) => {
                    admitted.insert(id);
                }
                // A worker already quarantined this session while we
                // were still submitting: a typed refusal, not a loss.
                Err(StreamError::SessionQuarantined(s)) => assert_eq!(s, session),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    drain(&server);
    let summary = ffdl_fault::disarm();
    assert_eq!(summary.panics, 1, "panic budget must fire: {summary:?}");
    assert_eq!(
        summary.nan_activations, 2,
        "NaN budget must fire: {summary:?}"
    );

    // Replay reference, per session, with the injector disarmed.
    let mut expected: HashMap<u64, Vec<Vec<f32>>> = HashMap::new();
    for session in 0..SESSIONS {
        let tokens: Vec<Tensor> = (0..STEPS).map(|s| token(session, s)).collect();
        expected.insert(
            session,
            server
                .replay(&tokens)
                .expect("replay")
                .into_iter()
                .map(|p| p.probabilities)
                .collect(),
        );
    }
    let report = server.finish().expect("finish");

    // Zero lost responses: admitted ids partition exactly into
    // responses and typed failures.
    let mut seen: HashSet<u64> = HashSet::new();
    for r in &report.serve.responses {
        assert!(seen.insert(r.id), "duplicate response id {}", r.id);
    }
    for f in &report.serve.failures {
        assert!(seen.insert(f.id), "id {} answered twice", f.id);
        assert!(
            matches!(
                f.kind,
                FailureKind::WorkerPanic
                    | FailureKind::UnhealthyModel
                    | FailureKind::SessionQuarantined { .. }
            ),
            "unexpected failure kind {:?}",
            f.kind
        );
    }
    assert_eq!(seen, admitted, "admitted steps lost or invented");

    // The faulted sessions are exactly those with a panic or NaN
    // failure; the campaign must have hit at least one and spared at
    // least one.
    let faulted: HashSet<u64> = report
        .serve
        .failures
        .iter()
        .filter(|f| !matches!(f.kind, FailureKind::SessionQuarantined { .. }))
        .map(|f| f.id / 100)
        .collect();
    assert!(!faulted.is_empty(), "campaign fired into no session");
    assert!(
        faulted.len() < SESSIONS as usize,
        "campaign faulted every session; no neighbours left to check"
    );
    assert_eq!(report.sessions_quarantined, faulted.len() as u64);
    // Quarantined-step failures only ever follow a real fault in the
    // same session.
    for f in &report.serve.failures {
        if let FailureKind::SessionQuarantined { session } = f.kind {
            assert_eq!(session, f.id / 100, "failure names the wrong session");
            assert!(
                faulted.contains(&session),
                "session {session} quarantined without a fault"
            );
        }
    }

    // Neighbour isolation: every successful response — neighbours in
    // full, faulted sessions up to their fault — is bit-identical to
    // the single-threaded replay at the same step.
    let mut clean_per_session: HashMap<u64, usize> = HashMap::new();
    for r in &report.serve.responses {
        let (session, step) = (r.id / 100, (r.id % 100) as usize);
        assert_eq!(
            r.prediction.probabilities, expected[&session][step],
            "session {session} step {step} diverged under faults"
        );
        *clean_per_session.entry(session).or_default() += 1;
    }
    for session in 0..SESSIONS {
        if !faulted.contains(&session) {
            assert_eq!(
                clean_per_session.get(&session),
                Some(&STEPS),
                "neighbour session {session} lost steps"
            );
        }
    }
    assert!(report.serve.worker_restarts >= 1, "panic must restart");
    assert_eq!(report.serve.auto_rollbacks, 0);

    // ---- Phase 2: NaN generation quarantine + auto-rollback ----
    let config = StreamConfig {
        health: HealthConfig {
            check_finite: true,
            unhealthy_threshold: 2,
        },
        ..Default::default()
    };
    let server = StreamServer::start_from_store(&store, "gru", &config).expect("restart");
    server.open_session(1).expect("open");
    server.step(1, 0, token(1, 0)).expect("healthy step");
    drain(&server);

    store.publish("gru", &nan_network(), "bad").expect("publish bad");
    assert_eq!(server.swap_from_store(None).expect("swap"), 2);

    // One NaN step quarantines its session without reaching the
    // threshold, so trip it from two sessions.
    server.open_session(2).expect("open 2");
    server.open_session(3).expect("open 3");
    server.step(2, 10, token(2, 0)).expect("submit");
    drain(&server);
    server.step(3, 11, token(3, 0)).expect("submit");
    drain(&server);

    // The rollback installed a third server generation carrying the
    // healthy weights; a fresh session serves bit-exact predictions.
    server.open_session(4).expect("open 4");
    server.step(4, 20, token(4, 0)).expect("submit");
    drain(&server);
    let expected_probs = server.replay(&[token(4, 0)]).expect("replay")[0]
        .probabilities
        .clone();

    let report = server.finish().expect("finish");
    assert_eq!(report.serve.quarantines, 1, "{report}");
    assert_eq!(report.serve.auto_rollbacks, 1, "{report}");
    assert_eq!(report.serve.model_generation, 3);
    assert_eq!(report.sessions_quarantined, 2);
    let nan_failures = report
        .serve
        .failures
        .iter()
        .filter(|f| f.kind == FailureKind::UnhealthyModel)
        .count();
    assert_eq!(nan_failures, 2, "{:?}", report.serve.failures);
    let recovered = report
        .serve
        .responses
        .iter()
        .find(|r| r.id == 20)
        .expect("post-rollback step answered");
    assert_eq!(recovered.generation, 3);
    assert_eq!(recovered.prediction.probabilities, expected_probs);

    let _ = std::fs::remove_dir_all(dir);
}
