//! Seed-replayable determinism property: a session stepped one token
//! at a time is bit-identical to replaying the same tokens through the
//! recurrent layer after a full wire-format serialization round-trip.
//!
//! Failures print the case seed; `FFDL_PROP_REPLAY=<seed>` re-runs
//! exactly that case.

use ffdl_core::{full_registry, CirculantGru};
use ffdl_nn::{load_network, save_network, Network};
use ffdl_rng::prop::check;
use ffdl_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};
use ffdl_stream::StreamEngine;
use ffdl_tensor::Tensor;

/// One generated case: network dimensions, a weight seed, and a token
/// sequence. Everything needed to rebuild the exact failing network.
#[derive(Debug)]
struct Case {
    in_dim: usize,
    hidden: usize,
    block: usize,
    weight_seed: u64,
    tokens: Vec<Vec<f32>>,
}

fn generate(rng: &mut SmallRng) -> Case {
    let block = [2usize, 4][rng.gen_range(0..2usize)];
    let in_dim = block * rng.gen_range(1..=3usize);
    let hidden = block * rng.gen_range(1..=3usize);
    let weight_seed = rng.next_u64();
    let steps = rng.gen_range(1..=10usize);
    let tokens = (0..steps)
        .map(|_| (0..in_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    Case {
        in_dim,
        hidden,
        block,
        weight_seed,
        tokens,
    }
}

fn build(case: &Case) -> Network {
    let mut weight_rng = SmallRng::seed_from_u64(case.weight_seed);
    let cell = CirculantGru::new(case.in_dim, case.hidden, case.block, &mut weight_rng)
        .expect("valid dims by construction");
    let mut net = Network::new();
    net.push(cell);
    net
}

#[test]
fn stepped_session_matches_replay_after_wire_roundtrip() {
    check("stream_step_equals_roundtrip_replay", 24, generate, |case| {
        let registry = full_registry();
        let original = build(case);

        // Wire round-trip: the exact bytes ffdl-registry publishes.
        let mut bytes = Vec::new();
        save_network(&original, &mut bytes).expect("serialize");
        let rebuilt = load_network(&bytes[..], &registry).expect("deserialize");

        let tokens: Vec<Tensor> = case
            .tokens
            .iter()
            .map(|t| Tensor::from_vec(t.clone(), &[case.in_dim]).expect("token shape"))
            .collect();

        // Original network, stepped one token per call — the serving
        // hot path.
        let mut stepped_engine = StreamEngine::new(original, false);
        let mut hidden = stepped_engine.fresh_state();
        let mut stepped = Vec::new();
        for t in &tokens {
            stepped.push(
                stepped_engine
                    .step(&mut hidden, t)
                    .map_err(|e| format!("step failed: {e}"))?,
            );
        }

        // Round-tripped network, replayed whole — the reference path.
        let mut replay_engine = StreamEngine::new(rebuilt, false);
        let replayed = replay_engine
            .replay(&tokens)
            .map_err(|e| format!("replay failed: {e}"))?;

        prop_assert_eq!(stepped.len(), replayed.len());
        for (i, (s, r)) in stepped.iter().zip(&replayed).enumerate() {
            prop_assert!(s.label == r.label, "label diverged at step {}", i);
            prop_assert!(
                s.probabilities == r.probabilities,
                "step {} not bit-identical after wire round-trip",
                i
            );
        }
        Ok(())
    });
}
