//! # ffdl-stream — stateful streaming serving with sticky sessions
//!
//! The paper's embedded targets are streaming devices: audio frames and
//! sensor windows arrive as *sequences*, and the E-RNN line of work
//! (PAPERS.md) extends block-circulant compression to recurrent
//! networks. This crate serves those networks statefully:
//!
//! * **Block-circulant recurrence** — models containing
//!   [`ffdl_core::CirculantGru`] layers (six FFT-based circulant
//!   matrix–vector products per step) publish, load and hot-swap
//!   through `ffdl-registry` like any other model.
//! * **Sessions** — [`StreamServer::open_session`] /
//!   [`step`](StreamServer::step) / [`close_session`](StreamServer::close_session).
//!   Per-session hidden state is carried across requests inside one
//!   worker thread (sticky hash routing), so state never crosses a
//!   thread boundary and needs no lock.
//! * **Determinism** — the worker hot path and the test-side reference
//!   share one code path ([`StreamEngine::step`]): a session stepped
//!   one token per request is **bit-identical** to a single-threaded
//!   [`replay`](StreamServer::replay) of the same tokens, regardless of
//!   worker count or interleaving with other sessions.
//! * **Fault containment** — deadline shedding, `catch_unwind` step
//!   supervision, and NaN screening from the stateless pools, extended
//!   with **session quarantine**: a fault inside one session poisons
//!   only that session's state; neighbours stay bit-exact. Generation
//!   health and auto-rollback work as in `ffdl-serve`.
//! * **Reset-on-swap** — a hot-swap mid-stream deterministically resets
//!   each session's hidden state to zeros at its next step (DESIGN.md
//!   §15 discusses the drain-vs-reset trade-off).
//!
//! # Examples
//!
//! ```
//! use ffdl_deploy::parse_architecture;
//! use ffdl_stream::{StreamConfig, StreamServer};
//! use ffdl_tensor::Tensor;
//!
//! let net = parse_architecture("input 8\ncirculant_gru 16 block=4\nfc 4\nsoftmax\n", 7)?
//!     .network;
//! let server = StreamServer::start(&net, &StreamConfig::default())?;
//! server.open_session(42).unwrap();
//! for step in 0..4u64 {
//!     let token = Tensor::from_fn(&[8], |i| ((step as usize * 8 + i) as f32 * 0.1).sin());
//!     server.step(42, step, token).unwrap();
//! }
//! server.close_session(42).unwrap();
//! let report = server.finish()?;
//! assert_eq!(report.steps, 4);
//! assert_eq!(report.serve.responses.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod server;

pub use engine::{SessionHidden, StreamEngine};
pub use server::{
    stream_bench_json, StreamConfig, StreamError, StreamReport, StreamServer,
};
